"""Table 1 — correlation is not causation.

An application that does nothing but wait (1 "second" vs 2 "seconds") is
allocated on a handful of blades while cross traffic flows through the
machine.  The number of flits observed by the allocation's routers — and
their queue-wait (stall) cycles — roughly doubles with the observation
interval even though the application never touches the network: counter
totals correlate with execution time without any causal link, which is why
Section 3.2 prescribes normalizing counters by the observation interval.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.allocation.policies import allocate_contiguous
from repro.analysis.reporting import Table
from repro.campaign.registry import register_figure
from repro.experiments.harness import ExperimentScale, build_network
from repro.noise.background import BackgroundTraffic

#: Simulated cycles standing in for "1 second" of idle time.
IDLE_UNIT_CYCLES = 400_000


@dataclass
class Table1Row:
    """One observation interval."""

    idle_units: int
    idle_cycles: int
    incoming_flits: int
    stalled_cycles: int
    flits_per_unit: float


@dataclass
class Table1Result:
    """Both observation intervals plus the normalized rates."""

    rows: List[Table1Row] = field(default_factory=list)

    def flit_ratio(self) -> float:
        """Flits(2 units) / flits(1 unit) — close to 2 despite an idle app."""
        if len(self.rows) < 2 or self.rows[0].incoming_flits == 0:
            return 0.0
        return self.rows[1].incoming_flits / self.rows[0].incoming_flits

    def normalized_ratio(self) -> float:
        """Per-unit flit rate of the long run over the short run (≈ 1)."""
        if len(self.rows) < 2 or self.rows[0].flits_per_unit == 0:
            return 0.0
        return self.rows[1].flits_per_unit / self.rows[0].flits_per_unit


def run(scale: ExperimentScale, idle_unit_cycles: int = IDLE_UNIT_CYCLES) -> Table1Result:
    """Measure router counters around an idle application for 1 and 2 units."""
    topo = scale.topology()
    result = Table1Result()
    job_nodes = allocate_contiguous(topo, min(scale.small_job_nodes, topo.num_nodes // 2))
    for idle_units in (1, 2):
        network = build_network(scale, seed_offset=idle_units)
        noise = BackgroundTraffic.for_level(
            network,
            list(job_nodes),
            scale.noise_level,
            name=f"table1-{idle_units}",
            fraction_of_free_nodes=0.75,
        )
        if noise is not None:
            noise.start()
        routers = job_nodes.routers(topo)
        # The idle application: it owns `routers` but sends nothing.
        duration = idle_units * idle_unit_cycles
        network.run(until=duration)
        incoming = network.total_flits_traversed(routers)
        stalled = sum(network.router(r).stalled_cycles for r in routers)
        result.rows.append(
            Table1Row(
                idle_units=idle_units,
                idle_cycles=duration,
                incoming_flits=incoming,
                stalled_cycles=stalled,
                flits_per_unit=incoming / idle_units,
            )
        )
        if noise is not None:
            noise.stop()
    return result


def report(result: Table1Result) -> str:
    """Render Table 1 plus the normalized rates that fix the fallacy."""
    table = Table(
        title="Table 1 — (idle) time vs. observed flits and stalls",
        columns=["idle time (units)", "incoming flits", "stalled cycles", "flits per unit"],
    )
    for row in result.rows:
        table.add_row(row.idle_units, row.incoming_flits, row.stalled_cycles, row.flits_per_unit)
    lines = [table.render()]
    lines.append(
        f"raw flit ratio (2u/1u): {result.flit_ratio():.2f}  "
        f"normalized per-unit ratio: {result.normalized_ratio():.2f}"
    )
    return "\n".join(lines)


def _campaign_metrics(result: Table1Result) -> Dict[str, float]:
    return {
        "flit_ratio": result.flit_ratio(),
        "normalized_ratio": result.normalized_ratio(),
    }


register_figure(
    "table1",
    run,
    report,
    description="idle-application counter correlation (Table 1)",
    metrics=_campaign_metrics,
    data=lambda result: {"rows": [asdict(row) for row in result.rows]},
)
