"""Figure 10 — real-application proxies under the three routing configurations.

Every application proxy of :mod:`repro.workloads.apps` is run under the
Default, High-Bias and Application-Aware configurations on one fixed
scattered allocation; in addition the FFT proxy is repeated on a smaller
allocation, reproducing the paper's observation that the best static mode
flips with the allocation size (High Bias wins at 256 nodes, Default wins at
64 nodes) while the application-aware policy tracks the winner in both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.allocation.policies import allocate_scattered
from repro.campaign.registry import register_figure
from repro.analysis.reporting import Table
from repro.experiments.harness import (
    ExperimentScale,
    PolicyComparison,
    compare_policies,
)
from repro.workloads.apps import application_catalog, make_application

#: Applications shown in Figure 10 (all entries of the catalogue).
APPLICATIONS: Tuple[str, ...] = (
    "cp2k",
    "wrf-b",
    "wrf-t",
    "lammps",
    "qe",
    "nekbone",
    "vpfft",
    "amber",
    "milc",
    "hpcg",
    "bfs",
    "sssp",
    "fft",
)


@dataclass
class Figure10Result:
    """Per-application comparisons plus the FFT allocation-size contrast."""

    job_nodes: int
    small_job_nodes: int
    allocation_summary: str
    comparisons: Dict[str, PolicyComparison] = field(default_factory=dict)
    fft_small: PolicyComparison = None

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Application -> policy -> normalized median time."""
        return {app: cmp.normalized_medians() for app, cmp in self.comparisons.items()}

    def fft_winners(self) -> Tuple[str, str]:
        """(winner at the large allocation, winner at the small allocation)."""
        large = self.comparisons["fft"].best_policy()
        small = self.fft_small.best_policy() if self.fft_small else "n/a"
        return large, small


def run(scale: ExperimentScale, applications: Tuple[str, ...] = APPLICATIONS) -> Figure10Result:
    """Run all application proxies under the three policies."""
    topo = scale.topology()
    rng = __import__("random").Random(scale.seed + 1010)
    allocation = allocate_scattered(topo, scale.app_job_nodes, rng, name="fig10-alloc")
    small_nodes = max(4, scale.app_job_nodes // 4)
    small_allocation = allocate_scattered(
        topo, small_nodes, rng, name="fig10-small-alloc"
    )
    result = Figure10Result(
        job_nodes=scale.app_job_nodes,
        small_job_nodes=small_nodes,
        allocation_summary=allocation.describe(topo),
    )
    unknown = set(applications) - set(application_catalog())
    if unknown:
        raise KeyError(f"unknown applications requested: {sorted(unknown)}")
    for app in applications:
        factory = lambda app=app: make_application(
            app, iterations=scale.iterations, scale=scale.message_scale
        )
        result.comparisons[app] = compare_policies(scale, allocation, factory)
    if "fft" in applications:
        factory = lambda: make_application(
            "fft", iterations=scale.iterations, scale=scale.message_scale
        )
        result.fft_small = compare_policies(scale, small_allocation, factory)
    return result


def report(result: Figure10Result) -> str:
    """Render the Figure 10 table plus the FFT allocation contrast."""
    table = Table(
        title=(
            f"Figure 10 — applications, {result.job_nodes} nodes "
            f"({result.allocation_summary}); times normalized to Default median"
        ),
        columns=[
            "application",
            "median Default (cycles)",
            "Default",
            "HighBias",
            "AppAware",
            "% default traffic (AppAware)",
            "best",
        ],
    )
    for app, comparison in result.comparisons.items():
        normalized = comparison.normalized_medians()
        fraction = comparison.app_aware_fraction_default()
        table.add_row(
            app,
            comparison.results["Default"].median_time(),
            normalized.get("Default", 1.0),
            normalized.get("HighBias", float("nan")),
            normalized.get("AppAware", float("nan")),
            (fraction * 100.0) if fraction is not None else float("nan"),
            comparison.best_policy(),
        )
    lines = [table.render()]
    if result.fft_small is not None:
        large_winner, small_winner = result.fft_winners()
        lines.append(
            f"FFT best policy: {large_winner} at {result.job_nodes} nodes, "
            f"{small_winner} at {result.small_job_nodes} nodes"
        )
    return "\n".join(lines)


def _campaign_metrics(result: Figure10Result) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for app, comparison in result.comparisons.items():
        for policy, value in comparison.normalized_medians().items():
            metrics[f"{app}.{policy}"] = value
    return metrics


register_figure(
    "figure10",
    run,
    report,
    description="application proxies under the three routing configurations",
    metrics=_campaign_metrics,
    data=lambda result: {
        "job_nodes": result.job_nodes,
        "small_job_nodes": result.small_job_nodes,
        "allocation": result.allocation_summary,
        "normalized": result.normalized(),
        "fft_winners": list(result.fft_winners()),
    },
)
