"""Figure 3 — ping-pong performance across allocations.

A 16 KiB ping-pong is run between two nodes placed (a) on the same blade,
(b) on different blades of one chassis, (c) on different chassis of one
group and (d) in different groups, with cross traffic active.  The paper
observes that both the median round-trip time *and* its dispersion grow with
the topological distance, with inter-group outliers reaching orders of
magnitude above the median — which is why all later experiments fix the
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.allocation.policies import figure3_allocations
from repro.analysis.reporting import BOXPLOT_COLUMNS, Table, boxplot_row
from repro.analysis.stats import summarize
from repro.campaign.registry import register_figure
from repro.experiments.harness import ExperimentScale, build_network
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic
from repro.workloads.microbench import PingPongBenchmark

#: Message size used by the paper for this experiment.
MESSAGE_BYTES = 16 * 1024


@dataclass
class Figure3Result:
    """Round-trip samples per allocation, in the paper's order."""

    message_bytes: int
    samples: Dict[str, List[int]] = field(default_factory=dict)

    def medians(self) -> Dict[str, float]:
        """Median round-trip time per allocation."""
        return {name: summarize(times).median for name, times in self.samples.items()}

    def qcds(self) -> Dict[str, float]:
        """QCD per allocation (the dispersion the paper highlights)."""
        return {name: summarize(times).qcd for name, times in self.samples.items()}


def run(scale: ExperimentScale) -> Figure3Result:
    """Run the allocation sweep and return the round-trip samples."""
    topo = scale.topology()
    message_bytes = scale.scaled_size(MESSAGE_BYTES)
    result = Figure3Result(message_bytes=message_bytes)
    for index, allocation in enumerate(figure3_allocations(topo)):
        network = build_network(scale, seed_offset=index)
        noise = BackgroundTraffic.for_level(
            network,
            list(allocation),
            scale.noise_level,
            max_nodes=16,
            name=f"fig3-{allocation.name}",
        )
        if noise is not None:
            noise.start()
        job = MpiJob(network, list(allocation), name=f"fig3-{allocation.name}")
        workload = PingPongBenchmark(
            size_bytes=message_bytes,
            iterations=scale.pingpong_repetitions,
            warmup=1,
        )
        run_result = workload.run(job)
        result.samples[allocation.name] = list(run_result.iteration_times)
        if noise is not None:
            noise.stop()
    return result


def report(result: Figure3Result) -> str:
    """Render the box-plot statistics table of Figure 3."""
    table = Table(
        title=f"Figure 3 — ping-pong ({result.message_bytes} B) across allocations",
        columns=BOXPLOT_COLUMNS,
    )
    for name, times in result.samples.items():
        table.add_row(*boxplot_row(name, times))
    return table.render()


def _campaign_metrics(result: Figure3Result) -> Dict[str, float]:
    metrics = {f"median.{name}": value for name, value in result.medians().items()}
    metrics.update({f"qcd.{name}": value for name, value in result.qcds().items()})
    return metrics


register_figure(
    "figure3",
    run,
    report,
    description="16 KiB ping-pong across the four Figure 3 placements",
    metrics=_campaign_metrics,
    data=lambda result: {
        "message_bytes": result.message_bytes,
        "samples": result.samples,
    },
)
