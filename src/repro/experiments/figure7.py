"""Figure 7 — routing impact on a large-message ping-pong.

A large-message ping-pong is measured for the Adaptive (``ADAPTIVE_0``) and
Adaptive-with-High-Bias (``ADAPTIVE_3``) modes, once with the two nodes in
the same group and once with the nodes in different groups, with cross
traffic active.  Four quantities are recorded per iteration at the sender:

* (a) the execution time of the iteration,
* (b) the stall ratio ``s`` from the NIC counters,
* (c) the packet latency ``L`` from the NIC counters,
* (d) the Equation-2 estimate built from ``s`` and ``L``.

The paper's findings, which the simulator reproduces in shape: intra-group
the Adaptive mode wins because it spreads packets over more paths and incurs
fewer stalls; inter-group the High-Bias mode wins because minimal paths are
plentiful and Adaptive pays extra latency for needless (phantom-congestion
induced) non-minimal detours — and a large share of the variability follows
the routing mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.allocation.policies import allocate_inter_chassis_pair, allocate_inter_group_pair
from repro.analysis.reporting import Table
from repro.analysis.stats import summarize
from repro.campaign.registry import register_figure
from repro.core.perf_model import estimate_transmission_cycles
from repro.core.policy import StaticRoutingPolicy
from repro.experiments.harness import ExperimentScale, build_network
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic
from repro.routing.modes import RoutingMode
from repro.workloads.microbench import PingPongBenchmark

#: Paper message size is 4 MiB; the simulated experiment scales it down.
MESSAGE_BYTES = 4 * 1024 * 1024
#: Simulated stand-in for the 4 MiB message (applied before message_scale).
SIMULATED_MESSAGE_BYTES = 128 * 1024

#: The two placements compared.
PLACEMENTS = ("intra-group", "inter-groups")
#: The two routing modes compared.
MODES = {
    "Adaptive": RoutingMode.ADAPTIVE_0,
    "HighBias": RoutingMode.ADAPTIVE_3,
}


@dataclass
class SeriesSample:
    """Per-iteration measurements for one (placement, mode) series."""

    times: List[float] = field(default_factory=list)
    stall_ratios: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    estimates: List[float] = field(default_factory=list)


@dataclass
class Figure7Result:
    """All four series keyed by ``(placement, mode_label)``."""

    message_bytes: int
    series: Dict[tuple, SeriesSample] = field(default_factory=dict)

    def median_time(self, placement: str, mode: str) -> float:
        """Median iteration time of one series."""
        return summarize(self.series[(placement, mode)].times).median

    def winner(self, placement: str) -> str:
        """Which mode has the lower median time for a placement."""
        return min(MODES, key=lambda mode: self.median_time(placement, mode))


def _allocation_for(placement: str, scale: ExperimentScale):
    topo = scale.topology()
    if placement == "intra-group":
        return allocate_inter_chassis_pair(topo)
    if placement == "inter-groups":
        return allocate_inter_group_pair(topo)
    raise ValueError(f"unknown placement {placement!r}")


def run(scale: ExperimentScale) -> Figure7Result:
    """Run the four series (2 placements × 2 modes).

    The same seed (and therefore the same background-traffic schedule) is
    used for both modes of a placement, playing the role of the paper's
    "alternate the routing algorithm on successive iterations" methodology:
    both modes face identical external conditions.
    """
    message_bytes = scale.scaled_size(SIMULATED_MESSAGE_BYTES)
    result = Figure7Result(message_bytes=message_bytes)
    nic_config = scale.simulation_config().nic
    for p_index, placement in enumerate(PLACEMENTS):
        allocation = _allocation_for(placement, scale)
        for mode_label, mode in MODES.items():
            network = build_network(scale, seed_offset=p_index)
            noise = BackgroundTraffic.for_level(
                network,
                list(allocation),
                scale.noise_level,
                max_nodes=16,
                name=f"fig7-{placement}",
            )
            if noise is not None:
                noise.start()
            job = MpiJob(
                network,
                list(allocation),
                policy_factory=lambda m=mode: StaticRoutingPolicy(m),
                name=f"fig7-{placement}-{mode_label}",
            )
            sender_nic = network.nic(allocation[0])
            sample = SeriesSample()
            snapshots = {"before": sender_nic.counters.snapshot()}

            def record(iteration: int, elapsed: int, sample=sample, snapshots=snapshots) -> None:
                after = sender_nic.counters.snapshot()
                delta = after.delta(snapshots["before"])
                snapshots["before"] = after
                stall = delta.stall_ratio
                latency = delta.avg_packet_latency
                sample.times.append(float(elapsed))
                sample.stall_ratios.append(stall)
                sample.latencies.append(latency)
                sample.estimates.append(
                    estimate_transmission_cycles(message_bytes, latency, stall, nic_config)
                )

            workload = PingPongBenchmark(
                size_bytes=message_bytes,
                iterations=scale.pingpong_repetitions,
                warmup=1,
            )
            workload.on_iteration = record
            workload.run(job)
            result.series[(placement, mode_label)] = sample
            if noise is not None:
                noise.stop()
    return result


def report(result: Figure7Result) -> str:
    """Render the four panels of Figure 7 as one table."""
    table = Table(
        title=f"Figure 7 — ping-pong ({result.message_bytes} B): routing impact",
        columns=[
            "placement",
            "mode",
            "median time",
            "QCD time",
            "median s",
            "median L",
            "median estimate",
        ],
    )
    for (placement, mode_label), sample in result.series.items():
        times = summarize(sample.times)
        table.add_row(
            placement,
            mode_label,
            times.median,
            times.qcd,
            summarize(sample.stall_ratios).median if sample.stall_ratios else 0.0,
            summarize(sample.latencies).median if sample.latencies else 0.0,
            summarize(sample.estimates).median if sample.estimates else 0.0,
        )
    lines = [table.render()]
    for placement in PLACEMENTS:
        lines.append(f"winner ({placement}): {result.winner(placement)}")
    return "\n".join(lines)


def _campaign_metrics(result: Figure7Result) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for (placement, mode), sample in result.series.items():
        stats = summarize(sample.times)
        metrics[f"median.{placement}.{mode}"] = stats.median
        metrics[f"qcd.{placement}.{mode}"] = stats.qcd
    return metrics


register_figure(
    "figure7",
    run,
    report,
    description="routing-mode impact on a large-message ping-pong",
    metrics=_campaign_metrics,
    data=lambda result: {
        "message_bytes": result.message_bytes,
        "winners": {placement: result.winner(placement) for placement in PLACEMENTS},
        "series": {
            f"{placement}/{mode}": {
                "times": sample.times,
                "stall_ratios": sample.stall_ratios,
                "latencies": sample.latencies,
                "estimates": sample.estimates,
            }
            for (placement, mode), sample in result.series.items()
        },
    },
)
