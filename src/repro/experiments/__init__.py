"""Experiment drivers: one module per table/figure of the paper.

Every module exposes a ``run(scale)`` function returning a result object and
a ``report(result)`` function rendering the same rows/series the paper
reports, so the benchmark harness only has to call and print.

The :class:`~repro.experiments.harness.ExperimentScale` object controls the
simulated system size and iteration counts; the ``smoke`` preset keeps unit
tests fast, while the ``paper`` preset (used by the benchmarks) runs the
largest configuration that completes in reasonable time on the pure-Python
simulator.  Absolute scale is therefore smaller than the 1024-node Piz Daint
runs — the quantities compared (orderings, ratios, crossovers) are the ones
the paper's conclusions rest on.
"""

from repro.experiments.harness import (
    ExperimentScale,
    PolicyComparison,
    build_network,
    compare_policies,
    policy_factories,
)

__all__ = [
    "ExperimentScale",
    "PolicyComparison",
    "build_network",
    "compare_policies",
    "policy_factories",
]
