"""Command-line runner for the experiments and campaign engine.

Legacy per-figure usage (kept stable)::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli figure3 figure7 --scale smoke
    python -m repro.experiments.cli all --scale paper --output results/

Campaign usage (the ``repro`` console script maps here too)::

    repro campaign list
    repro campaign run all --workers 4 --store campaigns/
    repro campaign run pingpong-placement --set message_kib=4,64 --dry-run
    repro campaign status --store campaigns/

``campaign run`` plans a sweep over the requested scenarios' parameter
grids, skips every run whose spec hash is already in the artifact store and
fans the rest out over worker processes.

Distributed usage (sharded workers, resumable)::

    repro campaign run noise-sweep-large --workers 4 --transport local
    repro campaign run all --workers 2 --transport socket --bind 0.0.0.0:7077
    repro campaign worker --connect coordinator-host:7077   # on other hosts
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    model_validation,
    table1,
)
from repro.experiments.harness import ExperimentScale

#: Registry of runnable experiments: name -> (run, report).  Kept for
#: backwards compatibility; execution now goes through the campaign
#: scenario registry (each module below registers itself there as well).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "figure3": (figure3.run, figure3.report),
    "table1": (table1.run, table1.report),
    "figure4": (figure4.run, figure4.report),
    "figure5": (figure5.run, figure5.report),
    "figure7": (figure7.run, figure7.report),
    "figure8": (figure8.run, figure8.report),
    "figure9": (figure9.run, figure9.report),
    "figure10": (figure10.run, figure10.report),
    "model_validation": (model_validation.run, model_validation.report),
}

#: Default artifact-store location for the campaign subcommands.
DEFAULT_STORE = pathlib.Path("campaigns")


def build_parser() -> argparse.ArgumentParser:
    """The legacy (per-figure) CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Re-run the paper's experiments on the simulated Dragonfly.",
        epilog="Use the 'campaign' subcommand for parallel, cached sweeps.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default="smoke",
        help="experiment scale preset (default: smoke)",
    )
    parser.add_argument(
        "--backend",
        choices=("flit", "flow"),
        default="flit",
        help="network-model backend (default: flit)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the master seed")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="directory to write one <experiment>.txt per experiment",
    )
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    requested = list(args.experiments)
    if not requested:
        parser.error("no experiments requested (use --list to see the choices)")
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    scale = ExperimentScale.preset(args.scale).with_backend(args.backend)
    if args.seed is not None:
        scale = scale.with_seed(args.seed)
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)

    for name in requested:
        # The raw run/report pair, not the campaign runner: the legacy path
        # only prints the report, so skip the metrics/data payload build.
        run, report = EXPERIMENTS[name]
        start = time.time()
        text = report(run(scale))
        elapsed = time.time() - start
        print(text)
        print(f"[{name} completed in {elapsed:.1f} s at scale '{scale.name}']\n")
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return 0


# -- campaign subcommands ---------------------------------------------------------


def build_campaign_parser() -> argparse.ArgumentParser:
    """Parser for ``repro campaign ...`` (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Plan, execute and inspect cached parallel scenario sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="plan and execute a campaign")
    run.add_argument(
        "scenarios",
        nargs="*",
        default=[],
        help="scenario names, 'all' (default), or 'figures'",
    )
    run.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    run.add_argument(
        "--backend",
        choices=("flit", "flow", "auto"),
        default="flit",
        help="network-model backend: cycle-accurate 'flit', fast 'flow', or "
        "'auto' to cost every cell and route it at plan time (default: "
        "flit); backends hash into distinct cache keys",
    )
    run.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="WORK",
        help="cap the plan's total estimated work (abstract units, see "
        "--dry-run); with --backend auto, cells are demoted to the cheapest "
        "backend until the plan fits; flit audit re-runs are extra, outside "
        "the budget (--dry-run reports their estimated work)",
    )
    run.add_argument(
        "--audit-fraction",
        type=float,
        default=None,
        metavar="F",
        help="fraction of flow-routed cells to re-run on the flit backend "
        "as a fidelity audit (any positive value audits at least one cell; "
        "default: 0.1 with --backend auto, else 0)",
    )
    run.add_argument("--seed", type=int, default=None, help="campaign master seed")
    run.add_argument("--workers", type=int, default=1, help="worker processes")
    run.add_argument(
        "--transport",
        choices=("pool", "local", "socket"),
        default="pool",
        help="execution substrate: in-process 'pool' (multiprocessing, the "
        "default), distributed 'local' (worker subprocesses over stdio "
        "pipes) or 'socket' (TCP; spawns --workers local workers and also "
        "accepts external 'repro campaign worker --connect' processes on "
        "--bind)",
    )
    run.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="socket transport: coordinator listen address (port 0 picks an "
        "ephemeral port; printed at startup for external workers)",
    )
    run.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="distributed transports: revoke a worker's shard lease after "
        "this many seconds of silence and re-lease it (default: 30)",
    )
    run.add_argument(
        "--store",
        type=pathlib.Path,
        default=DEFAULT_STORE,
        help=f"artifact store directory (default: {DEFAULT_STORE}/)",
    )
    run.add_argument(
        "--no-store", action="store_true", help="run without caching artifacts"
    )
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="AXIS=V1,V2",
        help="override an axis grid (repeatable)",
    )
    run.add_argument(
        "--dry-run", action="store_true", help="print the plan, execute nothing"
    )
    run.add_argument(
        "--force", action="store_true", help="re-execute runs already in the store"
    )
    run.add_argument(
        "--csv", type=pathlib.Path, default=None, help="export the store as CSV"
    )
    run.add_argument(
        "--reports", action="store_true", help="print each run's report table"
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry for this campaign: per-cell phase/span "
        "snapshots land in the store next to elapsed_s (export with "
        "'repro campaign trace', aggregate with 'status --timings'); "
        "propagates to pool and distributed workers via REPRO_TELEMETRY",
    )
    run.add_argument(
        "--probes",
        action="store_true",
        help="enable the network flight recorder: per-link-class occupancy "
        "time series and a seeded sample of UGAL routing decisions land as "
        "probes/<hash>.json sidecars in the store (analyze with 'repro "
        "campaign probe'); result payloads stay byte-identical; propagates "
        "to pool and distributed workers via REPRO_PROBES",
    )
    run.add_argument(
        "--probe-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="probe sampling interval in sim cycles (default: 256; "
        "requires --probes)",
    )
    run.add_argument(
        "--probe-decision-rate",
        type=float,
        default=None,
        metavar="F",
        help="fraction of UGAL decisions to audit, in [0, 1] "
        "(default: 0.02; requires --probes)",
    )
    from repro.sim.engine import SIM_ENGINE_KINDS

    run.add_argument(
        "--sim-engine",
        choices=SIM_ENGINE_KINDS,
        default=None,
        help="flit-backend simulation engine (default: REPRO_SIM_ENGINE or "
        "'calendar'); engines are event-for-event equivalent, so results "
        "and cache keys do not change — this is a performance knob; "
        "propagates to pool and distributed workers via REPRO_SIM_ENGINE",
    )

    lst = sub.add_parser("list", help="list registered scenarios")
    lst.add_argument("--tag", default=None, help="only scenarios with this tag")

    worker = sub.add_parser(
        "worker",
        help="serve a distributed campaign coordinator (shard-leasing loop)",
    )
    mode = worker.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="connect to a coordinator's socket transport (possibly on "
        "another host) and execute leased shards until shutdown",
    )
    mode.add_argument(
        "--stdio",
        action="store_true",
        help="serve over stdin/stdout (used by the coordinator's 'local' "
        "transport; stray stdout output is redirected to stderr)",
    )
    worker.add_argument("--name", default=None, help="worker name (default: host:pid)")
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        metavar="S",
        help="liveness ping interval while executing (default: 2)",
    )
    worker.add_argument(
        "--batch-results",
        type=int,
        default=1,
        metavar="N",
        help="buffer up to N finished cells into one result_batch frame "
        "before sending (amortizes wire framing for sub-millisecond cells; "
        "default: 1, stream every result immediately)",
    )
    worker.add_argument(
        "--preload",
        default=None,
        metavar="MODULE",
        help="import this module before serving, so scenarios registered "
        "outside repro.campaign.scenarios are executable in this worker",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-shard log lines"
    )

    status = sub.add_parser("status", help="summarize an artifact store")
    status.add_argument("--store", type=pathlib.Path, default=DEFAULT_STORE)
    status.add_argument(
        "--csv", type=pathlib.Path, default=None, help="export the store as CSV"
    )
    status.add_argument(
        "--timings",
        action="store_true",
        help="aggregate stored telemetry into a per-phase latency table "
        "(p50/p95 per scenario x backend x phase; needs runs traced with "
        "'campaign run --trace')",
    )
    status.add_argument(
        "--interference",
        action="store_true",
        help="pool stored cluster-trace cells into per-routing-mode "
        "workload interference matrices (victim x aggressor mean slowdown)",
    )

    trace = sub.add_parser(
        "trace",
        help="export stored telemetry as Chrome trace_event JSON "
        "(chrome://tracing / Perfetto)",
    )
    trace.add_argument("--store", type=pathlib.Path, default=DEFAULT_STORE)
    trace.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="output file (default: <store>/trace.json)",
    )

    probe = sub.add_parser(
        "probe",
        help="analyze stored network-probe sidecars: congestion heatmaps, "
        "link hotspot ranking, phantom-congestion audit",
    )
    probe.add_argument("--store", type=pathlib.Path, default=DEFAULT_STORE)
    probe.add_argument(
        "--heatmap",
        choices=("group-time", "link-rank"),
        default="group-time",
        help="'group-time' renders mean metric per group per time bin; "
        "'link-rank' ranks link-class series hottest-first (default: "
        "group-time)",
    )
    probe.add_argument(
        "--metric",
        default="occupancy",
        help="series metric to analyze: occupancy, queue, stalled_links, "
        "nic_stall_ratio, nic_latency (default: occupancy)",
    )
    probe.add_argument(
        "--link-class",
        choices=("local", "global", "injection", "nic"),
        default=None,
        help="restrict to one link class (default: all fabric classes)",
    )
    probe.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        help="also write the group-time heatmap matrix as CSV",
    )
    return parser


def parse_override(text: str) -> Tuple[str, List[object]]:
    """Parse one ``--set axis=v1,v2`` item, coercing numeric values.

    Empty tokens are rejected with the offending position named — silently
    skipping them (the old behaviour) could leave an axis with no values
    and expand to a zero-cell grid with no hint why.
    """
    if "=" not in text:
        raise ValueError(f"expected AXIS=V1,V2 — got {text!r}")
    axis, _, raw = text.partition("=")
    if not axis:
        raise ValueError(f"override {text!r} names no axis (expected AXIS=V1,V2)")
    if not raw.strip():
        raise ValueError(
            f"override {text!r} lists no values for axis {axis!r} "
            "(expected AXIS=V1,V2)"
        )
    values: List[object] = []
    for position, token in enumerate(raw.split(","), start=1):
        token = token.strip()
        if not token:
            raise ValueError(
                f"override {text!r} has an empty value at position {position} "
                f"for axis {axis!r}"
            )
        values.append(_coerce(token))
    return axis, values


def _coerce(token: str) -> object:
    for kind in (int, float):
        try:
            return kind(token)
        except ValueError:
            continue
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    return token


def _resolve_scenarios(requested: Sequence[str]) -> List[str]:
    """Expand the 'all'/'figures' keywords (valid in any position) and dedupe."""
    from repro.campaign.registry import get_scenario, scenario_names

    if not requested:
        return list(scenario_names())
    names: List[str] = []
    for item in requested:
        if item == "all":
            expansion = scenario_names()
        elif item == "figures":
            expansion = scenario_names(tag="figure")
        else:
            get_scenario(item)  # raises with the known names on a typo
            expansion = (item,)
        for name in expansion:
            if name not in names:
                names.append(name)
    return names


def _parse_bind(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` bind address (port may be 0 for ephemeral)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT — got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bind port {port_text!r} is not an integer") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bind port {port} outside [0, 65535]")
    return host, port


def _worker_main(args, parser) -> int:
    """The ``repro campaign worker`` loop (runs until coordinator shutdown)."""
    from repro.campaign.dist import serve_socket, serve_stdio

    if args.heartbeat <= 0:
        parser.error("--heartbeat must be positive")
    if args.batch_results < 1:
        parser.error("--batch-results must be >= 1")
    if args.preload:
        import importlib

        try:
            importlib.import_module(args.preload)
        except ImportError as exc:
            parser.error(f"cannot import --preload module {args.preload!r}: {exc}")
    # --quiet keeps its meaning (no per-shard lines); otherwise the worker
    # logs through the structured repro.telemetry logger (REPRO_LOG=json|text).
    log = (lambda text: None) if args.quiet else None
    host = port = None
    if not args.stdio:
        try:
            host, port = _parse_bind(args.connect)
        except ValueError as exc:
            parser.error(str(exc))
        if port == 0:
            parser.error("--connect needs the coordinator's concrete port")
    from repro.campaign.dist import ProtocolError

    try:
        if args.stdio:
            executed = serve_stdio(
                name=args.name,
                heartbeat_s=args.heartbeat,
                log=log,
                batch_results=args.batch_results,
            )
        else:
            executed = serve_socket(
                host,
                port,
                name=args.name,
                heartbeat_s=args.heartbeat,
                log=log,
                batch_results=args.batch_results,
            )
    except (ProtocolError, ConnectionError, OSError, ValueError) as exc:
        # A coordinator killed mid-frame (ProtocolError) or a dead peer on
        # send (ValueError from a closed stream) is the same event as a
        # refused connection: the coordinator is gone.
        import logging

        from repro.telemetry.log import get_logger, log_event

        log_event(
            get_logger("campaign.dist.worker"),
            "worker.connection_lost",
            level=logging.WARNING,
            error=str(exc),
        )
        return 3
    return 0 if executed >= 0 else 1


def campaign_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``campaign`` subcommands."""
    parser = build_campaign_parser()
    args = parser.parse_args(argv)

    from repro.campaign import (
        ArtifactStore,
        BackendRouter,
        BudgetError,
        CostHistory,
        DistOptions,
        ensure_builtin_scenarios,
        execute_plan,
        plan_campaign,
        select_audit_pairs,
    )
    from repro.campaign.plan import DEFAULT_SEED
    from repro.campaign.registry import ScenarioError, all_scenarios

    ensure_builtin_scenarios()

    if args.command == "worker":
        return _worker_main(args, parser)

    if args.command == "list":
        from repro.analysis.reporting import Table

        table = Table(
            title="registered scenarios",
            columns=["name", "grid", "axes", "tags", "description"],
        )
        for spec in all_scenarios():
            if args.tag is not None and args.tag not in spec.tags:
                continue
            axes = ", ".join(
                f"{axis}({len(values)})" for axis, values in sorted(spec.axes.items())
            )
            table.add_row(
                spec.name,
                spec.grid_size(),
                axes or "-",
                ",".join(spec.tags) or "-",
                spec.description,
            )
        print(table.render())
        return 0

    if args.command == "trace":
        from repro.telemetry.export import chrome_trace, trace_categories, write_chrome_trace

        store = ArtifactStore(args.store)
        output = args.output if args.output is not None else store.root / "trace.json"
        trace = chrome_trace(store)
        spans = sum(1 for ev in trace["traceEvents"] if ev.get("ph") == "X")
        if not spans:
            print(
                f"no telemetry in {store.root} — run campaigns with "
                "'repro campaign run --trace' first",
                file=sys.stderr,
            )
            return 2
        path = write_chrome_trace(store, output)
        cats = ", ".join(trace_categories(trace))
        print(f"wrote {path} ({spans} span(s); layers: {cats})")
        print("load it in chrome://tracing or https://ui.perfetto.dev")
        return 0

    if args.command == "probe":
        from repro.analysis import congestion

        store = ArtifactStore(args.store)
        frames = congestion.load_probe_frames(store)
        if not frames:
            print(
                f"no probe sidecars in {store.root} — run campaigns with "
                "'repro campaign run --probes' first",
                file=sys.stderr,
            )
            return 2
        print(
            f"store: {store.root} — {len(frames)} probed cell(s), "
            f"{sum(len(f.get('series') or []) for f in frames)} series"
        )
        print()
        if args.heatmap == "group-time":
            heatmap = congestion.group_time_heatmap(
                frames, metric=args.metric, link_class=args.link_class
            )
            if heatmap is None:
                print(
                    f"no series for metric {args.metric!r}"
                    + (f" in class {args.link_class!r}" if args.link_class else ""),
                    file=sys.stderr,
                )
                return 2
            print(congestion.render_heatmap(heatmap))
            if args.csv is not None:
                args.csv.parent.mkdir(parents=True, exist_ok=True)
                args.csv.write_text(
                    congestion.heatmap_csv(heatmap), encoding="utf-8"
                )
                print(f"wrote {args.csv}")
        else:
            rows = congestion.link_rank(frames, metric=args.metric, top=16)
            if not rows:
                print(f"no series for metric {args.metric!r}", file=sys.stderr)
                return 2
            print(congestion.render_link_rank(rows, args.metric))
        summary = congestion.phantom_summary(frames)
        if summary["decisions_seen"]:
            print()
            print(congestion.render_phantom(summary))
        jobs = congestion.job_alignment(store, frames, metric=args.metric)
        if jobs:
            print()
            print(congestion.render_job_alignment(jobs, args.metric))
        return 0

    if args.command == "status":
        store = ArtifactStore(args.store)
        from repro.analysis.reporting import campaign_metrics_table

        if args.timings:
            from repro.analysis.reporting import Table

            rows = store.timing_rows()
            if not rows:
                print(
                    f"no telemetry in {store.root} — run campaigns with "
                    "'repro campaign run --trace' first",
                    file=sys.stderr,
                )
                return 2
            table = Table(
                title=f"phase timings — {store.root}",
                columns=["scenario", "backend", "phase", "n", "p50 ms", "p95 ms", "total s"],
            )
            for row in rows:
                table.add_row(
                    row["scenario"], row["backend"], row["phase"], row["n"],
                    row["p50_ms"], row["p95_ms"], row["total_s"],
                )
            print(table.render())
            dropped = sum(
                int(snapshot.get("events_dropped") or 0)
                for snapshot in (
                    entry.get("telemetry") for entry in store.index().values()
                )
                if isinstance(snapshot, dict)
            )
            if dropped:
                print(
                    f"events dropped: {dropped} span event(s) hit the "
                    "tracer's per-cell cap — phase totals are exact, the "
                    "Chrome trace is truncated for those cells"
                )
            return 0

        if args.interference:
            from repro.analysis.interference import store_interference_report

            report = store_interference_report(store)
            if report is None:
                print(
                    f"no cluster-trace cells in {store.root} — run the "
                    "'cluster-trace' scenario first",
                    file=sys.stderr,
                )
                return 2
            print(report)
            return 0

        print(f"store: {store.root} — {len(store)} stored run(s)")
        for rollup in store.family_rollups():
            scales = ",".join(rollup["scales"]) or "-"
            backends = ",".join(rollup["backends"]) or "-"
            print(
                f"  {rollup['scenario']}: {rollup['runs']} run(s)  "
                f"[scale {scales}; backend {backends}; "
                f"{rollup['seeds']} seed(s); "
                f"{rollup['elapsed_total_s']:.1f}s total, "
                f"p50 {rollup['elapsed_p50_s']:.1f}s]"
            )
        rows = store.status_rows()
        if rows:
            print()
            print(campaign_metrics_table(rows))
        audit_rows = store.audit_rows()
        if audit_rows:
            print()
            print(f"audits: {len(audit_rows)} flow-vs-flit delta(s)")
            for row in audit_rows:
                rel = row["max_abs_rel_delta"]
                if rel != "":
                    rel_text = f"max |rel| {rel}"
                elif row["metrics_compared"]:
                    rel_text = (
                        f"{row['metrics_compared']} metric(s), absolute deltas only"
                    )
                else:
                    rel_text = "no shared metrics"
                print(
                    f"  {row['flow_hash']} vs {row['flit_hash']}  "
                    f"{row['scenario']}{row['params']}  ({rel_text})"
                )
        if args.csv is not None:
            path = store.export_csv(args.csv)
            print(f"wrote {path}")
        return 0

    # -- run -----------------------------------------------------------------
    if args.workers < 1 and not (args.transport == "socket" and args.workers == 0):
        # --workers 0 is meaningful only on the socket transport: listen and
        # wait for external `repro campaign worker --connect` processes.
        parser.error("--workers must be >= 1 (0 allowed with --transport socket)")
    if args.no_store and args.csv is not None:
        parser.error("--csv exports the artifact store and cannot combine with --no-store")
    if args.dry_run and args.csv is not None:
        parser.error("--csv exports executed results and cannot combine with --dry-run")
    if args.audit_fraction is not None and not 0.0 <= args.audit_fraction <= 1.0:
        parser.error("--audit-fraction must be within [0, 1]")
    if args.budget is not None and args.budget <= 0:
        parser.error("--budget must be positive")
    # Auto campaigns audit a 10% sample by default; fixed-backend campaigns
    # only audit when asked (there is no router choosing flow for them).
    audit_fraction = args.audit_fraction
    if audit_fraction is None:
        audit_fraction = 0.1 if args.backend == "auto" else 0.0
    if args.probe_interval is not None and args.probe_interval < 1:
        parser.error("--probe-interval must be >= 1")
    if args.probe_decision_rate is not None and not (
        0.0 <= args.probe_decision_rate <= 1.0
    ):
        parser.error("--probe-decision-rate must be within [0, 1]")
    if (
        args.probe_interval is not None or args.probe_decision_rate is not None
    ) and not args.probes:
        parser.error("--probe-interval/--probe-decision-rate require --probes")
    if args.trace:
        # Enable in this process (mutates the singleton pre-fork, so pool
        # workers inherit it) and in the environment (spawned dist workers
        # re-import with REPRO_TELEMETRY set).
        from repro.telemetry import TELEMETRY_ENV_VAR, enable as telemetry_enable

        os.environ[TELEMETRY_ENV_VAR] = "1"
        telemetry_enable()
    if args.probes:
        # Same pre-fork + environment propagation story as --trace.
        from repro.telemetry import (
            PROBE_DECISION_RATE_ENV_VAR,
            PROBE_INTERVAL_ENV_VAR,
            PROBES_ENV_VAR,
            enable_probes,
        )

        os.environ[PROBES_ENV_VAR] = "1"
        if args.probe_interval is not None:
            os.environ[PROBE_INTERVAL_ENV_VAR] = str(args.probe_interval)
        if args.probe_decision_rate is not None:
            os.environ[PROBE_DECISION_RATE_ENV_VAR] = str(args.probe_decision_rate)
        enable_probes(
            interval=args.probe_interval, decision_rate=args.probe_decision_rate
        )
    if args.sim_engine is not None:
        # Same propagation story as --trace: the environment covers this
        # process and forked pool workers; DistOptions.sim_engine (below)
        # re-asserts it for spawned dist workers.
        from repro.sim.engine import SIM_ENGINE_ENV_VAR

        os.environ[SIM_ENGINE_ENV_VAR] = args.sim_engine
    store = None if args.no_store else ArtifactStore(args.store)
    # Audits alone need no router — they sample the plan at execute time.
    router = None
    if args.backend == "auto" or args.budget is not None:
        # Seed the cost estimates from recorded wall-clock history: any
        # (scenario, scale, backend) group with >= 3 stored runs is costed
        # from its measured median instead of the static proxy.
        router = BackendRouter(budget=args.budget, history=CostHistory.from_store(store))
    try:
        names = _resolve_scenarios(args.scenarios)
        overrides: Dict[str, List[object]] = {}
        for item in args.overrides:
            axis, values = parse_override(item)
            if axis in overrides:
                raise ValueError(
                    f"axis {axis!r} overridden twice — use --set {axis}=v1,v2 "
                    "for multiple values"
                )
            overrides[axis] = values
        from repro.telemetry import timed

        with timed("plan", backend=args.backend, scale=args.scale):
            plan = plan_campaign(
                names,
                scale=args.scale,
                seed=args.seed if args.seed is not None else DEFAULT_SEED,
                overrides=overrides,
                name="+".join(names) if len(names) <= 3 else f"{len(names)}-scenarios",
                backend=args.backend,
                router=router,
            )
    except BudgetError as exc:
        print(f"budget error: {exc}", file=sys.stderr)
        return 2
    except (ScenarioError, ValueError) as exc:
        parser.error(str(exc))

    if args.dry_run:
        print(plan.describe())
        audit_pairs = select_audit_pairs(plan, audit_fraction)
        if audit_pairs:
            extra = ""
            if plan.costs:
                by_spec = {cell.spec: cell for cell in plan.costs}
                audit_work = sum(
                    by_spec[flow_spec].estimates["flit"].work
                    for flow_spec, _ in audit_pairs
                    if flow_spec in by_spec and "flit" in by_spec[flow_spec].estimates
                )
                extra = (
                    f" (~{audit_work:,.0f} units of flit work, "
                    "not counted against the budget)"
                )
            print(f"audits: {len(audit_pairs)} flit re-run(s) scheduled{extra}")
            for flow_spec, twin in audit_pairs:
                print(f"  {flow_spec.spec_hash()} -> {twin.spec_hash()}  {twin.label()}")
        if store is not None:
            cached = sum(1 for spec in plan if store.has(spec))
            print(f"cache: {cached}/{len(plan)} already stored in {store.root}")
        return 0

    def progress(done: int, total: int, record) -> None:
        if record.error:
            status = f"FAILED: {record.error}"
        elif record.cached:
            status = "cached"
        else:
            status = f"{record.elapsed_s:.1f} s"
        print(f"[{done}/{total}] {record.spec.spec_hash()}  {record.spec.label()}  ({status})")
        if args.reports and record.ok and record.report:
            print(record.report)

    if args.transport == "pool":
        result = execute_plan(
            plan,
            store=store,
            workers=args.workers,
            progress=progress,
            force=args.force,
            audit_fraction=audit_fraction,
        )
    else:
        try:
            host, port = _parse_bind(args.bind)
            options = DistOptions(
                workers=args.workers,
                transport=args.transport,
                bind_host=host,
                bind_port=port,
                lease_timeout_s=args.lease_timeout,
                sim_engine=args.sim_engine,
                probes=args.probes,
                probe_interval=args.probe_interval,
                probe_decision_rate=args.probe_decision_rate,
            )
        except ValueError as exc:
            parser.error(str(exc))
        from repro.campaign import Coordinator, run_audits

        coordinator = Coordinator(
            plan, store=store, options=options, progress=progress, force=args.force
        )
        if coordinator.address is not None:
            bound_host, bound_port = coordinator.address
            print(
                f"coordinator listening on {bound_host}:{bound_port} — attach "
                f"more workers with: repro campaign worker "
                f"--connect {bound_host}:{bound_port}"
            )
        result = coordinator.run()
        if audit_fraction > 0.0:
            run_audits(plan, result, store, audit_fraction, force=args.force)
    for audit in result.audits:
        if not audit.ok:
            print(
                f"[audit] {audit.spec.spec_hash()}  {audit.twin.label()}  "
                f"FAILED: {audit.record.error}"
            )
            continue
        rel = audit.max_abs_rel()
        if rel is not None:
            rel_text = f"max |rel delta| {rel:.4f}"
        elif audit.deltas:
            # Metrics were compared but every flit value was zero, so no
            # relative deviation exists — only absolute deltas.
            rel_text = f"{len(audit.deltas)} metric(s), absolute deltas only"
        else:
            rel_text = "no shared metrics"
        status = "cached" if audit.record.cached else f"{audit.record.elapsed_s:.1f} s"
        print(
            f"[audit] {audit.spec.spec_hash()} vs {audit.twin.spec_hash()}  "
            f"{audit.twin.label()}  ({status}, {rel_text})"
        )
    print(result.summary())
    if store is not None:
        print(f"artifacts: {store.root}")
        if args.csv is not None:
            print(f"wrote {store.export_csv(args.csv)}")
        if args.trace:
            from repro.telemetry import TELEMETRY, snapshot_of

            # Campaign-level phases (plan, the run loop's own spans) become a
            # session payload next to any dist-session telemetry.
            snapshot = snapshot_of(TELEMETRY.tracer, TELEMETRY.metrics)
            snapshot["kind"] = "campaign"
            store.save_session_telemetry(snapshot)
            traced = sum(
                1 for entry in store.index().values() if "telemetry" in entry
            )
            print(
                f"telemetry: {traced} traced cell(s) in store — "
                f"'repro campaign trace --store {store.root}' exports the "
                "Chrome trace, 'repro campaign status --timings' aggregates"
            )
        if args.probes:
            probed = sum(
                1 for entry in store.index().values() if "probes" in entry
            )
            print(
                f"probes: {probed} probed cell(s) in store — "
                f"'repro campaign probe --store {store.root}' renders the "
                "congestion heatmap and phantom-congestion audit"
            )
    return 1 if result.failed else 0


def console_main() -> int:  # pragma: no cover - thin wrapper around main()
    """Entry point for the ``repro`` console script (SIGPIPE-friendly)."""
    try:
        return main()
    except BrokenPipeError:  # e.g. `repro campaign list | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in docs
    sys.exit(console_main())
