"""Command-line runner for the per-figure experiments.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli figure3 figure7 --scale smoke
    python -m repro.experiments.cli all --scale paper --output results/

Each experiment prints the same table the corresponding benchmark produces;
``--output`` additionally writes one text file per experiment.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    model_validation,
    table1,
)
from repro.experiments.harness import ExperimentScale

#: Registry of runnable experiments: name -> (run, report).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "figure3": (figure3.run, figure3.report),
    "table1": (table1.run, table1.report),
    "figure4": (figure4.run, figure4.report),
    "figure5": (figure5.run, figure5.report),
    "figure7": (figure7.run, figure7.report),
    "figure8": (figure8.run, figure8.report),
    "figure9": (figure9.run, figure9.report),
    "figure10": (figure10.run, figure10.report),
    "model_validation": (model_validation.run, model_validation.report),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Re-run the paper's experiments on the simulated Dragonfly.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default="smoke",
        help="experiment scale preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the master seed")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="directory to write one <experiment>.txt per experiment",
    )
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    requested = list(args.experiments)
    if not requested:
        parser.error("no experiments requested (use --list to see the choices)")
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    scale = ExperimentScale.smoke() if args.scale == "smoke" else ExperimentScale.paper()
    if args.seed is not None:
        scale = scale.with_seed(args.seed)
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)

    for name in requested:
        run, report = EXPERIMENTS[name]
        start = time.time()
        result = run(scale)
        text = report(result)
        elapsed = time.time() - start
        print(text)
        print(f"[{name} completed in {elapsed:.1f} s at scale '{scale.name}']\n")
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in docs
    sys.exit(main())
