"""Figure 9 — the microbenchmark suite on the small (Cori-like) allocation.

Identical to Figure 8 except for the job size: the paper ran 64 nodes
scattered over 33 routers in 5 groups of Cori and obtained the same
qualitative picture as on the 1024-node Piz Daint allocation.  The driver
simply reuses the Figure 8 machinery with ``scale.small_job_nodes``.
"""

from __future__ import annotations

from repro.campaign.registry import register_figure
from repro.experiments.figure8 import (
    MicrobenchmarkSuiteResult,
    _suite_data,
    _suite_metrics,
    report as _report,
    run_small,
)
from repro.experiments.harness import ExperimentScale


def run(scale: ExperimentScale) -> MicrobenchmarkSuiteResult:
    """Run the small-allocation suite."""
    return run_small(scale)


def report(result: MicrobenchmarkSuiteResult) -> str:
    """Render the Figure 9 table."""
    return _report(result)


register_figure(
    "figure9",
    run,
    report,
    description="microbenchmark suite on the small (Cori-like) allocation",
    metrics=_suite_metrics,
    data=_suite_data,
)
