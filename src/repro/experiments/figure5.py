"""Figure 5 — execution-time QCD vs. packet-latency QCD.

A ping-pong between two nodes in different groups is repeated for several
message sizes.  For every iteration we record both the end-to-end execution
time and the average packet latency reported by the sender's NIC counters.
The QCD of the execution time is consistently larger than the QCD of the
latency — i.e. using communication-time variability as a noise estimate
overestimates network noise — and the gap narrows as messages grow and the
latency contribution to the total time shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.allocation.policies import allocate_inter_group_pair
from repro.analysis.reporting import Table
from repro.analysis.stats import quartile_coefficient_of_dispersion
from repro.campaign.registry import register_figure
from repro.experiments.harness import ExperimentScale, build_network
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic
from repro.workloads.microbench import PingPongBenchmark

#: Message sizes of the sweep, in bytes.
MESSAGE_SIZES = (512, 4096, 32768, 131072)


@dataclass
class Figure5Result:
    """Per message size: execution times and per-iteration packet latencies."""

    execution_times: Dict[int, List[float]] = field(default_factory=dict)
    packet_latencies: Dict[int, List[float]] = field(default_factory=dict)

    def qcds(self) -> Dict[int, Tuple[float, float]]:
        """``size -> (execution-time QCD, latency QCD)``."""
        out: Dict[int, Tuple[float, float]] = {}
        for size in self.execution_times:
            out[size] = (
                quartile_coefficient_of_dispersion(self.execution_times[size]),
                quartile_coefficient_of_dispersion(self.packet_latencies[size]),
            )
        return out


def run(scale: ExperimentScale) -> Figure5Result:
    """Run the inter-group ping-pong sweep, recording times and latencies."""
    topo = scale.topology()
    allocation = allocate_inter_group_pair(topo)
    result = Figure5Result()
    for index, size in enumerate(MESSAGE_SIZES):
        size_bytes = scale.scaled_size(size)
        network = build_network(scale, seed_offset=index)
        noise = BackgroundTraffic.for_level(
            network, list(allocation), scale.noise_level, max_nodes=16, name=f"fig5-{size}"
        )
        if noise is not None:
            noise.start()
        job = MpiJob(network, list(allocation), name=f"fig5-{size}")
        sender_nic = network.nic(allocation[0])

        times: List[float] = []
        latencies: List[float] = []
        snapshots = {"before": sender_nic.counters.snapshot()}

        workload = PingPongBenchmark(
            size_bytes=size_bytes,
            iterations=scale.pingpong_repetitions,
            warmup=1,
        )

        def record(iteration: int, elapsed: int) -> None:
            after = sender_nic.counters.snapshot()
            delta = after.delta(snapshots["before"])
            snapshots["before"] = after
            times.append(float(elapsed))
            latencies.append(delta.avg_packet_latency)

        workload.on_iteration = record
        workload.run(job)
        # Drop iterations where no responses were counted (should not happen).
        result.execution_times[size_bytes] = times
        result.packet_latencies[size_bytes] = [l for l in latencies if l > 0] or latencies
        if noise is not None:
            noise.stop()
    return result


def report(result: Figure5Result) -> str:
    """Render the QCD comparison of Figure 5."""
    table = Table(
        title="Figure 5 — QCD of execution time vs. packet latency (inter-group ping-pong)",
        columns=["message size (B)", "QCD exec time", "QCD latency", "exec/latency"],
    )
    for size, (qcd_time, qcd_latency) in sorted(result.qcds().items()):
        ratio = qcd_time / qcd_latency if qcd_latency > 0 else float("inf")
        table.add_row(size, qcd_time, qcd_latency, ratio)
    return table.render()


def _campaign_metrics(result: Figure5Result) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for size, (qcd_time, qcd_latency) in result.qcds().items():
        metrics[f"qcd_time.{size}"] = qcd_time
        metrics[f"qcd_latency.{size}"] = qcd_latency
    return metrics


register_figure(
    "figure5",
    run,
    report,
    description="execution-time QCD vs. packet-latency QCD (inter-group ping-pong)",
    metrics=_campaign_metrics,
    data=lambda result: {
        "execution_times": {str(k): v for k, v in result.execution_times.items()},
        "packet_latencies": {str(k): v for k, v in result.packet_latencies.items()},
    },
)
