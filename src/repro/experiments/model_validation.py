"""Section 2.4 — validation of the performance model (Equation 2).

A ping-pong is run over several allocations and message sizes; for every
(allocation, size) sample we compare the measured one-way transmission time
with the Equation-2 estimate built from the NIC counters of the same run.
The paper reports an average correlation of 79 % over 40 allocations on
Piz Daint for sizes from 128 B to 16 MiB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.allocation.policies import allocate_scattered
from repro.analysis.reporting import Table
from repro.campaign.registry import register_figure
from repro.core.perf_model import estimate_transmission_cycles, model_correlation
from repro.experiments.harness import ExperimentScale, build_network
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic
from repro.workloads.microbench import PingPongBenchmark

#: Message sizes of the validation sweep (bytes, before scaling).
MESSAGE_SIZES = (128, 1024, 8192, 65536, 262144)
#: Number of distinct (random pair) allocations sampled.
DEFAULT_ALLOCATIONS = 6


@dataclass
class ModelValidationResult:
    """Measured vs. estimated transmission times for every sample."""

    samples: List[Tuple[int, int, float, float]] = field(default_factory=list)
    """(allocation index, message bytes, measured cycles, estimated cycles)."""

    def correlation(self) -> float:
        """Pearson correlation over all samples (paper: ≈ 0.79)."""
        measured = [s[2] for s in self.samples]
        estimated = [s[3] for s in self.samples]
        return model_correlation(estimated, measured)

    def per_size_correlation(self) -> dict:
        """Correlation computed per message size (requires ≥ 2 allocations)."""
        sizes = sorted({s[1] for s in self.samples})
        out = {}
        for size in sizes:
            measured = [s[2] for s in self.samples if s[1] == size]
            estimated = [s[3] for s in self.samples if s[1] == size]
            if len(measured) >= 2:
                out[size] = model_correlation(estimated, measured)
        return out


def run(
    scale: ExperimentScale, num_allocations: int = DEFAULT_ALLOCATIONS
) -> ModelValidationResult:
    """Run the validation sweep over random two-node allocations."""
    topo = scale.topology()
    nic_config = scale.simulation_config().nic
    result = ModelValidationResult()
    rng = __import__("random").Random(scale.seed + 42)
    for alloc_index in range(num_allocations):
        allocation = allocate_scattered(topo, 2, rng, name=f"val-{alloc_index}")
        for size_index, raw_size in enumerate(MESSAGE_SIZES):
            size = scale.scaled_size(raw_size)
            network = build_network(scale, seed_offset=alloc_index * 100 + size_index)
            noise = BackgroundTraffic.for_level(
                network,
                list(allocation),
                scale.noise_level,
                max_nodes=12,
                name=f"val-{alloc_index}-{size}",
            )
            if noise is not None:
                noise.start()
            job = MpiJob(network, list(allocation), name=f"val-{alloc_index}-{size}")
            sender_nic = network.nic(allocation[0])
            before = sender_nic.counters.snapshot()
            workload = PingPongBenchmark(
                size_bytes=size,
                iterations=max(2, scale.iterations),
                warmup=1,
            )
            run_result = workload.run(job)
            delta = sender_nic.counters.snapshot().delta(before)
            # A ping-pong iteration is two one-way transmissions plus host
            # overheads; compare the measured half-round-trip with Eq. 2.
            measured = run_result.median_time() / 2.0
            estimated = estimate_transmission_cycles(
                size, delta.avg_packet_latency, delta.stall_ratio, nic_config
            )
            result.samples.append((alloc_index, size, measured, estimated))
            if noise is not None:
                noise.stop()
    return result


def report(result: ModelValidationResult) -> str:
    """Render overall and per-size correlations."""
    table = Table(
        title="Section 2.4 — performance-model validation (Equation 2)",
        columns=["message size (B)", "samples", "correlation"],
    )
    per_size = result.per_size_correlation()
    for size, corr in sorted(per_size.items()):
        count = sum(1 for s in result.samples if s[1] == size)
        table.add_row(size, count, corr)
    lines = [table.render()]
    lines.append(f"overall correlation: {result.correlation():.3f} (paper reports ≈ 0.79)")
    return "\n".join(lines)


def _campaign_metrics(result: ModelValidationResult) -> Dict[str, float]:
    metrics = {"correlation": result.correlation()}
    for size, corr in result.per_size_correlation().items():
        metrics[f"correlation.{size}"] = corr
    return metrics


register_figure(
    "model_validation",
    run,
    report,
    description="Equation-2 performance-model validation sweep",
    metrics=_campaign_metrics,
    data=lambda result: {"samples": [list(sample) for sample in result.samples]},
)
