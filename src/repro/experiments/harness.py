"""Shared infrastructure for the per-figure experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.allocation.job import JobAllocation
from repro.config import SimulationConfig, TopologyConfig
from repro.core.policy import (
    ApplicationAwarePolicy,
    RoutingPolicy,
    default_policy,
    high_bias_policy,
)
from repro.model.base import NetworkModel, build_network_model
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.workloads.base import Workload, WorkloadResult


@dataclass(frozen=True)
class ExperimentScale:
    """Controls how large the simulated experiments are.

    The paper's measurements used up to 1024 nodes of Piz Daint; a pure-Python
    packet-level simulation cannot reach that size in reasonable time, so each
    experiment is run at a reduced — but structurally equivalent — scale.
    """

    name: str
    #: Topology of the simulated machine.
    num_groups: int
    chassis_per_group: int
    blades_per_chassis: int
    nodes_per_router: int
    #: Nodes used by the measured job in the "large" experiments (Fig. 8).
    large_job_nodes: int
    #: Nodes used by the "small system" experiments (Fig. 9, Cori-like).
    small_job_nodes: int
    #: Nodes used by the application experiments (Fig. 10).
    app_job_nodes: int
    #: Measured iterations per configuration.
    iterations: int
    #: Repetitions of the ping-pong style experiments.
    pingpong_repetitions: int
    #: Cross-traffic level applied while measuring.
    noise_level: NoiseLevel
    #: Message-size scale factor applied to workload inputs (1.0 = as listed).
    message_scale: float = 1.0
    #: NIC packetization used by the experiments.  The hardware uses 64-byte
    #: packets of 16-byte flits; the larger experiments coalesce packets
    #: (keeping the packet/flit ratio) so the pure-Python simulator moves
    #: fewer packets per byte — a pure simulation-cost knob, documented in
    #: EXPERIMENTS.md.
    packet_payload_bytes: int = 64
    flit_payload_bytes: int = 16
    seed: int = 2019
    #: Network-model backend the experiments run on (``flit`` or ``flow``).
    backend: str = "flit"

    # -- presets -----------------------------------------------------------------

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny configuration used by the unit/integration tests."""
        return cls(
            name="smoke",
            num_groups=3,
            chassis_per_group=2,
            blades_per_chassis=2,
            nodes_per_router=2,
            large_job_nodes=8,
            small_job_nodes=6,
            app_job_nodes=8,
            iterations=2,
            pingpong_repetitions=6,
            noise_level=NoiseLevel.LIGHT,
            message_scale=0.25,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Benchmark configuration (reduced-scale stand-in for the paper runs)."""
        return cls(
            name="paper",
            num_groups=5,
            chassis_per_group=3,
            blades_per_chassis=8,
            nodes_per_router=4,
            large_job_nodes=32,
            small_job_nodes=16,
            app_job_nodes=32,
            iterations=3,
            pingpong_repetitions=25,
            noise_level=NoiseLevel.MODERATE,
            message_scale=1.0,
            packet_payload_bytes=256,
            flit_payload_bytes=64,
        )

    @classmethod
    def preset(cls, name: str) -> "ExperimentScale":
        """Look up a preset by name — the form used by campaign run specs."""
        value = name.lower()
        if value == "smoke":
            return cls.smoke()
        if value == "paper":
            return cls.paper()
        raise ValueError(f"unknown scale preset {name!r} (use 'smoke' or 'paper')")

    @classmethod
    def from_env(cls, variable: str = "REPRO_BENCH_SCALE") -> "ExperimentScale":
        """Pick a preset from an environment variable.

        The default is ``smoke`` so that the full benchmark harness completes
        in minutes on a laptop; export ``REPRO_BENCH_SCALE=paper`` for the
        larger configuration (hours of pure-Python simulation — see
        EXPERIMENTS.md for per-figure runtime expectations).
        """
        value = os.environ.get(variable, "smoke")
        try:
            return cls.preset(value)
        except ValueError:
            raise ValueError(
                f"unknown {variable} value {value!r} (use 'smoke' or 'paper')"
            ) from None

    # -- derived -------------------------------------------------------------------

    def topology(self) -> TopologyConfig:
        """The topology configuration for this scale."""
        return TopologyConfig(
            num_groups=self.num_groups,
            chassis_per_group=self.chassis_per_group,
            blades_per_chassis=self.blades_per_chassis,
            nodes_per_router=self.nodes_per_router,
            global_links_per_router=max(
                1,
                -(-(self.num_groups - 1) // (self.chassis_per_group * self.blades_per_chassis)),
            ),
        )

    def simulation_config(self, seed_offset: int = 0) -> SimulationConfig:
        """Full simulation configuration for this scale."""
        config = SimulationConfig(
            topology=self.topology(),
            seed=self.seed + seed_offset,
            backend=self.backend,
        )
        return config.with_nic(
            packet_payload_bytes=self.packet_payload_bytes,
            flit_payload_bytes=self.flit_payload_bytes,
        )

    def scaled_size(self, size_bytes: int) -> int:
        """Apply the message-size scale factor (minimum 8 bytes)."""
        return max(8, int(size_bytes * self.message_scale))

    def with_seed(self, seed: int) -> "ExperimentScale":
        """Copy with a different seed (different allocation / noise draw)."""
        return replace(self, seed=seed)

    def with_backend(self, backend: str) -> "ExperimentScale":
        """Copy selecting a different network-model backend."""
        return replace(self, backend=backend)


def build_network(scale: ExperimentScale, seed_offset: int = 0) -> NetworkModel:
    """A fresh substrate for one experiment run (backend per the scale)."""
    return build_network_model(scale.simulation_config(seed_offset))


def policy_factories(config: SimulationConfig) -> Dict[str, Callable[[], RoutingPolicy]]:
    """The three routing configurations compared in Figures 8–10."""
    return {
        "Default": default_policy,
        "HighBias": high_bias_policy,
        "AppAware": lambda: ApplicationAwarePolicy(config.nic),
    }


@dataclass
class PolicyComparison:
    """Results of one workload under each routing policy (same allocation)."""

    workload: str
    parameters: Dict[str, object]
    allocation: str
    results: Dict[str, WorkloadResult] = field(default_factory=dict)

    def normalized_medians(self, baseline: str = "Default") -> Dict[str, float]:
        """Median iteration time of each policy / median of the baseline."""
        base = self.results[baseline].median_time()
        return {name: res.median_time() / base for name, res in self.results.items()}

    def best_policy(self) -> str:
        """The policy with the lowest median iteration time."""
        return min(self.results, key=lambda name: self.results[name].median_time())

    def app_aware_fraction_default(self) -> Optional[float]:
        """% of traffic the AppAware policy sent with the Default family."""
        result = self.results.get("AppAware")
        if result is None:
            return None
        return result.default_traffic_fraction


def compare_policies(
    scale: ExperimentScale,
    allocation: JobAllocation,
    workload_factory: Callable[[], Workload],
    policies: Optional[Sequence[str]] = None,
    noise_level: Optional[NoiseLevel] = None,
    seed_offset: int = 0,
) -> PolicyComparison:
    """Run one workload under each routing policy on the *same* allocation.

    A fresh network (same seed → same wiring, same background-traffic
    placement) is built per policy so that no state leaks between runs; the
    allocation is fixed across policies, following the methodology rule of
    Section 3.1.
    """
    level = noise_level if noise_level is not None else scale.noise_level
    sample = workload_factory()
    comparison = PolicyComparison(
        workload=sample.name,
        parameters=dict(sample.parameters),
        allocation=allocation.name,
    )
    config = scale.simulation_config(seed_offset)
    factories = policy_factories(config)
    selected = policies or list(factories)
    for policy_name in selected:
        factory = factories[policy_name]
        network = build_network_model(config)
        noise = BackgroundTraffic.for_level(
            network, list(allocation), level, name=f"noise-{policy_name}"
        )
        if noise is not None:
            noise.start()
        job = MpiJob(
            network,
            list(allocation),
            policy_factory=factory,
            name=f"{sample.name}-{policy_name}",
        )
        workload = workload_factory()
        comparison.results[policy_name] = workload.run(job)
        if noise is not None:
            noise.stop()
    return comparison
