"""Figure 4 — intra-node Alltoall variability (no network involved).

Eight processes on one node run ``MPI_Alltoall`` for several message sizes.
The network is never used, yet the execution time varies noticeably because
of host-side effects (memory-bandwidth contention between the processes and
OS noise).  This demonstrates the Section 3.3 rule: variation of
communication-routine execution time is *not* a network-noise measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import BOXPLOT_COLUMNS, Table, boxplot_row
from repro.analysis.stats import summarize
from repro.campaign.registry import register_figure
from repro.experiments.harness import ExperimentScale, build_network
from repro.mpi.job import MpiJob
from repro.workloads.microbench import AlltoallBenchmark

#: Message sizes of the sweep (bytes per rank pair).
MESSAGE_SIZES = (256, 1024, 4096, 16384)
#: Processes per node, as in the paper.
PROCESSES = 8


@dataclass
class Figure4Result:
    """Execution-time samples per message size."""

    processes: int
    samples: Dict[int, List[int]] = field(default_factory=dict)

    def qcds(self) -> Dict[int, float]:
        """QCD of the execution time per message size."""
        return {size: summarize(times).qcd for size, times in self.samples.items()}


def run(scale: ExperimentScale) -> Figure4Result:
    """Run the intra-node Alltoall sweep."""
    result = Figure4Result(processes=PROCESSES)
    for index, size in enumerate(MESSAGE_SIZES):
        size_bytes = scale.scaled_size(size)
        network = build_network(scale, seed_offset=index)
        # All ranks share node 0: every transfer goes through the host model.
        job = MpiJob(network, [0] * PROCESSES, name=f"fig4-{size}")
        workload = AlltoallBenchmark(
            size_bytes=size_bytes,
            iterations=max(scale.iterations * 4, 8),
            warmup=1,
        )
        run_result = workload.run(job)
        result.samples[size_bytes] = list(run_result.iteration_times)
    return result


def report(result: Figure4Result) -> str:
    """Render the per-size execution time distributions."""
    table = Table(
        title=f"Figure 4 — intra-node Alltoall ({result.processes} processes, no network)",
        columns=BOXPLOT_COLUMNS,
    )
    for size, times in sorted(result.samples.items()):
        table.add_row(*boxplot_row(f"{size} B", times))
    return table.render()


def _campaign_metrics(result: Figure4Result) -> Dict[str, float]:
    return {f"qcd.{size}": value for size, value in result.qcds().items()}


register_figure(
    "figure4",
    run,
    report,
    description="intra-node Alltoall variability (host effects, no network)",
    metrics=_campaign_metrics,
    data=lambda result: {
        "processes": result.processes,
        "samples": {str(size): times for size, times in result.samples.items()},
    },
)
