"""Figures 8 and 9 — microbenchmarks under the three routing configurations.

Each microbenchmark (ping-pong, allreduce, alltoall, barrier, broadcast,
halo3d, sweep3d) is run, for several input sizes, under

* **Default** — ``ADAPTIVE_0`` (``ADAPTIVE_1`` for Alltoall),
* **HighBias** — ``ADAPTIVE_3``,
* **AppAware** — Algorithm 1,

on one fixed, scattered multi-group allocation with cross traffic active.
The reported quantity is the iteration time normalized by the median of the
Default configuration (values below 1 mean faster than Default), plus the
percentage of traffic the Application-Aware policy sent with the Default
family.  Figure 8 uses the large allocation (1024 nodes on Piz Daint in the
paper); Figure 9 repeats the experiment on a small allocation (64 nodes on
Cori) — here both are reduced-scale but keep the large/small relationship.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.allocation.policies import allocate_scattered
from repro.campaign.registry import register_figure
from repro.analysis.reporting import Table
from repro.experiments.harness import (
    ExperimentScale,
    PolicyComparison,
    compare_policies,
)
from repro.workloads.base import Workload
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    BroadcastBenchmark,
    PingPongBenchmark,
)
from repro.workloads.stencils import Halo3DBenchmark, Sweep3DBenchmark

#: (benchmark name, input label, factory builder) — the Figure 8 test matrix.
BenchmarkSpec = Tuple[str, str, Callable[[ExperimentScale], Callable[[], Workload]]]


def _pingpong(size: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: PingPongBenchmark(
            size_bytes=scale.scaled_size(size),
            iterations=scale.iterations,
            pingpongs_per_iteration=4,
        )

    return build


def _allreduce(elements: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: AllreduceBenchmark(
            elements=max(8, int(elements * scale.message_scale)),
            iterations=scale.iterations,
        )

    return build


def _alltoall(size: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: AlltoallBenchmark(
            size_bytes=scale.scaled_size(size), iterations=scale.iterations
        )

    return build


def _barrier() -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: BarrierBenchmark(
            barriers_per_iteration=8, iterations=scale.iterations
        )

    return build


def _broadcast(size: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: BroadcastBenchmark(
            size_bytes=scale.scaled_size(size), iterations=scale.iterations
        )

    return build


def _halo3d(domain: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: Halo3DBenchmark(
            domain=max(8, int(domain * scale.message_scale)),
            iterations=scale.iterations,
        )

    return build


def _sweep3d(domain: int) -> Callable[[ExperimentScale], Callable[[], Workload]]:
    def build(scale: ExperimentScale) -> Callable[[], Workload]:
        return lambda: Sweep3DBenchmark(
            domain=max(8, int(domain * scale.message_scale)),
            iterations=scale.iterations,
        )

    return build


def benchmark_matrix() -> List[BenchmarkSpec]:
    """The benchmark/input matrix of Figure 8 (sizes scaled by the harness)."""
    return [
        ("pingpong", "16KiB", _pingpong(16 * 1024)),
        ("pingpong", "128KiB", _pingpong(128 * 1024)),
        ("allreduce", "512", _allreduce(512)),
        ("allreduce", "8192", _allreduce(8192)),
        ("alltoall", "256B", _alltoall(256)),
        ("alltoall", "2KiB", _alltoall(2 * 1024)),
        ("barrier", "8x", _barrier()),
        ("broadcast", "16KiB", _broadcast(16 * 1024)),
        ("broadcast", "128KiB", _broadcast(128 * 1024)),
        ("halo3d", "64", _halo3d(64)),
        ("halo3d", "128", _halo3d(128)),
        ("sweep3d", "64", _sweep3d(64)),
        ("sweep3d", "128", _sweep3d(128)),
    ]


@dataclass
class MicrobenchmarkSuiteResult:
    """One row per (benchmark, input): the three normalized series."""

    figure: str
    job_nodes: int
    allocation_summary: str
    comparisons: List[Tuple[str, str, PolicyComparison]] = field(default_factory=list)

    def rows(self) -> List[List[object]]:
        """Rows matching the paper's figure annotation."""
        out: List[List[object]] = []
        for bench, label, comparison in self.comparisons:
            normalized = comparison.normalized_medians()
            fraction = comparison.app_aware_fraction_default()
            out.append(
                [
                    bench,
                    label,
                    comparison.results["Default"].median_time(),
                    normalized.get("Default", 1.0),
                    normalized.get("HighBias", float("nan")),
                    normalized.get("AppAware", float("nan")),
                    (fraction * 100.0) if fraction is not None else float("nan"),
                    comparison.best_policy(),
                ]
            )
        return out

    def app_aware_win_rate(self) -> float:
        """Fraction of configurations where AppAware is within 10 % of the best."""
        if not self.comparisons:
            return 0.0
        wins = 0
        for _, _, comparison in self.comparisons:
            normalized = comparison.normalized_medians()
            best = min(normalized.values())
            if normalized.get("AppAware", float("inf")) <= best * 1.10:
                wins += 1
        return wins / len(self.comparisons)


def run_suite(
    scale: ExperimentScale,
    job_nodes: int,
    figure: str,
    specs: Sequence[BenchmarkSpec] = (),
) -> MicrobenchmarkSuiteResult:
    """Run the benchmark matrix on a scattered allocation of ``job_nodes``."""
    topo = scale.topology()
    rng = __import__("random").Random(scale.seed + job_nodes)
    allocation = allocate_scattered(topo, job_nodes, rng, name=f"{figure}-alloc")
    result = MicrobenchmarkSuiteResult(
        figure=figure,
        job_nodes=job_nodes,
        allocation_summary=allocation.describe(topo),
    )
    matrix = list(specs) if specs else benchmark_matrix()
    for bench, label, builder in matrix:
        factory = builder(scale)
        comparison = compare_policies(scale, allocation, factory)
        result.comparisons.append((bench, label, comparison))
    return result


def run(scale: ExperimentScale) -> MicrobenchmarkSuiteResult:
    """Figure 8: the large-allocation microbenchmark suite."""
    return run_suite(scale, scale.large_job_nodes, figure="figure8")


def run_small(scale: ExperimentScale) -> MicrobenchmarkSuiteResult:
    """Figure 9: the same suite on the small (Cori-like) allocation."""
    return run_suite(scale, scale.small_job_nodes, figure="figure9")


def report(result: MicrobenchmarkSuiteResult) -> str:
    """Render the normalized-time rows of Figure 8/9."""
    table = Table(
        title=(
            f"{result.figure} — microbenchmarks, {result.job_nodes} nodes "
            f"({result.allocation_summary}); times normalized to Default median"
        ),
        columns=[
            "benchmark",
            "input",
            "median Default (cycles)",
            "Default",
            "HighBias",
            "AppAware",
            "% default traffic (AppAware)",
            "best",
        ],
    )
    for row in result.rows():
        table.add_row(*row)
    lines = [table.render()]
    lines.append(
        f"AppAware within 10% of the best static mode in "
        f"{result.app_aware_win_rate() * 100:.0f}% of configurations"
    )
    return "\n".join(lines)


def _suite_metrics(result: MicrobenchmarkSuiteResult) -> Dict[str, float]:
    metrics: Dict[str, float] = {"app_aware_win_rate": result.app_aware_win_rate()}
    for bench, label, comparison in result.comparisons:
        for policy, value in comparison.normalized_medians().items():
            metrics[f"{bench}.{label}.{policy}"] = value
    return metrics


def _suite_data(result: MicrobenchmarkSuiteResult) -> Dict[str, object]:
    return {
        "figure": result.figure,
        "job_nodes": result.job_nodes,
        "allocation": result.allocation_summary,
        "rows": [
            {
                "benchmark": bench,
                "input": label,
                "normalized": comparison.normalized_medians(),
                "best": comparison.best_policy(),
                "app_aware_default_fraction": comparison.app_aware_fraction_default(),
            }
            for bench, label, comparison in result.comparisons
        ],
    }


register_figure(
    "figure8",
    run,
    report,
    description="microbenchmark suite, large allocation, three routing configs",
    metrics=_suite_metrics,
    data=_suite_data,
)
