"""Registration of the flit-level simulator as the ``flit`` backend.

The concrete model lives in :mod:`repro.network.network`; this module only
binds it into the backend registry so that
``build_network_model(config, backend="flit")`` resolves to it, and
registers the backend's cost estimator (an event-count proxy — see
:class:`repro.model.cost.FlitCostModel`) alongside.
"""

from __future__ import annotations

from repro.model.base import register_backend, register_cost_model
from repro.model.cost import FlitCostModel
from repro.network.network import Network


def _build_flit(config=None, sim=None, streams=None) -> Network:
    return Network(config=config, sim=sim, streams=streams)


register_backend("flit", _build_flit)
register_cost_model(FlitCostModel())
