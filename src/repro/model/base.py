"""The :class:`NetworkModel` protocol: what every substrate backend provides.

The MPI layer, the workloads, the noise injectors, the experiment drivers and
the campaign scenarios all talk to the network through this interface rather
than a concrete simulator class, so the substrate can be swapped per run:

* ``flit`` — the cycle-accurate flit-level simulator
  (:class:`repro.network.network.Network`), faithful but slow;
* ``flow`` — the flow-level engine
  (:class:`repro.model.flow.network.FlowNetwork`), which resolves traffic
  with a max-min fair-share bandwidth allocation and the paper's (L, s)
  latency/stall model, orders of magnitude faster.

A backend must expose

* :meth:`send` — submit an application message with a per-message routing
  mode (the quantity the paper's application-aware library controls);
* the shared discrete-event clock (``sim``) with :meth:`run` /
  :meth:`run_until_idle`;
* per-NIC counters (:meth:`nic` → object with a ``counters``
  :class:`~repro.network.counters.NicCounters` block) and per-router
  statistics (:meth:`router`, :meth:`total_flits_traversed`) — the simulated
  PAPI surface Algorithm 1 (:mod:`repro.core.selector`) is driven by.

Backends register themselves in a module-level registry keyed by their
``backend_name``; :func:`build_network_model` resolves
``SimulationConfig.backend`` (or an explicit override) against it.
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar, Dict, Iterable, Optional, TYPE_CHECKING

from repro.config import SimulationConfig
from repro.model.cost import CostModel
from repro.routing.modes import RoutingMode
from repro.network.packet import Message, RdmaOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.topology.dragonfly import DragonflyTopology


class NetworkModel(abc.ABC):
    """Abstract substrate: a wired system ready to carry traffic.

    Concrete backends provide the attributes ``config``
    (:class:`~repro.config.SimulationConfig`), ``sim``
    (:class:`~repro.sim.engine.Simulator`), ``streams``
    (:class:`~repro.sim.rng.RandomStreams`), ``topology``
    (:class:`~repro.topology.dragonfly.DragonflyTopology`) and the counter
    ``delivered_messages`` in addition to the methods below.
    """

    #: Registry key of the backend (``"flit"``, ``"flow"``, ...).
    backend_name: ClassVar[str] = "abstract"

    config: SimulationConfig
    sim: "Simulator"
    streams: "RandomStreams"
    topology: "DragonflyTopology"
    delivered_messages: int

    # -- traffic ---------------------------------------------------------------

    @abc.abstractmethod
    def send(
        self,
        src_node: int,
        dst_node: int,
        size_bytes: int,
        routing_mode: RoutingMode = RoutingMode.ADAPTIVE_0,
        op: RdmaOp = RdmaOp.PUT,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_acked: Optional[Callable[[Message], None]] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Submit a message to the source NIC and return its handle."""

    # -- access helpers --------------------------------------------------------

    @abc.abstractmethod
    def nic(self, node_id: int):
        """The NIC attached to a node (must expose ``counters``)."""

    @abc.abstractmethod
    def router(self, router_id: int):
        """Per-router statistics view (``flits_traversed``, ``stalled_cycles``)."""

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of compute nodes in the system."""

    @property
    @abc.abstractmethod
    def num_routers(self) -> int:
        """Number of routers in the system."""

    # -- execution -------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Advance the simulation (see :meth:`repro.sim.engine.Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until every queued event has been processed."""
        return self.sim.run_until_idle(max_events=max_events)

    # -- system-wide statistics ------------------------------------------------

    @abc.abstractmethod
    def total_flits_traversed(self, router_ids: Optional[Iterable[int]] = None) -> int:
        """Flits observed by the (selected) routers — Table 1 'incoming flits'."""

    @abc.abstractmethod
    def reset_counters(self) -> None:
        """Zero every NIC and router counter (a fresh measurement interval)."""


#: backend name -> constructor ``(config, sim, streams) -> NetworkModel``.
_BACKENDS: Dict[str, Callable[..., NetworkModel]] = {}


class BackendError(LookupError):
    """Unknown backend name (subclasses LookupError for clean CLI messages)."""


def register_backend(name: str, factory: Callable[..., NetworkModel]) -> None:
    """Register a network-model backend constructor under ``name``."""
    if name in _BACKENDS:
        raise BackendError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def _ensure_builtins() -> None:
    """Import the built-in backend modules (idempotent, lazy).

    Lazy because :mod:`repro.network.network` imports this module to
    subclass :class:`NetworkModel`; importing it back at package-import
    time would be circular.  Each backend module also registers its cost
    model, so the cost registry is populated by the same imports.
    """
    from repro.model import flit as _flit  # noqa: F401 - registration side effect
    from repro.model.flow import network as _flow  # noqa: F401 - registration side effect
    from repro.model.flow import cost as _flow_cost  # noqa: F401 - registration side effect


def available_backends() -> tuple:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_BACKENDS))


def build_network_model(
    config: Optional[SimulationConfig] = None,
    sim: Optional["Simulator"] = None,
    streams: Optional["RandomStreams"] = None,
    backend: Optional[str] = None,
) -> NetworkModel:
    """Build the substrate selected by ``backend`` or ``config.backend``.

    The explicit ``backend`` argument wins over the config field, so callers
    can reuse one :class:`SimulationConfig` across backends (the parity tests
    do exactly that).
    """
    _ensure_builtins()
    config = config or SimulationConfig()
    name = backend if backend is not None else config.backend
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS)) or "<none>"
        raise BackendError(
            f"unknown network-model backend {name!r} (known: {known})"
        ) from None
    return factory(config=config, sim=sim, streams=streams)


#: backend name -> :class:`~repro.model.cost.CostModel` estimating its runs.
_COST_MODELS: Dict[str, CostModel] = {}


def register_cost_model(model: CostModel) -> None:
    """Register a backend's cost estimator under its ``backend_name``.

    The cost registry parallels the backend registry: a backend without a
    cost model still runs, it just cannot be auto-routed to by the campaign
    planner (:mod:`repro.campaign.router`).
    """
    name = model.backend_name
    if name in _COST_MODELS:
        raise BackendError(f"cost model for backend {name!r} is already registered")
    _COST_MODELS[name] = model


def cost_model_for(name: str) -> CostModel:
    """The cost estimator registered for a backend name."""
    _ensure_builtins()
    try:
        return _COST_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_COST_MODELS)) or "<none>"
        raise BackendError(
            f"no cost model registered for backend {name!r} (known: {known})"
        ) from None


def available_cost_models() -> tuple:
    """Backend names that have a registered cost model, sorted."""
    _ensure_builtins()
    return tuple(sorted(_COST_MODELS))
