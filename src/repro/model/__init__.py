"""Pluggable network-model backends behind the :class:`NetworkModel` protocol.

The built-in backends are

* ``flit`` — cycle-accurate flit-level simulation
  (:class:`repro.network.network.Network`, bound in :mod:`repro.model.flit`);
* ``flow`` — fast flow-level engine with max-min fair-share bandwidth
  allocation (:class:`repro.model.flow.network.FlowNetwork`).

Use :func:`build_network_model` to construct the substrate selected by a
:class:`~repro.config.SimulationConfig` (or an explicit backend override).
Registration is lazy — the factory imports the backend modules on first
use — because :mod:`repro.network.network` itself imports
:mod:`repro.model.base` to subclass the protocol; importing the concrete
backends at package-import time would be circular.
"""

from repro.model.base import (
    BackendError,
    NetworkModel,
    available_backends,
    build_network_model,
    register_backend,
)

__all__ = [
    "BackendError",
    "NetworkModel",
    "available_backends",
    "build_network_model",
    "register_backend",
]
