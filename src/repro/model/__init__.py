"""Pluggable network-model backends behind the :class:`NetworkModel` protocol.

The built-in backends are

* ``flit`` — cycle-accurate flit-level simulation
  (:class:`repro.network.network.Network`, bound in :mod:`repro.model.flit`);
* ``flow`` — fast flow-level engine with max-min fair-share bandwidth
  allocation (:class:`repro.model.flow.network.FlowNetwork`).

Use :func:`build_network_model` to construct the substrate selected by a
:class:`~repro.config.SimulationConfig` (or an explicit backend override).
Registration is lazy — the factory imports the backend modules on first
use — because :mod:`repro.network.network` itself imports
:mod:`repro.model.base` to subclass the protocol; importing the concrete
backends at package-import time would be circular.

Every backend also registers a :class:`~repro.model.cost.CostModel` — an
estimator mapping a :class:`~repro.model.cost.WorkloadProfile` to abstract
work units — which the campaign planner uses to route grid cells to the
cheapest adequate backend (``backend="auto"``).
"""

from repro.model.base import (
    BackendError,
    NetworkModel,
    available_backends,
    available_cost_models,
    build_network_model,
    cost_model_for,
    register_backend,
    register_cost_model,
)
from repro.model.cost import CostEstimate, CostModel, WorkloadProfile

__all__ = [
    "BackendError",
    "CostEstimate",
    "CostModel",
    "NetworkModel",
    "WorkloadProfile",
    "available_backends",
    "available_cost_models",
    "build_network_model",
    "cost_model_for",
    "register_backend",
    "register_cost_model",
]
