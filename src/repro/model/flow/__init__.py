"""Flow-level network backend: max-min fair-share bandwidth allocation."""

from repro.model.flow.network import FlowNetwork
from repro.model.flow.solver import FairShareSolver, FlowState

__all__ = ["FairShareSolver", "FlowNetwork", "FlowState"]
