"""Flow-level network backend: max-min fair-share bandwidth allocation."""

from repro.model.flow.engine import (
    ENGINE_KINDS,
    ReferenceFairShareEngine,
    SolverEngineError,
    default_engine_kind,
    make_engine,
)
from repro.model.flow.network import FlowNetwork
from repro.model.flow.solver import FairShareSolver, FlowState

__all__ = [
    "ENGINE_KINDS",
    "FairShareSolver",
    "FlowNetwork",
    "FlowState",
    "ReferenceFairShareEngine",
    "SolverEngineError",
    "default_engine_kind",
    "make_engine",
]
