"""Iterative max-min fair-share bandwidth allocation over a link graph.

The flow-level engine replaces per-flit event processing with a fluid
approximation: every in-flight message (or sub-flow, when a message is
spread over several paths) is a *flow* with a remaining volume in flits and
a set of directed links it occupies.  Link capacities are expressed in
flits per cycle.  Whenever the flow set changes, the solver recomputes the
max-min fair allocation by *progressive filling* (Bertsekas & Gallager):

1. every unfrozen flow's rate grows uniformly;
2. the growth step is the largest delta that neither saturates a link nor
   pushes a flow past its individual rate cap (e.g. the NIC's outstanding-
   packet window expressed as a bandwidth-delay product);
3. flows on saturated links — and flows that hit their cap — are frozen;
4. repeat until every flow is frozen.

The algorithm terminates after at most ``len(flows) + len(links)``
iterations and allocates every link either fully or up to the demand of the
flows crossing it — the textbook water-filling fixed point.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Tuple

LinkKey = Hashable

#: Relative tolerance used when comparing rates/capacities.  Saturation and
#: cap tests scale it by the capacity being compared against: float error in
#: the progressive-filling arithmetic is relative to the operand magnitude,
#: so an absolute epsilon mis-freezes links whose capacity is far from 1.0
#: (a 1e6-flits/cycle link never gets within 1e-9 of empty; a 1e-6 link is
#: "saturated" before any flow touches it).
EPS = 1e-9


def saturation_eps(capacity: float) -> float:
    """Saturation tolerance for a link of the given capacity."""
    return EPS * capacity


def cap_eps(cap: float) -> float:
    """Tolerance for a flow-rate cap comparison (finite caps scale, inf never hits)."""
    if math.isinf(cap):
        return EPS
    return EPS * max(1.0, cap)


class FlowState:
    """One fluid flow: remaining volume, occupied links and a rate cap."""

    __slots__ = ("flow_id", "links", "remaining", "rate", "cap", "payload")

    def __init__(
        self,
        flow_id: int,
        links: Tuple[LinkKey, ...],
        volume_flits: float,
        cap: float = float("inf"),
        payload: object = None,
    ):
        if volume_flits <= 0:
            raise ValueError("flow volume must be positive")
        if cap <= 0:
            raise ValueError("flow rate cap must be positive")
        self.flow_id = flow_id
        self.links = links
        self.remaining = float(volume_flits)
        #: Current allocated rate in flits/cycle (set by the solver).
        self.rate = 0.0
        self.cap = cap
        #: Opaque owner data (the engine stores its message bookkeeping here).
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowState {self.flow_id} remaining={self.remaining:.1f} "
            f"rate={self.rate:.3f}>"
        )


class FairShareSolver:
    """Computes max-min fair rates for a set of flows over shared links."""

    def __init__(self, capacity_of):
        #: ``capacity_of(link_key) -> flits/cycle`` for any link a flow uses.
        self._capacity_of = capacity_of

    def solve(self, flows: Iterable[FlowState]) -> int:
        """Assign ``flow.rate`` for every flow (progressive filling).

        Returns the number of filling rounds performed (for the engine
        statistics; callers are free to ignore it).
        """
        rounds = 0
        active: List[FlowState] = [f for f in flows]
        if not active:
            return rounds
        # Residual capacity, saturation tolerance and unfrozen-flow count per
        # link actually in use.
        residual: Dict[LinkKey, float] = {}
        sat_eps: Dict[LinkKey, float] = {}
        count: Dict[LinkKey, int] = {}
        for flow in active:
            flow.rate = 0.0
            for link in flow.links:
                if link not in residual:
                    capacity = float(self._capacity_of(link))
                    residual[link] = capacity
                    sat_eps[link] = saturation_eps(capacity)
                    count[link] = 0
                count[link] += 1

        # Progressive filling: all unfrozen rates rise together by the
        # largest step allowed by the tightest link or flow cap.
        unfrozen = active
        while unfrozen:
            rounds += 1
            step = min(f.cap - f.rate for f in unfrozen)
            for link, n in count.items():
                if n > 0:
                    share = residual[link] / n
                    if share < step:
                        step = share
            step = max(step, 0.0)
            saturated: List[LinkKey] = []
            for link, n in count.items():
                if n > 0:
                    residual[link] -= step * n
                    if residual[link] <= sat_eps[link]:
                        saturated.append(link)
            saturated_set = set(saturated)
            still: List[FlowState] = []
            for flow in unfrozen:
                flow.rate += step
                if flow.rate >= flow.cap - cap_eps(flow.cap):
                    frozen = True
                else:
                    frozen = any(link in saturated_set for link in flow.links)
                if frozen:
                    for link in flow.links:
                        count[link] -= 1
                else:
                    still.append(flow)
            if len(still) == len(unfrozen):  # pragma: no cover - safety valve
                # No progress is only possible through floating-point
                # pathology; freeze everything rather than spin.
                break
            unfrozen = still
        return rounds

    def completion_horizon(self, flows: Iterable[FlowState]) -> float:
        """Cycles until the earliest flow drains at current rates (inf if none)."""
        horizon = float("inf")
        for flow in flows:
            if flow.rate > EPS:
                horizon = min(horizon, flow.remaining / flow.rate)
        return horizon
