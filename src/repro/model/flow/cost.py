"""Registration of the flow backend's cost estimator.

The estimator itself (:class:`repro.model.cost.FlowCostModel` — the
``O(flows x links x fill-rounds)`` solver-work proxy) lives next to the
:class:`~repro.model.cost.CostModel` protocol; this module binds it into
the registry, mirroring how :mod:`repro.model.flow.network` binds the
backend constructor.  Both are imported together by
:func:`repro.model.base._ensure_builtins`.
"""

from __future__ import annotations

from repro.model.base import register_cost_model
from repro.model.cost import FlowCostModel

register_cost_model(FlowCostModel())
