"""Solver engines: incremental drivers around the fair-share allocation.

:class:`~repro.model.flow.network.FlowNetwork` does not call the solver
directly; it talks to an *engine* that owns the active flow set and decides
how much work each re-solve actually performs.  Two implementations share
the same API:

``reference``
    Pure-Python dict arithmetic (:class:`ReferenceFairShareEngine` wrapping
    :class:`~repro.model.flow.solver.FairShareSolver`).  Every ``solve()``
    recomputes every flow from scratch.  Kept as the executable
    specification the vectorized engine is property-tested against, and as
    the fallback when NumPy is unavailable.

``vectorized``
    :class:`~repro.model.flow.vectorized.VectorizedFairShareEngine` — flat
    NumPy arrays (CSR-style flow x link incidence, dense per-link capacity
    vector) plus *incremental* re-solves that only touch the connected
    component of the flow/link sharing graph whose membership changed.

Engine API (duck-typed; both classes implement it):

* ``add_flow(flow)`` / ``remove_flow(flow)`` — membership changes; the
  engine tracks which links became dirty.
* ``solve()`` — recompute rates for whatever subset the dirty state
  requires.  A call with no membership changes is (near) free.
* ``advance(dt)`` — drain ``remaining`` by ``rate * dt`` for every flow.
* ``completion_horizon()`` — cycles until the earliest flow drains.
* ``drained(threshold)`` — flows whose remaining volume is exhausted, with
  their ``remaining``/``rate`` attributes synchronized.
* ``rate_of(flow)`` / ``remaining_of(flow)`` — current per-flow values
  (under the vectorized engine the authoritative copy lives in arrays, and
  ``FlowState`` attributes are synchronized only on removal).
* ``stats`` — dict of solve counters (``solves``, ``full``,
  ``incremental``, ``skipped``, ``rounds``, ``flows_touched``) used by the
  coalescing tests and the solver benchmark.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List

from repro.model.flow.solver import EPS, FairShareSolver, FlowState

#: Environment variable overriding the flow-solver engine selection.
SOLVER_ENV_VAR = "REPRO_FLOW_SOLVER"

#: Engine names accepted by :func:`make_engine` / the env override.
ENGINE_KINDS = ("reference", "vectorized")


class SolverEngineError(RuntimeError):
    """Unknown engine kind, or an engine whose dependencies are missing."""


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - exercised only without numpy
        return False
    return True


def default_engine_kind() -> str:
    """The engine used when none is requested explicitly.

    ``REPRO_FLOW_SOLVER`` wins when set; otherwise ``vectorized`` whenever
    NumPy imports, falling back to the pure-Python reference engine.
    """
    requested = os.environ.get(SOLVER_ENV_VAR, "").strip().lower()
    if requested:
        if requested not in ENGINE_KINDS:
            raise SolverEngineError(
                f"{SOLVER_ENV_VAR}={requested!r} is not a known flow-solver "
                f"engine (known: {', '.join(ENGINE_KINDS)})"
            )
        return requested
    return "vectorized" if _numpy_available() else "reference"


def make_engine(kind: str, capacity_of: Callable[[object], float]):
    """Build a solver engine by name (``reference`` or ``vectorized``)."""
    if kind == "reference":
        return ReferenceFairShareEngine(capacity_of)
    if kind == "vectorized":
        if not _numpy_available():  # pragma: no cover - env dependent
            raise SolverEngineError(
                "the vectorized flow-solver engine requires numpy; install it "
                "or select REPRO_FLOW_SOLVER=reference"
            )
        from repro.model.flow.vectorized import VectorizedFairShareEngine

        return VectorizedFairShareEngine(capacity_of)
    raise SolverEngineError(
        f"unknown flow-solver engine {kind!r} (known: {', '.join(ENGINE_KINDS)})"
    )


def new_stats() -> Dict[str, int]:
    """A zeroed engine-statistics block (shared shape across engines)."""
    return {
        "solves": 0,
        "full": 0,
        "incremental": 0,
        "skipped": 0,
        "rounds": 0,
        "flows_touched": 0,
        # Incremental component walks that crossed _FULL_SOLVE_FRACTION and
        # fell back to a full solve (always 0 for the reference engine).
        "aborts": 0,
    }


class ReferenceFairShareEngine:
    """Pure-Python engine: full re-solve over a dict of flows.

    The executable specification for the vectorized engine.  ``FlowState``
    attributes (``rate``, ``remaining``) are always authoritative here.
    """

    kind = "reference"

    def __init__(self, capacity_of: Callable[[object], float]):
        self._solver = FairShareSolver(capacity_of)
        self._flows: Dict[int, FlowState] = {}
        self._dirty = False
        self.stats = new_stats()

    # -- membership --------------------------------------------------------

    def add_flow(self, flow: FlowState) -> None:
        if flow.flow_id in self._flows:
            raise ValueError(f"flow {flow.flow_id} already registered")
        self._flows[flow.flow_id] = flow
        self._dirty = True

    def remove_flow(self, flow: FlowState) -> None:
        del self._flows[flow.flow_id]
        self._dirty = True

    def __len__(self) -> int:
        return len(self._flows)

    def flows(self) -> Iterator[FlowState]:
        return iter(self._flows.values())

    # -- solving -----------------------------------------------------------

    def solve(self) -> None:
        self.stats["solves"] += 1
        if not self._dirty:
            self.stats["skipped"] += 1
            return
        self._dirty = False
        self.stats["full"] += 1
        self.stats["flows_touched"] += len(self._flows)
        self.stats["rounds"] += self._solver.solve(self._flows.values())

    # -- progress ----------------------------------------------------------

    def advance(self, dt: float) -> None:
        if dt <= 0:
            return
        for flow in self._flows.values():
            if flow.rate > 0.0:
                flow.remaining -= flow.rate * dt

    def completion_horizon(self) -> float:
        return self._solver.completion_horizon(self._flows.values())

    def drained(self, threshold: float) -> List[FlowState]:
        return [f for f in self._flows.values() if f.remaining <= threshold]

    # -- per-flow access ---------------------------------------------------

    def rate_of(self, flow: FlowState) -> float:
        return flow.rate

    def remaining_of(self, flow: FlowState) -> float:
        return flow.remaining


__all__ = [
    "ENGINE_KINDS",
    "EPS",
    "ReferenceFairShareEngine",
    "SOLVER_ENV_VAR",
    "SolverEngineError",
    "default_engine_kind",
    "make_engine",
    "new_stats",
]
