"""Vectorized, incrementally-updated max-min fair-share engine.

Same fixed point as :class:`~repro.model.flow.solver.FairShareSolver`
(progressive filling / water-filling), computed over flat NumPy arrays
instead of per-flow Python loops:

* **Dense link table.**  Every distinct link key is interned to an integer
  id; capacities (and the per-link relative saturation tolerance) live in
  dense vectors built once per topology — the ``capacity_of`` callback runs
  once per link, ever, not once per link per solve.
* **CSR incidence.**  Each solve gathers the affected flows' link-id arrays
  into one flat ``cols`` array with row offsets, so a filling round is a
  handful of ``np.minimum``/``np.logical_or.reduceat``/``np.bincount``
  operations over the whole component at once.
* **Incremental re-solves.**  ``add_flow``/``remove_flow`` mark the touched
  links dirty.  ``solve()`` walks the flow/link sharing graph from the
  dirty links and re-runs filling only over that connected component — the
  max-min allocation decomposes exactly over components, so every other
  flow keeps its frozen rate.  When the dirty region grows past half the
  active flows the walk aborts and a plain full vectorized solve runs
  instead (the walk would cost more than it saves).
* **Vectorized progress.**  ``advance``/``completion_horizon``/``drained``
  are single array expressions, which is what keeps *completion handling*
  (one event per message, each previously touching every live flow in
  Python) from dominating at 10^5 concurrent flows.

``FlowState`` attributes are synchronized lazily: the authoritative
``rate``/``remaining`` live in the slot arrays, and are written back to the
Python objects when a flow is removed or reported drained.  Use
``rate_of``/``remaining_of`` to observe a live flow.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.model.flow.engine import new_stats
from repro.model.flow.solver import EPS, FlowState, cap_eps

#: Rebuild the per-round CSR arrays once this fraction of rows froze.
_COMPACT_FRACTION = 0.5

#: Minimum component size for which compaction is worth the rebuild.
_COMPACT_MIN_ROWS = 128

#: Fraction of the active flow set beyond which the component walk aborts
#: into a full solve.
_FULL_SOLVE_FRACTION = 0.5

#: Components at or below this many flows fill through the scalar path:
#: NumPy's fixed per-call overhead (array gathering, unique, reduceat
#: setup) exceeds the cost of a plain dict loop for small problems, and
#: most incremental re-solves on lightly loaded systems are small.
_SMALL_COMPONENT = 48


def _grow(array: np.ndarray, needed: int) -> np.ndarray:
    """Return ``array`` grown geometrically to cover index ``needed``."""
    size = max(16, array.size)
    while size <= needed:
        size *= 2
    grown = np.zeros(size, dtype=array.dtype)
    grown[: array.size] = array
    return grown


class VectorizedFairShareEngine:
    """NumPy-backed fair-share engine with incremental component re-solves."""

    kind = "vectorized"

    def __init__(self, capacity_of: Callable[[object], float], initial: int = 256):
        self._capacity_of = capacity_of

        # -- link table (dense, grown geometrically) -----------------------
        self._link_index: Dict[object, int] = {}
        self._cap = np.zeros(initial)
        self._sat_eps = np.zeros(initial)
        #: link id -> set of flow slots crossing it (for the component walk).
        self._members: List[set] = []

        # -- flow slots ----------------------------------------------------
        self._remaining = np.zeros(initial)
        self._rate = np.zeros(initial)
        self._fcap = np.zeros(initial)
        self._fcap_eps = np.zeros(initial)
        self._alive = np.zeros(initial, dtype=bool)
        self._slot_links: List[Optional[np.ndarray]] = [None] * initial
        self._flow_at: List[Optional[FlowState]] = [None] * initial
        self._free: List[int] = list(range(initial - 1, -1, -1))
        self._slot_of: Dict[int, int] = {}
        self._count = 0

        #: Link ids whose flow membership changed since the last solve.
        self._dirty: set = set()
        #: Slots of newly added linkless flows, awaiting their cap rate at
        #: the next solve (they join no component, so no link goes dirty).
        self._linkless_pending: List[int] = []
        self.stats = new_stats()

    # -- link interning ----------------------------------------------------

    def _link_id(self, key: object) -> int:
        lid = self._link_index.get(key)
        if lid is None:
            lid = len(self._link_index)
            self._link_index[key] = lid
            if lid >= self._cap.size:
                self._cap = _grow(self._cap, lid)
                self._sat_eps = _grow(self._sat_eps, lid)
            capacity = float(self._capacity_of(key))
            self._cap[lid] = capacity
            self._sat_eps[lid] = EPS * capacity
            self._members.append(set())
        return lid

    @property
    def known_links(self) -> int:
        """Number of distinct links interned into the dense capacity table."""
        return len(self._link_index)

    # -- membership --------------------------------------------------------

    def _alloc_slot(self) -> int:
        if not self._free:
            old = self._alive.size
            self._remaining = _grow(self._remaining, old)
            self._rate = _grow(self._rate, old)
            self._fcap = _grow(self._fcap, old)
            self._fcap_eps = _grow(self._fcap_eps, old)
            alive = np.zeros(self._remaining.size, dtype=bool)
            alive[:old] = self._alive
            self._alive = alive
            self._slot_links.extend([None] * (self._remaining.size - old))
            self._flow_at.extend([None] * (self._remaining.size - old))
            self._free.extend(range(self._remaining.size - 1, old - 1, -1))
        return self._free.pop()

    def add_flow(self, flow: FlowState) -> None:
        if flow.flow_id in self._slot_of:
            raise ValueError(f"flow {flow.flow_id} already registered")
        slot = self._alloc_slot()
        links = np.fromiter(
            (self._link_id(key) for key in flow.links),
            dtype=np.int64,
            count=len(flow.links),
        )
        self._slot_links[slot] = links
        self._flow_at[slot] = flow
        self._slot_of[flow.flow_id] = slot
        self._remaining[slot] = flow.remaining
        self._rate[slot] = flow.rate
        self._fcap[slot] = flow.cap
        self._fcap_eps[slot] = cap_eps(flow.cap)
        self._alive[slot] = True
        self._count += 1
        if links.size == 0:
            self._linkless_pending.append(slot)
        dirty = self._dirty
        for lid in links.tolist():
            self._members[lid].add(slot)
            dirty.add(lid)

    def remove_flow(self, flow: FlowState) -> None:
        slot = self._slot_of.pop(flow.flow_id)
        flow.remaining = float(self._remaining[slot])
        flow.rate = float(self._rate[slot])
        dirty = self._dirty
        for lid in self._slot_links[slot].tolist():
            self._members[lid].discard(slot)
            dirty.add(lid)
        self._alive[slot] = False
        self._rate[slot] = 0.0
        self._remaining[slot] = 0.0
        self._slot_links[slot] = None
        self._flow_at[slot] = None
        self._free.append(slot)
        self._count -= 1

    def __len__(self) -> int:
        return self._count

    def flows(self) -> Iterator[FlowState]:
        return (f for f in self._flow_at if f is not None)

    # -- solving -----------------------------------------------------------

    def solve(self) -> None:
        self.stats["solves"] += 1
        if self._linkless_pending:
            # Same fixed point as the reference solver: a flow crossing no
            # link is bounded only by its own cap.
            for slot in self._linkless_pending:
                if self._alive[slot] and self._slot_links[slot].size == 0:
                    self._rate[slot] = self._fcap[slot]
            self._linkless_pending.clear()
        if not self._dirty:
            self.stats["skipped"] += 1
            return
        dirty = [lid for lid in self._dirty if self._members[lid]]
        self._dirty.clear()
        if not dirty or self._count == 0:
            # Only emptied links were touched: no surviving flow shares a
            # link with anything that changed, so every rate stands.
            self.stats["skipped"] += 1
            return

        slots = self._affected_component(dirty)
        self.stats["flows_touched"] += slots.size
        self._fill(slots)

    def _affected_component(self, dirty: List[int]) -> np.ndarray:
        """Slots of the connected component(s) containing the dirty links.

        Aborts into the full alive set once the component covers more than
        ``_FULL_SOLVE_FRACTION`` of the active flows — closure still holds
        (the full set trivially contains every co-flow), and the walk is
        pure-Python, so past that point it costs more than the fill saves.
        """
        threshold = self._count * _FULL_SOLVE_FRACTION
        affected: set = set()
        seen_links = set(dirty)
        stack = list(dirty)
        full = False
        while stack and not full:
            lid = stack.pop()
            for slot in self._members[lid]:
                if slot in affected:
                    continue
                affected.add(slot)
                if len(affected) > threshold:
                    full = True
                    break
                for other in self._slot_links[slot].tolist():
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        if full or len(affected) >= self._count:
            if full:
                self.stats["aborts"] += 1
            self.stats["full"] += 1
            return np.flatnonzero(self._alive)
        self.stats["incremental"] += 1
        slots = np.fromiter(affected, dtype=np.int64, count=len(affected))
        slots.sort()
        return slots

    def _fill(self, slots: np.ndarray) -> None:
        """Progressive filling over one closed set of slots (vectorized)."""
        if slots.size == 0:
            return
        slot_links = self._slot_links
        row_lens = np.fromiter(
            (slot_links[s].size for s in slots), dtype=np.int64, count=slots.size
        )
        empty = row_lens == 0
        if empty.any():
            # A linkless flow is only bounded by its own cap; it also shares
            # nothing, so it drops out of the component before the fill.
            for slot in slots[empty].tolist():
                self._rate[slot] = self._fcap[slot]
            slots = slots[~empty]
            row_lens = row_lens[~empty]
            if slots.size == 0:
                return
        if slots.size == 1:
            # Single-flow fast path: alone on its links, the flow takes the
            # tightest capacity (or its own cap) with no filling rounds.
            slot = int(slots[0])
            links = slot_links[slot]
            occupied, occurrences = np.unique(links, return_counts=True)
            rate = min(
                float(self._fcap[slot]),
                float(np.min(self._cap[occupied] / occurrences)),
            )
            self._rate[slot] = rate
            self.stats["rounds"] += 1
            return
        if slots.size <= _SMALL_COMPONENT:
            self._fill_small(slots)
            return

        cols = np.concatenate([slot_links[s] for s in slots])
        uniq, inv = np.unique(cols, return_inverse=True)
        residual = self._cap[uniq].copy()
        sat_eps = self._sat_eps[uniq]
        ptr = np.zeros(slots.size + 1, dtype=np.int64)
        np.cumsum(row_lens, out=ptr[1:])

        cur_slots = slots
        rate = np.zeros(slots.size)
        fcap = self._fcap[slots].copy()
        fcap_eps = self._fcap_eps[slots]
        count = np.bincount(inv, minlength=uniq.size).astype(np.float64)
        unfrozen = np.ones(slots.size, dtype=bool)
        n_unfrozen = slots.size
        flow_comp, link_comp, n_comp = self._label_components(inv, ptr, row_lens)
        # Uniform filling with one min-step *per connected component*: the
        # max-min allocation decomposes over components, so each component
        # follows exactly the reference solver's trajectory while disjoint
        # bottlenecks resolve in the same round instead of serializing on
        # the global minimum.  Every round saturates at least one link or
        # cap-freezes at least one flow per active component, so the bound
        # below only trips on floating-point pathology.
        max_rounds = 2 * (slots.size + uniq.size) + 8

        while n_unfrozen:
            self.stats["rounds"] += 1
            max_rounds -= 1
            active = count > 0.0
            share = np.divide(
                residual, count, out=np.full(uniq.size, np.inf), where=active
            )
            comp_step = np.full(n_comp, np.inf)
            np.minimum.at(comp_step, flow_comp[unfrozen], (fcap - rate)[unfrozen])
            np.minimum.at(comp_step, link_comp, share)
            np.maximum(comp_step, 0.0, out=comp_step)

            rate[unfrozen] += comp_step[flow_comp[unfrozen]]
            # Finished components carry an inf step; their links all have
            # count == 0, so the masked product keeps residual untouched.
            consumed = np.zeros(uniq.size)
            np.multiply(comp_step[link_comp], count, out=consumed, where=active)
            residual -= consumed

            saturated = (residual <= sat_eps) & active
            if saturated.any():
                row_sat = np.logical_or.reduceat(saturated[inv], ptr[:-1])
            else:
                row_sat = np.zeros(cur_slots.size, dtype=bool)
            newly = unfrozen & (row_sat | (rate >= fcap - fcap_eps))
            if not newly.any():
                if max_rounds <= 0 or not np.isfinite(comp_step).any():
                    # Safety valve (same as the reference solver): freeze
                    # everything rather than spin on numerical noise.
                    break
                continue

            count -= np.bincount(
                inv[np.repeat(newly, row_lens)], minlength=uniq.size
            )
            unfrozen &= ~newly
            n_unfrozen = int(np.count_nonzero(unfrozen))

            if (
                n_unfrozen
                and cur_slots.size > _COMPACT_MIN_ROWS
                and n_unfrozen < cur_slots.size * _COMPACT_FRACTION
            ):
                # Compact: flush frozen rates, keep only unfrozen rows, and
                # remap the link arrays to the surviving local ids so every
                # later round works on the smaller problem.
                self._rate[cur_slots] = rate
                keep_rows = np.repeat(unfrozen, row_lens)
                cur_slots = cur_slots[unfrozen]
                flow_comp = flow_comp[unfrozen]
                row_lens = row_lens[unfrozen]
                cols = cols[keep_rows]
                sub_uniq, inv = np.unique(cols, return_inverse=True)
                pos = np.searchsorted(uniq, sub_uniq)
                residual = residual[pos]
                sat_eps = sat_eps[pos]
                link_comp = link_comp[pos]
                uniq = sub_uniq
                ptr = np.zeros(cur_slots.size + 1, dtype=np.int64)
                np.cumsum(row_lens, out=ptr[1:])
                rate = rate[unfrozen]
                fcap = fcap[unfrozen]
                fcap_eps = fcap_eps[unfrozen]
                count = np.bincount(inv, minlength=uniq.size).astype(np.float64)
                unfrozen = np.ones(cur_slots.size, dtype=bool)

        self._rate[cur_slots] = rate

    def _fill_small(self, slots: np.ndarray) -> None:
        """Scalar progressive filling for a small component.

        Identical algorithm (and trajectory) to the reference solver, but
        reading capacities/tolerances from the dense tables and writing
        rates straight into the slot arrays — cheaper than assembling the
        CSR machinery for a handful of flows.
        """
        slot_links = self._slot_links
        links_of = {s: slot_links[s].tolist() for s in slots.tolist()}
        residual: dict = {}
        sat_eps: dict = {}
        count: dict = {}
        for s, links in links_of.items():
            for lid in links:
                if lid not in residual:
                    residual[lid] = float(self._cap[lid])
                    sat_eps[lid] = float(self._sat_eps[lid])
                    count[lid] = 0
                count[lid] += 1
        fcap = {s: float(self._fcap[s]) for s in links_of}
        fcap_eps = {s: float(self._fcap_eps[s]) for s in links_of}
        rate = {s: 0.0 for s in links_of}
        unfrozen = list(links_of)
        while unfrozen:
            self.stats["rounds"] += 1
            step = min(fcap[s] - rate[s] for s in unfrozen)
            for lid, n in count.items():
                if n > 0:
                    share = residual[lid] / n
                    if share < step:
                        step = share
            step = max(step, 0.0)
            saturated = set()
            for lid, n in count.items():
                if n > 0:
                    residual[lid] -= step * n
                    if residual[lid] <= sat_eps[lid]:
                        saturated.add(lid)
            still = []
            for s in unfrozen:
                rate[s] += step
                if rate[s] >= fcap[s] - fcap_eps[s]:
                    frozen = True
                else:
                    frozen = any(lid in saturated for lid in links_of[s])
                if frozen:
                    for lid in links_of[s]:
                        count[lid] -= 1
                else:
                    still.append(s)
            if len(still) == len(unfrozen):  # pragma: no cover - safety valve
                break
            unfrozen = still
        for s, value in rate.items():
            self._rate[s] = value

    @staticmethod
    def _label_components(
        inv: np.ndarray, ptr: np.ndarray, row_lens: np.ndarray
    ) -> "tuple":
        """Connected components of the flow/link sharing graph (vectorized).

        Alternating min-label propagation over the bipartite incidence:
        every flow takes the smallest label among its links, every link the
        smallest among its flows, until a fixed point — a handful of
        O(nnz) array passes instead of a Python graph walk.
        """
        n_links = int(inv.max()) + 1
        link_label = np.arange(n_links, dtype=np.int64)
        while True:
            flow_label = np.minimum.reduceat(link_label[inv], ptr[:-1])
            prev = link_label
            link_label = link_label.copy()
            np.minimum.at(link_label, inv, np.repeat(flow_label, row_lens))
            if np.array_equal(link_label, prev):
                break
        comp_ids, link_comp = np.unique(link_label, return_inverse=True)
        flow_comp = np.searchsorted(comp_ids, flow_label)
        return flow_comp, link_comp, comp_ids.size

    # -- progress ----------------------------------------------------------

    def advance(self, dt: float) -> None:
        if dt <= 0:
            return
        # Dead slots keep rate == 0, so the unmasked update is safe.
        self._remaining -= self._rate * dt

    def completion_horizon(self) -> float:
        moving = self._rate > EPS
        if not moving.any():
            return float("inf")
        return float(np.min(self._remaining[moving] / self._rate[moving]))

    def drained(self, threshold: float) -> List[FlowState]:
        mask = self._alive & (self._remaining <= threshold)
        flows: List[FlowState] = []
        for slot in np.flatnonzero(mask).tolist():
            flow = self._flow_at[slot]
            flow.remaining = float(self._remaining[slot])
            flow.rate = float(self._rate[slot])
            flows.append(flow)
        return flows

    # -- per-flow access ---------------------------------------------------

    def rate_of(self, flow: FlowState) -> float:
        return float(self._rate[self._slot_of[flow.flow_id]])

    def remaining_of(self, flow: FlowState) -> float:
        return float(self._remaining[self._slot_of[flow.flow_id]])


__all__ = ["VectorizedFairShareEngine"]
