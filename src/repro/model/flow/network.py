"""Flow-level Dragonfly backend: messages as fluid flows, not flits.

:class:`FlowNetwork` implements the :class:`~repro.model.base.NetworkModel`
protocol on top of an iterative max-min fair-share bandwidth allocation
(:mod:`repro.model.flow.solver`) over the Dragonfly link graph, plus the
paper's (L, s) latency/stall model (Section 2.4), so that Algorithm 1
(:mod:`repro.core.selector`) runs unchanged on the counters it produces.

How a message is resolved
-------------------------

1. **Path choice** happens once per message (not per packet): minimal and
   non-minimal candidates are sampled with the same
   :class:`~repro.topology.paths.PathSampler` the flit backend uses, scored
   by the current per-link overload estimate, and gated by the routing
   mode's bias exactly like UGAL — Adaptive spreads across any candidate
   whose score beats the best minimal one, High Bias keeps traffic minimal
   until the minimal paths are heavily overloaded.
2. The message becomes one **fluid sub-flow per selected path**, with its
   request flits split proportionally to each path's nominal bottleneck
   bandwidth.  Sub-flows occupy their injection link, every fabric hop and
   the ejection link, so NIC sharing, fabric contention and incast all fall
   out of the fair-share allocation.
3. Whenever the flow set changes, rates are recomputed and a single
   completion event is scheduled — event count scales with messages, not
   with ``flits x hops``, which is where the backend's speed comes from.
4. On completion the NIC counters are fed the paper's model quantities:
   the stall counter gets the serialization time in excess of the
   back-pressure-free time, and the cumulative-latency counter gets the
   per-packet round trip of the chosen paths plus the congestion excess —
   yielding the same ``s``/``L`` surface the flit backend measures.

Deliberate approximations (documented, tolerated by the parity suite):
responses consume no bandwidth, per-packet phantom congestion does not
exist (decisions use current, not stale, load), and GET payloads are
modelled as forward volume.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.model.base import NetworkModel, register_backend
from repro.model.flow.engine import default_engine_kind, make_engine
from repro.model.flow.solver import FairShareSolver, FlowState
from repro.network.counters import NicCounters
from repro.network.packet import Message, RdmaOp
from repro.routing.bias import bias_for_mode
from repro.routing.modes import RoutingMode
from repro.sim.engine import Event, Simulator, make_simulator
from repro.sim.rng import RandomStreams
from repro.telemetry.core import TELEMETRY
from repro.telemetry.probes import PROBES, ProbeRecorder, ProbeSampler
from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.geometry import router_of_node
from repro.topology.paths import Path, PathSampler

#: Remaining-volume threshold below which a flow counts as drained (flits).
_DRAINED = 1e-6

#: Cap on the per-link overload estimate, in router buffers.
_MAX_OVERLOAD_BUFFERS = 4.0

#: Maximum number of paths one message is spread over.  The flit backend
#: samples candidates per *packet*, so a large message effectively sprays
#: over every minimal path; the fluid analogue spreads each message over up
#: to this many paths at once.
_MAX_SPREAD = 8


class FlowNic:
    """Counter block and bookkeeping for one node of the flow backend."""

    __slots__ = (
        "node_id",
        "router_id",
        "counters",
        "messages_sent",
        "messages_received",
        "inflight",
        "on_message_delivered",
    )

    def __init__(self, node_id: int, router_id: int):
        self.node_id = node_id
        self.router_id = router_id
        self.counters = NicCounters()
        self.messages_sent = 0
        self.messages_received = 0
        #: Number of this node's messages still being resolved.
        self.inflight = 0
        #: Hook for the MPI layer: called with every delivered Message.
        self.on_message_delivered: Optional[Callable[[Message], None]] = None

    @property
    def idle(self) -> bool:
        """True when the NIC has no in-flight messages."""
        return self.inflight == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowNic node={self.node_id} inflight={self.inflight}>"


class FlowRouterStats:
    """Per-router statistics view matching the flit backend's counters."""

    __slots__ = ("router_id", "flits_traversed", "packets_traversed", "_stalled")

    def __init__(self, router_id: int):
        self.router_id = router_id
        self.flits_traversed = 0
        self.packets_traversed = 0
        self._stalled = 0.0

    @property
    def stalled_cycles(self) -> int:
        """Estimated queue-wait cycles attributed to this router."""
        return int(self._stalled)

    def reset(self) -> None:
        self.flits_traversed = 0
        self.packets_traversed = 0
        self._stalled = 0.0


class _MessageFlows:
    """Bookkeeping shared by the sub-flows of one in-flight message."""

    __slots__ = (
        "message",
        "src_nic",
        "dst_nic",
        "t0",
        "volume",
        "pkt_flits",
        "free_rate",
        "base_rtt",
        "pending_serial",
        "pending_arrivals",
        "pending_acks",
        "last_serial_time",
        "residual_fwd",
        "residual_back",
        "path_routers",
        "path_flits",
        "path_buffer",
    )

    def __init__(self, message: Message, src_nic: FlowNic, dst_nic: FlowNic, t0: int):
        self.message = message
        self.src_nic = src_nic
        self.dst_nic = dst_nic
        self.t0 = t0
        self.volume = 0.0
        self.pkt_flits = 1
        self.free_rate = 1.0
        self.base_rtt = 0.0
        self.pending_serial = 0
        self.pending_arrivals = 0
        self.pending_acks = 0
        self.last_serial_time = t0
        #: Per-sub-flow residual latencies, keyed by flow id.
        self.residual_fwd: Dict[int, int] = {}
        self.residual_back: Dict[int, int] = {}
        #: Routers each sub-flow traverses and the flits it carries.
        self.path_routers: Dict[int, Tuple[int, ...]] = {}
        self.path_flits: Dict[int, float] = {}
        #: Weighted in-path buffering estimate (flits) for the latency model.
        self.path_buffer = 0.0


class FlowLinkSampler(ProbeSampler):
    """Fixed-interval congestion probe for the flow backend.

    Emits the *same series schema* as the flit backend's
    :class:`repro.network.network.FlitLinkSampler` — ``occupancy`` and
    ``stalled_links`` per link class (local/global/injection) per group,
    plus the NIC counter surface (``nic_stall_ratio``/``nic_latency``)
    per group — so flow and flit congestion traces are directly
    comparable.  "Occupancy" here is the backend's own congestion signal:
    the per-link overload estimate (:meth:`FlowNetwork._overload_flits`,
    in flits), averaged over every link of the class, and
    ``stalled_links`` counts links whose demand exceeds capacity.
    """

    __slots__ = ("_net", "_key_bucket", "_totals", "_nic_buckets")

    def __init__(self, recorder: ProbeRecorder, network: "FlowNetwork"):
        super().__init__(recorder)
        recorder.backend = "flow"
        self._net = network
        #: demand key -> (cls, group), or None for unclassified (ejection).
        self._key_bucket: Dict[object, Optional[Tuple[str, int]]] = {}
        # Class sizes, so means are over *all* links of a class (matching
        # the flit sampler) rather than only the currently loaded ones.
        topology = network.topology
        group_of = topology.group_of_router
        totals: Dict[Tuple[str, int], int] = {}
        for link_id in topology.all_links():
            cls = "global" if link_id.kind == LinkKind.BLUE else "local"
            key = (cls, group_of[link_id.src])
            totals[key] = totals.get(key, 0) + 1
        for nic in network.nics:
            key = ("injection", group_of[nic.router_id])
            totals[key] = totals.get(key, 0) + 1
        self._totals = sorted(totals.items())
        nic_buckets: Dict[int, list] = {}
        for nic in network.nics:
            nic_buckets.setdefault(group_of[nic.router_id], []).append(nic)
        self._nic_buckets = sorted(nic_buckets.items())

    def _bucket_of(self, key) -> Optional[Tuple[str, int]]:
        bucket = self._key_bucket.get(key, False)
        if bucket is not False:
            return bucket
        net = self._net
        group_of = net.topology.group_of_router
        if key[0] == "host":
            if key[1] == "inj":
                nic = net.nics[key[2]]
                bucket = ("injection", group_of[nic.router_id])
            else:  # ejection links have no flit-side series; skip them.
                bucket = None
        else:
            _, src, dst = key
            kind = net.topology.link_kind(src, dst)
            cls = "global" if kind == LinkKind.BLUE else "local"
            bucket = (cls, group_of[src])
        self._key_bucket[key] = bucket
        return bucket

    def collect(self, now: int) -> None:
        net = self._net
        recorder = self.recorder
        overload_of = net._overload_flits
        sums: Dict[Tuple[str, int], List[float]] = {}
        for key in net._link_demand:
            bucket = self._bucket_of(key)
            if bucket is None:
                continue
            overload = overload_of(key)
            acc = sums.get(bucket)
            if acc is None:
                sums[bucket] = [overload, 1.0 if overload > 0.0 else 0.0]
            else:
                acc[0] += overload
                if overload > 0.0:
                    acc[1] += 1.0
        for (cls, group), total in self._totals:
            acc = sums.get((cls, group))
            overload_sum, stalled = (0.0, 0.0) if acc is None else acc
            recorder.series_for("occupancy", cls, group).add(
                now, overload_sum / total
            )
            recorder.series_for("stalled_links", cls, group).add(now, stalled)
        for group, nics in self._nic_buckets:
            flits = stalled_cycles = responses = 0
            cum_latency = 0.0
            for nic in nics:
                counters = nic.counters
                flits += counters.request_flits
                stalled_cycles += counters.request_flits_stalled_cycles
                cum_latency += counters.request_packets_cum_latency
                responses += counters.responses_received
            stall_ratio = stalled_cycles / flits if flits else 0.0
            latency = cum_latency / responses if responses else 0.0
            recorder.series_for("nic_stall_ratio", "nic", group).add(
                now, stall_ratio
            )
            recorder.series_for("nic_latency", "nic", group).add(now, latency)


class FlowNetwork(NetworkModel):
    """A Dragonfly system resolved at flow granularity."""

    backend_name = "flow"

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        sim: Optional[Simulator] = None,
        streams: Optional[RandomStreams] = None,
        solver: Optional[str] = None,
    ):
        self.config = config or SimulationConfig()
        self.sim = sim or make_simulator()
        self.streams = streams or RandomStreams(self.config.seed)
        self.topology = DragonflyTopology(self.config.topology)
        self.sampler = PathSampler(self.topology, self.streams.stream("routing"))

        topo_cfg = self.config.topology
        self.nics: List[FlowNic] = [
            FlowNic(node, router_of_node(node, topo_cfg))
            for node in range(self.topology.num_nodes)
        ]
        self._router_stats: List[FlowRouterStats] = [
            FlowRouterStats(rid) for rid in range(self.topology.num_routers)
        ]
        self.delivered_messages = 0

        # -- fluid engine state ------------------------------------------------
        #: Solver engine resolving the global flow set: ``vectorized``
        #: (NumPy, incremental — the default when NumPy is available) or
        #: ``reference`` (pure Python); see :mod:`repro.model.flow.engine`.
        self._solver_kind = solver if solver is not None else default_engine_kind()
        self._engine = make_engine(self._solver_kind, self._capacity_of)
        #: Small reference solver for the per-message solo solve in
        #: :meth:`send` — a handful of sub-flows, where plain dicts beat
        #: NumPy's setup cost.
        self._solo_solver = FairShareSolver(self._capacity_of)
        self._flow_seq = 0
        #: Unconstrained demand (flits/cycle) per link, for overload scoring.
        self._link_demand: Dict[object, float] = {}
        self._progress_time = 0
        self._dirty = False
        self._completion_event: Optional[Event] = None
        self._capacity_cache: Dict[object, float] = {}
        #: Minimal-path sets memoized per (src_router, dst_router).
        self._minimal_paths: Dict[Tuple[int, int], List[Path]] = {}

        #: Injection nominal rate: one flit per ``cycles_per_flit`` host cycles.
        self._inj_rate = 1.0 / topo_cfg.cycles_per_flit

        # Probe hook (see repro.telemetry.probes): polled by the event
        # engine at time advances, schedules nothing, so enabling probes
        # cannot change the resolved flows or any payload.
        if PROBES.enabled and PROBES.recorder is not None:
            self.sim.probe_hook = FlowLinkSampler(PROBES.recorder, self)

    # -- link capacities ---------------------------------------------------------

    def _capacity_of(self, key) -> float:
        """Capacity of a directed link in flits/cycle (memoized)."""
        cached = self._capacity_cache.get(key)
        if cached is not None:
            return cached
        topo_cfg = self.config.topology
        if key[0] == "host":
            value = self._inj_rate
        else:
            _, src, dst = key
            kind = self.topology.link_kind(src, dst)
            value = self.topology.link_width(kind) / topo_cfg.fabric_cycles_per_flit
        self._capacity_cache[key] = value
        return value

    @staticmethod
    def _injection_key(node: int):
        return ("host", "inj", node)

    @staticmethod
    def _ejection_key(node: int):
        return ("host", "ej", node)

    def _links_of_path(self, src_node: int, dst_node: int, path: Path) -> Tuple:
        keys: List[object] = [self._injection_key(src_node)]
        for a, b in zip(path, path[1:]):
            keys.append(("fab", a, b))
        keys.append(self._ejection_key(dst_node))
        return tuple(keys)

    # -- overload estimate (the flow backend's congestion signal) ----------------

    def _overload_flits(self, key) -> float:
        """Estimated queue depth of a link, in flits.

        Zero while the aggregate demand fits the capacity, then growing with
        the overload ratio and capped at a few router buffers — the same
        scale UGAL's local-queue probe reads on the flit backend, so the
        configured biases (12 / 48 flits) gate non-minimal candidates
        comparably on both backends.
        """
        demand = self._link_demand.get(key, 0.0)
        if demand <= 0.0:
            return 0.0
        capacity = self._capacity_of(key)
        overload = demand / capacity - 1.0
        if overload <= 0.0:
            return 0.0
        buffer_flits = float(self.config.topology.router_buffer_flits)
        return buffer_flits * min(overload, _MAX_OVERLOAD_BUFFERS)

    def _path_score(self, src_node: int, dst_node: int, path: Path) -> float:
        hops = len(path) - 1
        if hops <= 0:
            return 0.0
        congestion = self._overload_flits(self._injection_key(src_node))
        for a, b in zip(path, path[1:]):
            congestion += self._overload_flits(("fab", a, b))
        congestion += self._overload_flits(self._ejection_key(dst_node))
        return congestion + float(hops)

    # -- path choice ---------------------------------------------------------------

    def _minimal_spread(self, src_router: int, dst_router: int) -> List[Path]:
        """The minimal paths a message sprays over (memoized, capped)."""
        key = (src_router, dst_router)
        paths = self._minimal_paths.get(key)
        if paths is None:
            paths = self.sampler.all_minimal(src_router, dst_router)
            self._minimal_paths[key] = paths
        if len(paths) <= _MAX_SPREAD:
            return list(paths)
        return self.streams.stream("routing").sample(paths, _MAX_SPREAD)

    def _choose_paths(
        self, src_node: int, dst_node: int, mode: RoutingMode
    ) -> List[Tuple[Path, bool]]:
        """Select the (path, minimal?) set one message is spread over.

        The flit backend decides per packet, so across a large message the
        hardware sprays packets over every minimal path (and, for the
        adaptive modes under congestion, over Valiant detours).  The fluid
        analogue makes one decision per message: hashed/adaptive modes
        spread over the (capped) minimal-path set, and a detour joins the
        spread only when its congestion score — biased exactly like UGAL's
        non-minimal candidates — beats the best minimal path.
        """
        src_router = router_of_node(src_node, self.config.topology)
        dst_router = router_of_node(dst_node, self.config.topology)
        if src_router == dst_router:
            return [((src_router,), True)]
        sampler = self.sampler
        if mode is RoutingMode.IN_ORDER:
            return [(sampler.all_minimal(src_router, dst_router)[0], True)]
        if mode is RoutingMode.MIN_HASH:
            return [(p, True) for p in self._minimal_spread(src_router, dst_router)]
        if mode is RoutingMode.NMIN_HASH:
            selected: List[Tuple[Path, bool]] = []
            seen = set()
            for _ in range(2 * max(1, self.config.routing.nonminimal_candidates)):
                path = sampler.nonminimal(src_router, dst_router)
                if path not in seen:
                    seen.add(path)
                    selected.append((path, False))
            return selected
        if not mode.is_adaptive:
            raise ValueError(f"unsupported routing mode {mode}")

        cfg = self.config.routing
        if mode is RoutingMode.ADAPTIVE_0:
            bias = 0.0
        else:
            minimal_hops = sampler.minimal_hops(src_router, dst_router)
            bias = bias_for_mode(mode, cfg, minimal_hops)

        minimal_paths = self._minimal_spread(src_router, dst_router)
        seen = set(minimal_paths)
        scores = [
            self._path_score(src_node, dst_node, path) for path in minimal_paths
        ]
        best_minimal = min(scores)

        selected = [(path, True) for path in minimal_paths]
        for _ in range(cfg.nonminimal_candidates):
            path = sampler.nonminimal(src_router, dst_router)
            if path in seen:
                continue
            seen.add(path)
            score = (
                self._path_score(src_node, dst_node, path) * cfg.nonminimal_penalty
                + bias
            )
            # The whole-message analogue of UGAL's per-packet comparison: a
            # detour joins the spread only when it beats the best minimal
            # candidate despite its bias, i.e. when the minimal paths are
            # congested enough to pay for the extra hops.
            if score < best_minimal:
                selected.append((path, False))
        return selected

    # -- latency model ---------------------------------------------------------------

    def _path_buffer_flits(self, path: Path) -> float:
        """Credit-covered buffering along a path, in flits.

        Mirrors :meth:`repro.network.network.Network._buffer_for`: every hop
        provisions at least the credit round trip.  This bounds how many
        flits can queue *inside* the network ahead of a packet — the source
        of the latency growth the flit backend measures under congestion.
        """
        topo_cfg = self.config.topology
        total = float(
            max(topo_cfg.nic_buffer_flits, 2 * topo_cfg.host_link_latency + 16)
        )
        for a, b in zip(path, path[1:]):
            kind = self.topology.link_kind(a, b)
            latency = self.topology.link_latency(kind)
            width = self.topology.link_width(kind)
            total += max(topo_cfg.router_buffer_flits, 2 * latency + 16) * width
        return total

    def _residual_latency(self, path: Path, packet_flits: int) -> int:
        """Cycles from a packet's last flit leaving the NIC to full ejection."""
        topo_cfg = self.config.topology
        cycles = topo_cfg.host_link_latency  # injection wire
        for a, b in zip(path, path[1:]):
            kind = self.topology.link_kind(a, b)
            width = self.topology.link_width(kind)
            cycles += self.topology.link_latency(kind)
            cycles += -(-packet_flits * topo_cfg.fabric_cycles_per_flit // width)
        cycles += topo_cfg.host_link_latency  # ejection wire
        cycles += packet_flits * topo_cfg.cycles_per_flit
        return cycles

    # -- NetworkModel API -------------------------------------------------------------

    def send(
        self,
        src_node: int,
        dst_node: int,
        size_bytes: int,
        routing_mode: RoutingMode = RoutingMode.ADAPTIVE_0,
        op: RdmaOp = RdmaOp.PUT,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_acked: Optional[Callable[[Message], None]] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Submit a message; it resolves as one or more fluid sub-flows."""
        if src_node == dst_node:
            raise ValueError(
                "source and destination nodes must differ (use the host model for self-sends)"
            )
        self._check_node(src_node)
        self._check_node(dst_node)

        def _count_delivery(message: Message) -> None:
            self.delivered_messages += 1
            if on_delivered is not None:
                on_delivered(message)

        message = Message(
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=size_bytes,
            routing_mode=routing_mode,
            nic_config=self.config.nic,
            op=op,
            on_delivered=_count_delivery,
            on_acked=on_acked,
            tag=tag,
        )
        now = self.sim.now
        message.submit_time = now
        message.first_injection_time = now

        src_nic = self.nics[src_node]
        dst_nic = self.nics[dst_node]
        src_nic.messages_sent += 1
        src_nic.inflight += 1
        message.packets_injected = message.num_packets
        # The request counters advance at submission, like the flit NIC's
        # per-packet updates; stalls and latencies follow at completion.
        src_nic.counters.request_packets += message.num_packets
        src_nic.counters.request_flits += message.request_flits

        # GET payloads travel in responses; the fluid approximation routes
        # the dominant direction's volume forward.
        volume = float(max(message.request_flits, message.response_flits))
        pkt_flits = max(1, -(-message.request_flits // message.num_packets))
        if op == RdmaOp.GET:
            pkt_flits = max(
                pkt_flits, -(-message.response_flits // message.num_packets)
            )

        routes = self._choose_paths(src_node, dst_node, routing_mode)

        state = _MessageFlows(message, src_nic, dst_nic, now)
        state.volume = volume
        state.pkt_flits = pkt_flits
        state.pending_serial = len(routes)
        state.pending_arrivals = len(routes)
        state.pending_acks = len(routes)

        # Build the sub-flows, then run a *solo* fair-share solve over just
        # this message's flows: the resulting rates give (a) the volume
        # share each path carries — correctly discounting paths that share
        # links — and (b) the back-pressure-free aggregate rate used as the
        # baseline of the stall model.
        nic_cfg = self.config.nic
        entries: List[Tuple[FlowState, Path, bool, int, int]] = []
        for path, minimal in routes:
            fwd = self._residual_latency(path, pkt_flits)
            back = self._residual_latency(
                tuple(reversed(path)), nic_cfg.response_flits
            )
            # Outstanding-packet window as a bandwidth-delay product cap.
            window_rate = (
                nic_cfg.max_outstanding_packets * pkt_flits / max(1, fwd + back)
            )
            flow = FlowState(
                flow_id=self._flow_seq,
                links=self._links_of_path(src_node, dst_node, path),
                volume_flits=1.0,  # placeholder until shares are known
                cap=min(self._inj_rate, window_rate),
                payload=state,
            )
            self._flow_seq += 1
            entries.append((flow, path, minimal, fwd, back))
        self._solo_solver.solve([entry[0] for entry in entries])
        total_rate = sum(entry[0].rate for entry in entries)
        state.free_rate = min(self._inj_rate, total_rate)

        minimal_weight = 0.0
        for flow, path, minimal, fwd, back in entries:
            share = flow.rate / total_rate
            if minimal:
                minimal_weight += share
            state.base_rtt += share * (fwd + back)
            state.path_buffer += share * self._path_buffer_flits(path)
            flow.remaining = max(1e-3, volume * share)
            state.residual_fwd[flow.flow_id] = fwd
            state.residual_back[flow.flow_id] = back
            state.path_routers[flow.flow_id] = path
            state.path_flits[flow.flow_id] = volume * share
        state.base_rtt += pkt_flits * self.config.topology.cycles_per_flit

        message.minimal_packets = round(message.num_packets * minimal_weight)
        message.nonminimal_packets = message.num_packets - message.minimal_packets

        for flow, _path, _minimal, _fwd, _back in entries:
            # Clear the solo-solve rate: the deferred global re-solve sets
            # the real one, and _advance_progress must not drain a brand-new
            # flow over the idle interval that preceded its existence.
            flow.rate = 0.0
            self._add_flow(flow)
        return message

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self.nics):
            raise ValueError(
                f"node {node_id} out of range (system has {len(self.nics)} nodes)"
            )

    # -- access helpers -----------------------------------------------------------

    def nic(self, node_id: int) -> FlowNic:
        """The NIC counter block attached to a node."""
        self._check_node(node_id)
        return self.nics[node_id]

    def router(self, router_id: int) -> FlowRouterStats:
        """Per-router statistics by flat id."""
        return self._router_stats[router_id]

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes in the system."""
        return len(self.nics)

    @property
    def num_routers(self) -> int:
        """Number of routers in the system."""
        return len(self._router_stats)

    @property
    def active_flows(self) -> int:
        """Number of fluid flows currently being resolved."""
        return len(self._engine)

    @property
    def solver_kind(self) -> str:
        """Which fair-share engine resolves the flow set (``vectorized``/``reference``)."""
        return self._solver_kind

    @property
    def solver_stats(self) -> Dict[str, int]:
        """The engine's solve counters (full/incremental/skipped/rounds...)."""
        return self._engine.stats

    # -- system-wide statistics -----------------------------------------------------

    def total_flits_traversed(self, router_ids: Optional[Iterable[int]] = None) -> int:
        """Flits observed by the (selected) routers — the Table 1 'incoming flits'."""
        stats = (
            self._router_stats
            if router_ids is None
            else [self._router_stats[r] for r in router_ids]
        )
        return sum(s.flits_traversed for s in stats)

    def reset_counters(self) -> None:
        """Zero every NIC and router counter (a fresh measurement interval)."""
        for nic in self.nics:
            nic.counters.reset()
        for stats in self._router_stats:
            stats.reset()

    # -- fluid engine -----------------------------------------------------------------

    def _add_flow(self, flow: FlowState) -> None:
        self._engine.add_flow(flow)
        desired = min(flow.cap, self._inj_rate)
        for link in flow.links:
            self._link_demand[link] = self._link_demand.get(link, 0.0) + desired
        self._mark_dirty()

    def _drop_flow(self, flow: FlowState) -> None:
        self._engine.remove_flow(flow)
        desired = min(flow.cap, self._inj_rate)
        for link in flow.links:
            remaining = self._link_demand.get(link, 0.0) - desired
            if remaining <= 1e-12:
                self._link_demand.pop(link, None)
            else:
                self._link_demand[link] = remaining
        self._mark_dirty()

    def _mark_dirty(self) -> None:
        """Coalesce same-cycle flow-set changes into one rate recomputation.

        Every membership change — submissions *and* completions — funnels
        through here, so a cycle with any mix of arrivals and drains runs
        exactly one solve, after all of them have been applied.
        """
        if self._dirty:
            return
        self._dirty = True
        self.sim.schedule(0, self._resolve)

    def _resolve(self) -> None:
        if not TELEMETRY.enabled:
            self._dirty = False
            self._advance_progress()
            self._engine.solve()
            self._schedule_completion()
            return
        stats = self._engine.stats
        full0 = stats["full"]
        incremental0 = stats["incremental"]
        skipped0 = stats["skipped"]
        rounds0 = stats["rounds"]
        touched0 = stats["flows_touched"]
        aborts0 = stats.get("aborts", 0)
        with TELEMETRY.tracer.span("flow.solve", cat="solver",
                                   flows=len(self._engine)) as sp:
            self._dirty = False
            self._advance_progress()
            self._engine.solve()
            self._schedule_completion()
            sp.add(full=stats["full"] - full0,
                   incremental=stats["incremental"] - incremental0,
                   skipped=stats["skipped"] - skipped0,
                   rounds=stats["rounds"] - rounds0,
                   flows_touched=stats["flows_touched"] - touched0,
                   aborts=stats.get("aborts", 0) - aborts0)

    def _advance_progress(self) -> None:
        now = self.sim.now
        dt = now - self._progress_time
        if dt > 0:
            self._engine.advance(dt)
        self._progress_time = now

    def _schedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        horizon = self._engine.completion_horizon()
        if horizon == float("inf"):
            return
        delay = max(1, int(math.ceil(horizon)))
        self._completion_event = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_progress()
        finished = self._engine.drained(_DRAINED)
        for flow in finished:
            self._drop_flow(flow)
        for flow in finished:
            self._sub_flow_serialized(flow)
        # No direct solve here: _drop_flow marked the engine dirty, and the
        # coalesced _resolve (this cycle) re-solves once — together with any
        # same-cycle submissions the serialization callbacks trigger.
        self._mark_dirty()

    # -- message completion ---------------------------------------------------------

    def _sub_flow_serialized(self, flow: FlowState) -> None:
        state: _MessageFlows = flow.payload
        now = self.sim.now
        state.pending_serial -= 1
        state.last_serial_time = max(state.last_serial_time, now)
        fwd = state.residual_fwd[flow.flow_id]
        back = state.residual_back[flow.flow_id]
        self._account_traversal(state, flow.flow_id)
        self.sim.schedule(fwd, self._sub_flow_arrived, state)
        self.sim.schedule(fwd + back, self._sub_flow_acked, state)

    def _account_traversal(self, state: _MessageFlows, flow_id: int) -> None:
        """Attribute the sub-flow's flits to every router on its path."""
        flits = int(round(state.path_flits[flow_id]))
        packets = max(1, int(round(state.message.num_packets
                                   * state.path_flits[flow_id] / max(1.0, state.volume))))
        for router_id in state.path_routers[flow_id]:
            stats = self._router_stats[router_id]
            stats.flits_traversed += flits
            stats.packets_traversed += packets

    def _sub_flow_arrived(self, state: _MessageFlows) -> None:
        state.pending_arrivals -= 1
        if state.pending_arrivals > 0:
            return
        message = state.message
        message.packets_delivered = message.num_packets
        message.delivered_time = self.sim.now
        state.dst_nic.messages_received += 1
        if state.dst_nic.on_message_delivered is not None:
            state.dst_nic.on_message_delivered(message)
        if message.on_delivered is not None:
            message.on_delivered(message)

    def _sub_flow_acked(self, state: _MessageFlows) -> None:
        state.pending_acks -= 1
        if state.pending_acks > 0:
            return
        message = state.message
        now = self.sim.now
        serialization = max(0, state.last_serial_time - state.t0)
        # Back-pressure-free serialization of the same volume on the same
        # path set; anything beyond it is what the flit backend's injection
        # pipe would have reported as stalled cycles.
        free_cycles = state.volume / state.free_rate
        stalled = max(0.0, serialization - free_cycles)
        # ... and the stall counter's baseline is the host-link rate, so the
        # structural slowdown of a narrow fabric path shows up as well:
        stalled += max(0.0, free_cycles - state.volume / self._inj_rate)
        counters = state.src_nic.counters
        counters.on_stall(int(stalled))
        # Per-packet latency: weighted round trip of the chosen paths plus
        # the time spent queued inside the network.  A packet waits behind
        # the flits buffered ahead of it, bounded both by how much the
        # message keeps in flight and by the path's credit-covered
        # buffering (back-pressure pushes the rest into the NIC, where it
        # is accounted as stall, not latency — exactly like the hardware).
        per_flit_excess = 0.0
        if state.volume > 0 and serialization > 0:
            per_flit_excess = max(
                0.0, serialization / state.volume - 1.0 / state.free_rate
            )
        inflight_flits = (
            min(message.num_packets, self.config.nic.max_outstanding_packets)
            * state.pkt_flits
        )
        queued_ahead = 0.5 * min(inflight_flits, state.path_buffer)
        latency = state.base_rtt + queued_ahead * per_flit_excess
        counters.responses_received += message.num_packets
        counters.request_packets_cum_latency += message.num_packets * latency
        # Spread the stall estimate over the traversed routers for the
        # Table-1-style router statistics.
        routers = {r for path in state.path_routers.values() for r in path}
        if routers and stalled > 0:
            share = stalled / len(routers)
            for router_id in routers:
                self._router_stats[router_id]._stalled += share
        message.packets_acked = message.num_packets
        message.acked_time = now
        state.src_nic.inflight -= 1
        if message.on_acked is not None:
            message.on_acked(message)


def _build_flow(config=None, sim=None, streams=None) -> FlowNetwork:
    return FlowNetwork(config=config, sim=sim, streams=streams)


register_backend("flow", _build_flow)
