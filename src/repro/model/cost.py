"""Cost/fidelity layer of the backend registry: what would this run cost?

Every network-model backend can register a :class:`CostModel` next to its
constructor (see :func:`repro.model.base.register_cost_model`).  A cost
model turns a substrate-independent :class:`WorkloadProfile` — how big the
machine is and how much traffic the run will push — into a
:class:`CostEstimate` in *work units*, an abstract inner-loop-operation
count comparable across backends:

* the ``flit`` backend estimates **events**: every flit of every packet is
  an event at every hop, so work ~ ``messages x flits/message x hops``;
* the ``flow`` backend estimates **solver work**: each membership change
  triggers a fair-share re-solve over the active flows, so work ~
  ``solves x flows x links-per-flow x fill-rounds``, scaled by a per-op
  weight reflecting the vectorized engine.

The campaign planner (:mod:`repro.campaign.router`) builds profiles from
scenario cost hints and uses the estimates to route each grid cell to the
cheapest backend that is still faithful, under an optional total budget.
Estimates are planning proxies, not wall-clock predictions — their job is
to order cells and backends correctly, and the per-op weights below are the
calibration knobs if the ordering ever drifts.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping


@dataclass(frozen=True)
class WorkloadProfile:
    """Substrate-independent description of one run's machine and traffic.

    All quantities are estimates; fractional values are fine.  The profile
    deliberately knows nothing about scenarios or run specs so that cost
    models stay importable from the model layer alone.
    """

    #: Compute nodes in the simulated machine.
    nodes: int
    #: Routers in the simulated machine.
    routers: int
    #: Directed links (fabric + host) — the solver's matrix dimension.
    links: int
    #: Total messages the run submits (application + background traffic).
    messages: float
    #: Request flits per message after NIC packetization (headers included).
    flits_per_message: float
    #: Average hops a packet traverses (fabric hops, excluding NIC links).
    avg_hops: float
    #: Peak number of concurrent fluid flows (messages in flight x spread).
    concurrent_flows: float

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.routers < 1 or self.links < 1:
            raise ValueError("profile needs a non-empty machine")
        if self.messages < 0 or self.flits_per_message < 0:
            raise ValueError("traffic quantities must be non-negative")


@dataclass(frozen=True)
class CostEstimate:
    """Estimated execution cost of one run on one backend.

    ``work`` is in abstract work units (weighted inner-loop operations);
    estimates from different backends are directly comparable.  ``detail``
    carries the unweighted intermediate quantities for reports and tests.
    """

    backend: str
    work: float
    detail: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("estimated work must be non-negative")


class CostModel(abc.ABC):
    """Per-backend cost estimator: profile in, work units out."""

    #: Registry key of the backend this model estimates for.
    backend_name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def estimate_cost(self, profile: WorkloadProfile) -> CostEstimate:
        """Estimate the work of running ``profile`` on this backend."""


class FlitCostModel(CostModel):
    """Event-count proxy for the cycle-accurate flit simulator.

    Every request flit is forwarded at every fabric hop plus the two NIC
    links, and every packet triggers a single-flit response along the way
    back — each forwarding is at least one simulator event.
    """

    backend_name = "flit"

    #: Work units charged per *predicted* event, by simulation engine.  The
    #: prediction below (flits x hops) tracks the pre-coalescing engine;
    #: since the event-coalesced credit flow and calendar scheduler, the
    #: flit backend executes ~1.7x fewer simulator events than the product
    #: suggests and finishes ~1.6x faster end to end, so each predicted
    #: unit is re-weighted accordingly.  The batch engine runs the same
    #: events through the fused network plane ~1.1x faster still (both
    #: ratios from BENCH_flit_engine.json), so a run that selects it is
    #: charged proportionally less — ``backend="auto"`` routing and
    #: ``--budget`` admission then reflect the engine the run will really
    #: use.  ``reference`` shares the calendar weight: its ~5% scheduler
    #: overhead is below the noise floor of these planning proxies.
    engine_unit_cost: ClassVar[Dict[str, float]] = {
        "calendar": 0.6,
        "reference": 0.6,
        "batch": 0.55,
    }

    #: Backward-compatible default weight (the default engine's).
    unit_cost: ClassVar[float] = 0.6

    #: Response-path events relative to request-path events (single-flit
    #: responses retrace the hops of a multi-flit request).
    response_factor: ClassVar[float] = 0.25

    def estimate_cost(self, profile: WorkloadProfile) -> CostEstimate:
        from repro.sim.engine import effective_engine_kind

        unit_cost = self.engine_unit_cost.get(
            effective_engine_kind(), self.unit_cost
        )
        hops = profile.avg_hops + 2.0  # + injection and ejection NIC links
        request_events = profile.messages * profile.flits_per_message * hops
        events = request_events * (1.0 + self.response_factor)
        return CostEstimate(
            backend=self.backend_name,
            work=events * unit_cost,
            detail={
                "events": events,
                "hops": hops,
                "messages": profile.messages,
                "flits_per_message": profile.flits_per_message,
                "unit_cost": unit_cost,
            },
        )


class FlowCostModel(CostModel):
    """Solver-work proxy for the flow-level engine.

    Each membership change (one submission and one completion per message)
    triggers a fair-share re-solve whose inner loop is
    ``O(flows x links x fill-rounds)``: every active flow contributes one
    incidence row over the links it occupies, and progressive filling
    freezes at least one bottleneck link per round.  The per-op weight is
    far below the flit backend's because the vectorized engine processes
    whole incidence rows per NumPy operation.
    """

    backend_name = "flow"

    #: Work units charged per solver inner-loop operation (vectorized).
    unit_cost: ClassVar[float] = 0.05

    def estimate_cost(self, profile: WorkloadProfile) -> CostEstimate:
        flows = max(1.0, profile.concurrent_flows)
        links_per_flow = profile.avg_hops + 2.0
        fill_rounds = max(1.0, math.log2(flows) + 1.0)
        solves = 2.0 * profile.messages  # one submission + one completion each
        ops = solves * flows * links_per_flow * fill_rounds
        return CostEstimate(
            backend=self.backend_name,
            work=ops * self.unit_cost,
            detail={
                "solves": solves,
                "flows": flows,
                "links_per_flow": links_per_flow,
                "fill_rounds": fill_rounds,
                "ops": ops,
            },
        )
