"""Congestion analytics over network-probe sidecars.

The flight recorder (:mod:`repro.telemetry.probes`) leaves one sidecar per
campaign cell under ``probes/<hash>.json``: per-link-class time series and
a seeded sample of routing decisions.  This module turns a store's worth
of sidecars into the three views the paper's congestion analysis needs:

* **group-time heatmap** — mean metric value per Dragonfly group per time
  bin, rendered as ASCII shades or CSV; the visual of where and when the
  fabric saturates;
* **link-rank hotspots** — series ranked by mean/peak value, the "which
  group's global links hurt" table;
* **phantom-congestion summary** — the fraction of sampled UGAL decisions
  that would flip under a live (settled-credit) view of far congestion
  versus the stale view the router actually used, plus per-job alignment
  of occupancy with the cluster replay's interference columns.

Everything here is read-only over store artifacts: probes never have to be
re-run to re-analyze.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.reporting import Table

#: Low-to-high shade ramp for ASCII heatmaps.
SHADES = " .:-=+*#%@"

#: Time-bin count of the group-time heatmap (columns).
DEFAULT_BINS = 24


def load_probe_frames(store) -> List[Dict]:
    """All probe sidecars in a store, each augmented with index metadata."""
    return list(store.iter_probe_snapshots())


def _iter_points(
    frames: Sequence[Mapping],
    metric: str,
    link_class: Optional[str] = None,
):
    """Yield ``(cls, group, t, v)`` for every matching series point."""
    for frame in frames:
        for series in frame.get("series") or []:
            if series.get("metric") != metric:
                continue
            cls = str(series.get("cls", "?"))
            if link_class is not None and cls != link_class:
                continue
            group = int(series.get("group", -1))
            for t, v in zip(series.get("t") or [], series.get("v") or []):
                yield cls, group, float(t), float(v)


def group_time_heatmap(
    frames: Sequence[Mapping],
    metric: str = "occupancy",
    link_class: Optional[str] = None,
    bins: int = DEFAULT_BINS,
) -> Optional[Dict]:
    """Mean ``metric`` per (group, time bin) over every matching series.

    Returns ``None`` when no series matches — callers decide whether that
    is an error (CLI) or just an empty section (reports).  NIC series are
    excluded unless explicitly requested: they share the schema but not
    the "link occupancy" meaning of the fabric classes.
    """
    sums: Dict[int, List[List[float]]] = {}
    t_lo: Optional[float] = None
    t_hi: Optional[float] = None
    points: List = []
    for cls, group, t, v in _iter_points(frames, metric, link_class):
        if link_class is None and cls == "nic":
            continue
        points.append((group, t, v))
        t_lo = t if t_lo is None else min(t_lo, t)
        t_hi = t if t_hi is None else max(t_hi, t)
    if not points or t_lo is None or t_hi is None:
        return None
    span = max(1.0, t_hi - t_lo)
    for group, t, v in points:
        cells = sums.setdefault(group, [[0.0, 0.0] for _ in range(bins)])
        index = min(bins - 1, int((t - t_lo) * bins / span))
        cells[index][0] += v
        cells[index][1] += 1.0
    rows = sorted(sums)
    matrix = [
        [
            round(cell[0] / cell[1], 4) if cell[1] else None
            for cell in sums[group]
        ]
        for group in rows
    ]
    return {
        "metric": metric,
        "cls": link_class or "fabric",
        "groups": rows,
        "bins": bins,
        "t0": t_lo,
        "t1": t_hi,
        "bin_cycles": round(span / bins, 1),
        "matrix": matrix,
    }


def render_heatmap(heatmap: Mapping) -> str:
    """ASCII render: one row per group, shades scaled to the matrix peak."""
    matrix: List[List[Optional[float]]] = list(heatmap["matrix"])
    peak = max(
        (v for row in matrix for v in row if v is not None), default=0.0
    )
    lines = [
        f"congestion heatmap — {heatmap['metric']} ({heatmap['cls']} links), "
        f"group x time",
        f"  cycles {heatmap['t0']:.0f}..{heatmap['t1']:.0f} in "
        f"{heatmap['bins']} bins of ~{heatmap['bin_cycles']} cycles; "
        f"peak {peak:.3f}",
    ]
    top = len(SHADES) - 1
    for group, row in zip(heatmap["groups"], matrix):
        cells = "".join(
            "·" if v is None
            else SHADES[int(round(v / peak * top))] if peak > 0
            else SHADES[0]
            for v in row
        )
        lines.append(f"  g{group:02d} |{cells}|")
    lines.append(f"  scale: ' ' = 0 .. '@' = {peak:.3f} (· = no samples)")
    return "\n".join(lines)


def heatmap_csv(heatmap: Mapping) -> str:
    """The heatmap matrix as CSV: one row per group, one column per bin."""
    header = ["group"] + [
        f"t{heatmap['t0'] + i * heatmap['bin_cycles']:.0f}"
        for i in range(int(heatmap["bins"]))
    ]
    lines = [",".join(header)]
    for group, row in zip(heatmap["groups"], heatmap["matrix"]):
        lines.append(
            ",".join(
                [f"g{group}"]
                + ["" if v is None else f"{v}" for v in row]
            )
        )
    return "\n".join(lines) + "\n"


def link_rank(
    frames: Sequence[Mapping],
    metric: str = "occupancy",
    top: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Series ranked hottest-first by mean value (peak breaks ties)."""
    stats: Dict[tuple, List[float]] = {}
    for cls, group, _t, v in _iter_points(frames, metric):
        entry = stats.setdefault((cls, group), [0.0, 0.0, 0.0])
        entry[0] += v
        entry[1] += 1.0
        entry[2] = max(entry[2], v)
    rows = [
        {
            "cls": cls,
            "group": group,
            "mean": round(total / count, 4),
            "peak": round(peak, 4),
            "points": int(count),
        }
        for (cls, group), (total, count, peak) in stats.items()
        if count
    ]
    rows.sort(key=lambda r: (-r["mean"], -r["peak"], r["cls"], r["group"]))
    return rows[:top] if top is not None else rows


def render_link_rank(rows: Sequence[Mapping], metric: str) -> str:
    """Hotspot table: the hottest link classes per group."""
    table = Table(
        title=f"link hotspots — {metric} (hottest first)",
        columns=["rank", "class", "group", "mean", "peak", "points"],
    )
    for rank, row in enumerate(rows, start=1):
        table.add_row(
            rank, row["cls"], f"g{row['group']}", row["mean"], row["peak"],
            row["points"],
        )
    return table.render()


def phantom_summary(frames: Sequence[Mapping]) -> Dict[str, object]:
    """Pooled routing-audit stats: how often stale counters flip a choice.

    A *flip* is a sampled UGAL decision whose winning path differs between
    the stale counter view the router used (``credit_info_delay`` old) and
    a live settled view at decision time — the paper's phantom-congestion
    effect, observed directly instead of inferred from throughput.
    """
    seen = sampled = flips = 0
    examples: List[Dict] = []
    for frame in frames:
        seen += int(frame.get("decisions_seen", 0))
        sampled += int(frame.get("decisions_sampled", 0))
        flips += int(frame.get("flips", 0))
        for decision in frame.get("decisions") or []:
            if decision.get("flip") and len(examples) < 5:
                examples.append(
                    {
                        "t": decision.get("t"),
                        "src": decision.get("src"),
                        "dst": decision.get("dst"),
                        "stale_minimal": decision.get("minimal"),
                        "candidates": len(decision.get("candidates") or []),
                    }
                )
    return {
        "decisions_seen": seen,
        "decisions_sampled": sampled,
        "flips": flips,
        "flip_fraction": round(flips / sampled, 4) if sampled else 0.0,
        "examples": examples,
    }


def render_phantom(summary: Mapping) -> str:
    """One-paragraph phantom-congestion readout for the CLI."""
    lines = [
        "phantom-congestion audit:",
        f"  {summary['decisions_sampled']} of {summary['decisions_seen']} "
        f"UGAL decisions sampled; {summary['flips']} "
        f"({100.0 * summary['flip_fraction']:.1f}%) would flip under a "
        "live credit view",
    ]
    for ex in summary["examples"]:
        lines.append(
            f"    flip @cycle {ex['t']}: router {ex['src']} -> {ex['dst']} "
            f"(stale chose {'minimal' if ex['stale_minimal'] else 'nonminimal'}, "
            f"{ex['candidates']} candidate(s))"
        )
    return "\n".join(lines)


def job_alignment(
    store,
    frames: Sequence[Mapping],
    metric: str = "occupancy",
    scenario: str = "cluster-trace",
) -> List[Dict[str, object]]:
    """Align per-job slowdowns with fabric occupancy over each job's window.

    For every probed ``cluster-trace`` cell, each job row (``data.jobs``,
    the PR-9 replay columns) gets the mean of the requested fabric metric
    over its ``[start, finish]`` residency — congestion each job actually
    lived through, next to the slowdown it suffered.
    """
    index = store.index()
    rows: List[Dict[str, object]] = []
    for frame in frames:
        if frame.get("scenario") != scenario:
            continue
        entry = index.get(str(frame.get("hash", "")))
        if not entry or not entry.get("result"):
            continue
        try:
            payload = json.loads(
                (store.root / str(entry["result"])).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            continue
        jobs = (payload.get("data") or {}).get("jobs")
        if not isinstance(jobs, list):
            continue
        points = [
            (t, v)
            for cls, _group, t, v in _iter_points([frame], metric)
            if cls != "nic"
        ]
        for job in jobs:
            start, finish = job.get("start"), job.get("finish")
            if start is None or finish is None or finish <= start:
                continue
            window = [v for t, v in points if start <= t <= finish]
            rows.append(
                {
                    "hash": frame.get("hash", ""),
                    "workload": str(job.get("workload", "?")),
                    "job_id": int(job.get("job_id", -1)),
                    "slowdown": job.get("slowdown"),
                    f"mean_{metric}": (
                        round(sum(window) / len(window), 4) if window else None
                    ),
                    "samples": len(window),
                }
            )
    rows.sort(
        key=lambda r: -(r["slowdown"] if isinstance(r["slowdown"], (int, float)) else -1.0)
    )
    return rows


def render_job_alignment(rows: Sequence[Mapping], metric: str) -> str:
    """Per-job interference table: slowdown next to lived congestion."""
    table = Table(
        title=f"per-job interference vs fabric {metric} (worst slowdown first)",
        columns=["workload", "job", "slowdown", f"mean {metric}", "samples"],
    )
    for row in rows:
        slowdown = row.get("slowdown")
        mean = row.get(f"mean_{metric}")
        table.add_row(
            row["workload"],
            row["job_id"],
            f"{slowdown:.3f}" if isinstance(slowdown, (int, float)) else "-",
            f"{mean:.3f}" if isinstance(mean, (int, float)) else "-",
            row["samples"],
        )
    return table.render()
