"""Network-noise estimation following the guidelines of Section 3.

The section derives three rules, each of which corresponds to a helper here:

1. *Fix the allocation* (§3.1) — comparisons are only meaningful inside one
   allocation; the experiment harness enforces this by construction, and
   :func:`relative_slowdown` always normalizes within one allocation's data.
2. *Correlation is not causation* (§3.2) — raw counter totals grow with the
   observation interval; :func:`counters_per_second` normalizes counters by
   the interval, and Table 1 demonstrates why that matters.
3. *Communication-time variation is not network noise* (§3.3) — only
   counters that measure network-side delays (packet latency, stall cycles)
   should be attributed to the network; :func:`estimate_noise_from_counters`
   builds the network-side estimate from those counters alone, via the
   performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import NicConfig
from repro.core.perf_model import estimate_transmission_cycles
from repro.network.counters import CounterSnapshot
from repro.analysis.stats import quartile_coefficient_of_dispersion


@dataclass(frozen=True)
class NoiseEstimate:
    """Variability attributed to the network vs. observed end-to-end."""

    #: QCD of the end-to-end (application-observed) times.
    execution_time_qcd: float
    #: QCD of the network-side estimate (from latency/stall counters only).
    network_qcd: float

    @property
    def overestimation_factor(self) -> float:
        """How much larger the naive estimate is than the network-only one."""
        if self.network_qcd == 0:
            return float("inf") if self.execution_time_qcd > 0 else 1.0
        return self.execution_time_qcd / self.network_qcd


def counters_per_second(
    snapshot: CounterSnapshot, interval_cycles: int, nic: NicConfig
) -> dict:
    """Normalize counters by the observation interval (§3.2).

    Returns rates per (simulated) second, so that a longer observation
    window does not masquerade as higher traffic.
    """
    if interval_cycles <= 0:
        raise ValueError("interval must be positive")
    seconds = interval_cycles / nic.clock_hz
    return {
        "request_flits_per_s": snapshot.request_flits / seconds,
        "stalled_cycles_per_s": snapshot.request_flits_stalled_cycles / seconds,
        "request_packets_per_s": snapshot.request_packets / seconds,
    }


def estimate_noise_from_counters(
    message_size_bytes: int,
    snapshots: Sequence[CounterSnapshot],
    nic: NicConfig,
) -> float:
    """QCD of the *network-side* transmission-time estimates (§3.3).

    Every snapshot (one per repetition of a communication) is converted into
    an estimated transmission time through Equation 2 — which only depends on
    latency and stalls, i.e. on quantities the host cannot influence — and the
    QCD of those estimates is the network-noise figure.
    """
    if not snapshots:
        raise ValueError("need at least one counter snapshot")
    estimates = [
        estimate_transmission_cycles(
            message_size_bytes, snap.avg_packet_latency, snap.stall_ratio, nic
        )
        for snap in snapshots
    ]
    return quartile_coefficient_of_dispersion(estimates)


def noise_estimate(
    execution_times: Sequence[float],
    message_size_bytes: int,
    snapshots: Sequence[CounterSnapshot],
    nic: NicConfig,
) -> NoiseEstimate:
    """Compare end-to-end variability with the network-only variability."""
    return NoiseEstimate(
        execution_time_qcd=quartile_coefficient_of_dispersion(execution_times),
        network_qcd=estimate_noise_from_counters(message_size_bytes, snapshots, nic),
    )


def relative_slowdown(times: Sequence[float], baseline_median: float) -> list:
    """Times normalized to a baseline median (the y-axis of Figures 8–10)."""
    if baseline_median <= 0:
        raise ValueError("baseline median must be positive")
    return [t / baseline_median for t in times]
