"""Plain-text reporting of experiment results (tables and normalized series).

The benchmark harness prints the same rows/series the paper's figures show;
no plotting dependency is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import summarize


@dataclass
class Table:
    """A simple column-oriented table with aligned text rendering."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Monospace rendering with a title and column separators."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a title, header and rows as an aligned text table."""
    header = [str(c) for c in columns]
    text_rows = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * max(len(title), sum(widths) + 3 * (len(widths) - 1))]
    lines.append("   ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for row in text_rows:
        lines.append("   ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def normalize_series(
    series: Mapping[str, Sequence[float]], baseline: str
) -> Dict[str, List[float]]:
    """Normalize each series by the median of the baseline series.

    This is exactly the normalization of Figures 8–10: values below 1 mean
    "faster than the median of the Default routing".
    """
    if baseline not in series:
        raise KeyError(f"baseline series {baseline!r} not present")
    baseline_median = summarize(series[baseline]).median
    if baseline_median <= 0:
        raise ValueError("baseline median must be positive")
    return {
        name: [value / baseline_median for value in values]
        for name, values in series.items()
    }


def boxplot_row(label: str, values: Sequence[float]) -> List[object]:
    """A row of box-plot statistics for :class:`Table` output."""
    stats = summarize(values)
    return [
        label,
        stats.count,
        stats.median,
        stats.mean,
        stats.q1,
        stats.q3,
        stats.qcd,
        len(stats.outliers),
    ]


BOXPLOT_COLUMNS = ["case", "n", "median", "mean", "q1", "q3", "qcd", "outliers"]


def campaign_metrics_table(
    rows: Sequence[Mapping[str, object]],
    metrics: Optional[Sequence[str]] = None,
    title: str = "campaign results",
) -> str:
    """Render campaign store rows (see ``ArtifactStore.status_rows``) as a table.

    ``metrics`` selects which ``metric.<name>`` columns to show; by default
    the metrics common to *all* rows are shown (different scenarios emit
    different metric sets, and a sparse union would be unreadable).
    """
    if not rows:
        return format_table(title, ["hash", "scenario", "scale", "params"], [])
    if metrics is None:
        common = set(key for key in rows[0] if key.startswith("metric."))
        for row in rows[1:]:
            common &= set(key for key in row if key.startswith("metric."))
        metric_columns = sorted(common)
    else:
        metric_columns = [f"metric.{name}" for name in metrics]
    columns = ["hash", "scenario", "scale", "params"] + [
        c[len("metric."):] for c in metric_columns
    ]
    table = Table(title=title, columns=columns)
    for row in rows:
        table.add_row(
            row.get("hash", "?"),
            row.get("scenario", "?"),
            row.get("scale", "?"),
            row.get("params", "{}"),
            *(row.get(c, "") for c in metric_columns),
        )
    return table.render()
