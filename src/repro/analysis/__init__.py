"""Statistics and noise-estimation helpers (Section 3 methodology)."""

from repro.analysis.stats import (
    BoxplotStats,
    iqr,
    median,
    median_confidence_interval,
    quartile_coefficient_of_dispersion,
    quartiles,
    summarize,
)
from repro.analysis.noise_estimation import (
    NoiseEstimate,
    counters_per_second,
    estimate_noise_from_counters,
    relative_slowdown,
)
from repro.analysis.reporting import Table, format_table, normalize_series
from repro.analysis.interference import (
    format_interference,
    interference_matrix,
    store_interference_report,
)

__all__ = [
    "format_interference",
    "interference_matrix",
    "store_interference_report",
    "BoxplotStats",
    "median",
    "quartiles",
    "iqr",
    "quartile_coefficient_of_dispersion",
    "median_confidence_interval",
    "summarize",
    "NoiseEstimate",
    "counters_per_second",
    "estimate_noise_from_counters",
    "relative_slowdown",
    "Table",
    "format_table",
    "normalize_series",
]
