"""Workload-pair interference matrices from cluster-trace replays.

The question the multi-tenant replay exists to answer: *which workload
pairs hurt each other, under which routing mode?*  Given per-job rows (as
produced by :meth:`repro.cluster.scheduler.ClusterResult.job_rows` and
stored in every ``cluster-trace`` cell's ``data.jobs``), the matrix entry
``M[a][b]`` is the overlap-weighted mean slowdown of workload-``a`` jobs
while at least one workload-``b`` job was resident:

* for each ``a``-job, the fraction of its runtime overlapped by the union
  of concurrent ``b``-job intervals is its weight;
* ``M[a][b] = sum(weight * slowdown) / sum(weight)`` over ``a``-jobs with
  any overlap (empty cells render as ``-``).

Sums (numerator/denominator) are exposed separately so matrices from many
campaign cells can be pooled — :func:`store_interference_report` groups a
store's cluster cells by routing mode and renders one pooled matrix per
mode.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.reporting import Table

#: (victim workload, aggressor workload) -> [weighted slowdown sum, weight sum].
InterferenceSums = Dict[Tuple[str, str], List[float]]


def _intervals_by_workload(
    rows: Sequence[Mapping],
) -> Dict[str, List[Tuple[int, int, int]]]:
    """Workload -> [(start, finish, job_id)] for rows with a full lifecycle."""
    out: Dict[str, List[Tuple[int, int, int]]] = {}
    for row in rows:
        start, finish = row.get("start"), row.get("finish")
        if start is None or finish is None or finish <= start:
            continue
        out.setdefault(str(row.get("workload", "?")), []).append(
            (int(start), int(finish), int(row.get("job_id", -1)))
        )
    return out


def _union_overlap(
    window: Tuple[int, int], intervals: Sequence[Tuple[int, int, int]], skip_id: int
) -> int:
    """Cycles of ``window`` covered by the union of ``intervals``."""
    lo, hi = window
    clipped = sorted(
        (max(lo, s), min(hi, f))
        for s, f, jid in intervals
        if jid != skip_id and f > lo and s < hi
    )
    covered = 0
    cursor = lo
    for s, f in clipped:
        s = max(s, cursor)
        if f > s:
            covered += f - s
            cursor = f
    return covered


def interference_sums(rows: Sequence[Mapping]) -> InterferenceSums:
    """Accumulate overlap-weighted slowdown sums for one replay's rows."""
    by_workload = _intervals_by_workload(rows)
    sums: InterferenceSums = {}
    for row in rows:
        slowdown = row.get("slowdown")
        start, finish = row.get("start"), row.get("finish")
        if slowdown is None or start is None or finish is None or finish <= start:
            continue
        victim = str(row.get("workload", "?"))
        job_id = int(row.get("job_id", -1))
        runtime = int(finish) - int(start)
        for aggressor, intervals in by_workload.items():
            overlap = _union_overlap((int(start), int(finish)), intervals, job_id)
            if overlap <= 0:
                continue
            weight = overlap / runtime
            entry = sums.setdefault((victim, aggressor), [0.0, 0.0])
            entry[0] += weight * float(slowdown)
            entry[1] += weight
    return sums


def merge_sums(into: InterferenceSums, other: InterferenceSums) -> InterferenceSums:
    """Pool a second replay's sums into ``into`` (returned for chaining)."""
    for pair, (num, den) in other.items():
        entry = into.setdefault(pair, [0.0, 0.0])
        entry[0] += num
        entry[1] += den
    return into


def matrix_from_sums(sums: InterferenceSums) -> Dict[str, Dict[str, float]]:
    """Collapse pooled sums into the ``M[victim][aggressor]`` matrix."""
    matrix: Dict[str, Dict[str, float]] = {}
    for (victim, aggressor), (num, den) in sorted(sums.items()):
        if den <= 0:
            continue
        matrix.setdefault(victim, {})[aggressor] = round(num / den, 6)
    return matrix


def interference_matrix(rows: Sequence[Mapping]) -> Dict[str, Dict[str, float]]:
    """One replay's matrix: ``M[victim][aggressor]`` mean slowdown."""
    return matrix_from_sums(interference_sums(rows))


def format_interference(
    matrix: Mapping[str, Mapping[str, float]],
    title: str = "interference matrix (victim x aggressor, mean slowdown)",
) -> str:
    """Render the matrix as an aligned table (victims as rows)."""
    workloads = sorted(set(matrix) | {a for row in matrix.values() for a in row})
    if not workloads:
        return f"{title}\n  (no overlapping jobs)"
    table = Table(title=title, columns=["victim \\ aggressor"] + workloads)
    for victim in workloads:
        row = matrix.get(victim, {})
        table.add_row(
            victim,
            *[
                f"{row[a]:.3f}" if a in row else "-"
                for a in workloads
            ],
        )
    return table.render()


def store_interference_report(store, scenario: str = "cluster-trace") -> Optional[str]:
    """Pooled per-routing-mode matrices over a store's cluster cells.

    Reads every index entry of the given scenario family, pools the
    per-job rows of cells sharing a routing mode (the ``mode`` param), and
    renders one matrix per mode.  Returns None when the store holds no
    cluster cells with per-job data.
    """
    sums_by_mode: Dict[str, InterferenceSums] = {}
    cells_by_mode: Dict[str, int] = {}
    for entry in store.index().values():
        if entry.get("scenario") != scenario:
            continue
        result_rel = entry.get("result")
        if not result_rel:
            continue
        try:
            payload = json.loads(
                (store.root / str(result_rel)).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            continue
        rows = (payload.get("data") or {}).get("jobs")
        if not isinstance(rows, list) or not rows:
            continue
        mode = str((entry.get("params") or {}).get("mode", "?"))
        merge_sums(sums_by_mode.setdefault(mode, {}), interference_sums(rows))
        cells_by_mode[mode] = cells_by_mode.get(mode, 0) + 1
    if not sums_by_mode:
        return None
    sections: List[str] = []
    for mode in sorted(sums_by_mode):
        matrix = matrix_from_sums(sums_by_mode[mode])
        sections.append(
            format_interference(
                matrix,
                title=(
                    f"interference under {mode} "
                    f"({cells_by_mode[mode]} cell(s), victim x aggressor)"
                ),
            )
        )
    return "\n\n".join(sections)
