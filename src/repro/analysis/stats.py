"""Order statistics used throughout the paper's figures.

The paper reports box plots (median, inter-quartile range, outliers), the
95 % confidence interval of the median (the "notch"), and the Quartile
Coefficient of Dispersion (QCD) as its variability measure::

    QCD = (Q3 - Q1) / (Q3 + Q1)

Implemented here from first principles (no SciPy dependency) so the library
remains importable with only NumPy installed; values follow the same linear
interpolation convention as ``numpy.percentile``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def _check_nonempty(values: Sequence[float]) -> List[float]:
    data = [float(v) for v in values]
    if not data:
        raise ValueError("statistics of an empty sample are undefined")
    return data


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(_check_nonempty(values))
    if len(data) == 1:
        return data[0]
    position = (len(data) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return data[int(position)]
    weight = position - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


def median(values: Sequence[float]) -> float:
    """The sample median."""
    return percentile(values, 50.0)


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """``(Q1, median, Q3)``."""
    return percentile(values, 25.0), percentile(values, 50.0), percentile(values, 75.0)


def iqr(values: Sequence[float]) -> float:
    """Inter-quartile range ``Q3 - Q1``."""
    q1, _, q3 = quartiles(values)
    return q3 - q1


def quartile_coefficient_of_dispersion(values: Sequence[float]) -> float:
    """QCD = (Q3 - Q1) / (Q3 + Q1); 0 for a degenerate (all-zero) sample."""
    q1, _, q3 = quartiles(values)
    denominator = q3 + q1
    if denominator == 0:
        return 0.0
    return (q3 - q1) / denominator


def median_confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """95 % confidence interval of the median (boxplot notch).

    Uses the standard notch formula ``median ± 1.57 · IQR / sqrt(n)``
    (McGill, Tukey & Larsen 1978), the same convention as the paper's plots.
    """
    data = _check_nonempty(values)
    m = median(data)
    half_width = 1.57 * iqr(data) / math.sqrt(len(data))
    return m - half_width, m + half_width


@dataclass(frozen=True)
class BoxplotStats:
    """Summary of a sample in the shape of the paper's box plots."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]
    qcd: float
    notch_low: float
    notch_high: float

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    def notch_width_relative(self) -> float:
        """Notch width as a fraction of the median (paper: mostly < 5 %)."""
        if self.median == 0:
            return 0.0
        return (self.notch_high - self.notch_low) / self.median


def summarize(values: Sequence[float]) -> BoxplotStats:
    """Full box-plot summary with 1.5·IQR whiskers and outliers."""
    data = sorted(_check_nonempty(values))
    q1, med, q3 = quartiles(data)
    spread = q3 - q1
    low_fence = q1 - 1.5 * spread
    high_fence = q3 + 1.5 * spread
    inside = [v for v in data if low_fence <= v <= high_fence]
    outliers = tuple(v for v in data if v < low_fence or v > high_fence)
    whisker_low = min(inside) if inside else q1
    whisker_high = max(inside) if inside else q3
    notch_low, notch_high = median_confidence_interval(data)
    return BoxplotStats(
        count=len(data),
        mean=sum(data) / len(data),
        median=med,
        q1=q1,
        q3=q3,
        minimum=data[0],
        maximum=data[-1],
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        qcd=quartile_coefficient_of_dispersion(data),
        notch_low=notch_low,
        notch_high=notch_high,
    )
