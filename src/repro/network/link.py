"""A directed link with credit-based flow control and packet serialization.

One :class:`Link` models a directed connection (router→router, NIC→router or
router→NIC).  The link owns

* the *output queue* on its upstream side (packets waiting to traverse it) —
  its depth in flits is the "local" congestion signal a router can read
  instantly;
* the *credit count* mirroring the free space of the downstream input
  buffer — credits are consumed when a packet starts traversing the link and
  returned (after the wire latency) once the downstream router forwards the
  packet onward, exactly like Aries' credit flow-control scheme;
* a timestamped history of the downstream occupancy, from which routing
  obtains a *delayed* far-end congestion estimate (phantom congestion).

Back-pressure therefore propagates naturally: a congested buffer several hops
away eventually exhausts the credits of upstream links and finally stalls the
sending NIC, which is what the NIC's "request flits stalled cycles" counter
measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.network.packet import Packet
from repro.sim.engine import Simulator


class Link:
    """A directed, credit-flow-controlled link.

    Parameters
    ----------
    sim:
        The shared simulator.
    name:
        Human-readable identifier used in traces and error messages.
    latency:
        One-way wire latency in cycles (also used for credit returns).
    width:
        Number of parallel tiles: the link serializes ``width`` flits per
        ``cycles_per_flit`` cycles and its downstream buffer scales with it.
    buffer_flits:
        Downstream input-buffer capacity (per tile) in flits.
    cycles_per_flit:
        Serialization cost of one flit on one tile.
    deliver:
        Callback ``deliver(packet, link)`` invoked when a packet has fully
        arrived at the downstream end.
    measure_stalls:
        When True (NIC injection links), head-of-queue back-pressure stalls
        are reported through ``on_stall``.
    on_stall:
        Callback ``on_stall(cycles, packet)`` used by the NIC counters.
    deadlock_timeout:
        Relief valve: if the head packet has been credit-stalled longer than
        this many cycles, it proceeds anyway (emulating an escape virtual
        channel).  Keeps pathological cyclic-dependency cases from hanging
        the simulation; occurrences are counted in ``deadlock_reliefs``.
    """

    __slots__ = (
        "sim",
        "name",
        "latency",
        "width",
        "capacity",
        "cycles_per_flit",
        "deliver",
        "measure_stalls",
        "on_stall",
        "credits",
        "queue",
        "queue_flits",
        "busy_until",
        "_retry_scheduled",
        "_stall_start",
        "_occ_history",
        "_occ_delayed_value",
        "packets_forwarded",
        "flits_forwarded",
        "credits_returned",
        "queue_wait_cycles",
        "deadlock_timeout",
        "deadlock_reliefs",
        "_stalled_since",
        "_relief_event",
        "on_transmit",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: int,
        width: int,
        buffer_flits: int,
        cycles_per_flit: int = 1,
        deliver: Optional[Callable[[Packet, "Link"], None]] = None,
        measure_stalls: bool = False,
        on_stall: Optional[Callable[[int, Packet], None]] = None,
        deadlock_timeout: int = 200_000,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if width < 1:
            raise ValueError("width must be >= 1")
        if buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.width = width
        self.capacity = buffer_flits * width
        self.cycles_per_flit = cycles_per_flit
        self.deliver = deliver
        self.measure_stalls = measure_stalls
        self.on_stall = on_stall
        self.credits = self.capacity
        self.queue: Deque[Packet] = deque()
        self.queue_flits = 0
        self.busy_until = 0
        self._retry_scheduled = False
        self._stall_start: Optional[int] = None
        # (time, occupancy) samples; consulted with a delay by routing.
        self._occ_history: Deque[Tuple[int, int]] = deque()
        self._occ_delayed_value = 0
        self.packets_forwarded = 0
        self.flits_forwarded = 0
        self.credits_returned = 0
        #: Cumulative cycles packets spent waiting in this output queue — the
        #: analogue of a network-tile stall counter (used for Table 1).
        self.queue_wait_cycles = 0
        self.deadlock_timeout = deadlock_timeout
        self.deadlock_reliefs = 0
        self._stalled_since: Optional[int] = None
        self._relief_event = None
        #: Optional hook called right before a packet starts traversing the
        #: link.  Injection links use it to make the routing decision at the
        #: exact moment the first flit leaves the NIC, so the decision sees
        #: the freshest congestion information available.
        self.on_transmit: Optional[Callable[[Packet], None]] = None

    # -- congestion probes ---------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Current downstream-buffer occupancy in flits (capacity - credits)."""
        return self.capacity - self.credits

    def local_congestion(self) -> float:
        """Congestion visible instantly on the upstream side: queued flits."""
        return float(self.queue_flits)

    def far_congestion(self, delay: int) -> float:
        """Downstream occupancy as it was ``delay`` cycles ago.

        With ``delay == 0`` this is the true current occupancy; a larger
        delay reproduces stale credit information (phantom congestion).
        """
        if delay <= 0:
            return float(self.occupancy)
        horizon = self.sim.now - delay
        # Advance the delayed pointer: drop samples older than the horizon,
        # remembering the last one dropped — that is the value visible now.
        hist = self._occ_history
        while hist and hist[0][0] <= horizon:
            self._occ_delayed_value = hist.popleft()[1]
        return float(self._occ_delayed_value)

    def total_congestion(self, delay: int, far_weight: float = 1.0) -> float:
        """Queue depth plus (delayed) downstream occupancy — one-hop UGAL probe."""
        return self.local_congestion() + far_weight * self.far_congestion(delay)

    def _record_occupancy(self) -> None:
        self._occ_history.append((self.sim.now, self.occupancy))
        # Bound memory: keep the history shallow; the far-end probe only needs
        # the most recent sample older than the delay horizon.
        if len(self._occ_history) > 4096:
            for _ in range(2048):
                self._occ_delayed_value = self._occ_history.popleft()[1]

    # -- sending -------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Queue a packet for transmission over this link."""
        packet.last_enqueue_time = self.sim.now
        self.queue.append(packet)
        self.queue_flits += packet.flits
        self._try_send()

    def return_credits(self, flits: int) -> None:
        """Schedule the return of ``flits`` credits after the wire latency."""
        self.sim.schedule(self.latency, self._credits_arrived, flits)

    def _credits_arrived(self, flits: int) -> None:
        self.credits += flits
        self.credits_returned += flits
        if self.credits > self.capacity:
            raise RuntimeError(f"{self.name}: credit overflow ({self.credits}/{self.capacity})")
        self._record_occupancy()
        self._try_send()

    def _serialization_cycles(self, flits: int) -> int:
        return max(1, -(-flits // self.width) * self.cycles_per_flit)

    def _try_send(self) -> None:
        sim = self.sim
        now = sim.now
        if not self.queue:
            return
        if self.busy_until > now:
            if not self._retry_scheduled:
                self._retry_scheduled = True
                sim.schedule(self.busy_until - now, self._retry)
            return
        packet = self.queue[0]
        if self.credits < packet.flits:
            # Head-of-line blocking due to missing credits.
            if self._stalled_since is None:
                self._stalled_since = now
                # Guarantee a later wake-up even if no credits ever return, so
                # the escape valve below can fire.  The event is cancelled as
                # soon as the head packet leaves.
                self._relief_event = sim.schedule(
                    self.deadlock_timeout + 1, self._try_send
                )
            if self.measure_stalls and self._stall_start is None:
                self._stall_start = now
            if now - self._stalled_since >= self.deadlock_timeout:
                # Escape valve: proceed without waiting for credits (emulates
                # an escape virtual channel); credits may go negative and the
                # link keeps back-pressuring until they recover.
                self.deadlock_reliefs += 1
                self._send_head(borrow=True)
            return
        self._send_head(borrow=False)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._try_send()

    def _send_head(self, borrow: bool) -> None:
        sim = self.sim
        now = sim.now
        packet = self.queue.popleft()
        self.queue_flits -= packet.flits
        self.queue_wait_cycles += now - packet.last_enqueue_time
        self._stalled_since = None
        if self._relief_event is not None:
            self._relief_event.cancel()
            self._relief_event = None
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.measure_stalls and self._stall_start is not None:
            stalled = now - self._stall_start
            self._stall_start = None
            if stalled > 0 and self.on_stall is not None:
                self.on_stall(stalled, packet)
        # Credits are always consumed so that later returns keep the
        # accounting consistent; with ``borrow`` the balance may go negative.
        self.credits -= packet.flits
        self._record_occupancy()
        if packet.inject_start_time is None and self.measure_stalls:
            packet.inject_start_time = now
        # Release the buffer the packet occupied at the upstream element.
        previous = packet.holding_link
        packet.holding_link = self
        if previous is not None:
            previous.return_credits(packet.flits)
        serialization = self._serialization_cycles(packet.flits)
        self.busy_until = now + serialization
        self.packets_forwarded += 1
        self.flits_forwarded += packet.flits
        sim.schedule(serialization + self.latency, self._arrive, packet)
        # Attempt to pipeline the next packet once the wire frees up.
        if self.queue and not self._retry_scheduled:
            self._retry_scheduled = True
            sim.schedule(serialization, self._retry)

    def _arrive(self, packet: Packet) -> None:
        if self.deliver is None:
            raise RuntimeError(f"{self.name}: no delivery callback configured")
        self.deliver(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} queue={len(self.queue)} credits={self.credits}/{self.capacity}>"
        )
