"""A directed link with credit-based flow control and packet serialization.

One :class:`Link` models a directed connection (router→router, NIC→router or
router→NIC).  The link owns

* the *output queue* on its upstream side (packets waiting to traverse it) —
  its depth in flits is the "local" congestion signal a router can read
  instantly;
* the *credit count* mirroring the free space of the downstream input
  buffer — credits are consumed when a packet starts traversing the link and
  returned (after the wire latency) once the downstream router forwards the
  packet onward, exactly like Aries' credit flow-control scheme;
* a timestamped history of the downstream occupancy, from which routing
  obtains a *delayed* far-end congestion estimate (phantom congestion).

Back-pressure therefore propagates naturally: a congested buffer several hops
away eventually exhausts the credits of upstream links and finally stalls the
sending NIC, which is what the NIC's "request flits stalled cycles" counter
measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.network.packet import Packet
from repro.sim.engine import Simulator


class Link:
    """A directed, credit-flow-controlled link.

    Parameters
    ----------
    sim:
        The shared simulator.
    name:
        Human-readable identifier used in traces and error messages.
    latency:
        One-way wire latency in cycles (also used for credit returns).
    width:
        Number of parallel tiles: the link serializes ``width`` flits per
        ``cycles_per_flit`` cycles and its downstream buffer scales with it.
    buffer_flits:
        Downstream input-buffer capacity (per tile) in flits.
    cycles_per_flit:
        Serialization cost of one flit on one tile.
    deliver:
        Callback ``deliver(packet, link)`` invoked when a packet has fully
        arrived at the downstream end.
    measure_stalls:
        When True (NIC injection links), head-of-queue back-pressure stalls
        are reported through ``on_stall``.
    on_stall:
        Callback ``on_stall(cycles, packet)`` used by the NIC counters.
    deadlock_timeout:
        Relief valve: if the head packet has been credit-stalled longer than
        this many cycles, it proceeds anyway (emulating an escape virtual
        channel).  Keeps pathological cyclic-dependency cases from hanging
        the simulation; occurrences are counted in ``deadlock_reliefs``.
    track_occupancy:
        Record the timestamped downstream-occupancy history consulted by
        :meth:`far_congestion`.  Runs with ``credit_info_delay == 0`` never
        read the history (the probe answers from the live credit count), so
        the Network disables tracking for them.
    """

    __slots__ = (
        "sim",
        "name",
        "latency",
        "width",
        "capacity",
        "cycles_per_flit",
        "deliver",
        "measure_stalls",
        "on_stall",
        "credits",
        "queue",
        "queue_flits",
        "busy_until",
        "_retry_scheduled",
        "_stall_start",
        "_occ_history",
        "_occ_delayed_value",
        "_track_occupancy",
        "_credit_arrivals",
        "_wake_scheduled",
        "_ser_table",
        "_schedule_call",
        "_credit_wake_cb",
        "_retry_cb",
        "_arrive_cb",
        "_transmit_done_cb",
        "packets_forwarded",
        "flits_forwarded",
        "credits_returned",
        "queue_wait_cycles",
        "deadlock_timeout",
        "deadlock_reliefs",
        "_stalled_since",
        "_relief_event",
        "on_transmit",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: int,
        width: int,
        buffer_flits: int,
        cycles_per_flit: int = 1,
        deliver: Optional[Callable[[Packet, "Link"], None]] = None,
        measure_stalls: bool = False,
        on_stall: Optional[Callable[[int, Packet], None]] = None,
        deadlock_timeout: int = 200_000,
        track_occupancy: bool = True,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if width < 1:
            raise ValueError("width must be >= 1")
        if buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.width = width
        self.capacity = buffer_flits * width
        self.cycles_per_flit = cycles_per_flit
        self.deliver = deliver
        self.measure_stalls = measure_stalls
        self.on_stall = on_stall
        self.credits = self.capacity
        self.queue: Deque[Packet] = deque()
        self.queue_flits = 0
        self.busy_until = 0
        self._retry_scheduled = False
        self._stall_start: Optional[int] = None
        # (time, occupancy) samples; consulted with a delay by routing.
        self._occ_history: Deque[Tuple[int, int]] = deque()
        self._occ_delayed_value = 0
        self._track_occupancy = track_occupancy
        #: Credits already on the wire: ``[arrival_cycle, flits]`` batches in
        #: arrival order (returns are issued at monotonically non-decreasing
        #: times, so appends keep the deque sorted).  Batches are folded into
        #: ``credits`` lazily by the next reader instead of each paying a
        #: scheduled event; a wake-up event exists only while the link is
        #: actually credit-stalled.
        self._credit_arrivals: Deque[list] = deque()
        self._wake_scheduled = False
        #: flits -> serialization cycles, filled lazily (packet sizes come
        #: from a handful of distinct header/payload combinations).
        self._ser_table: dict = {}
        # Interned callables: scheduling happens hundreds of thousands of
        # times per run, and each ``self._method`` lookup would otherwise
        # allocate a fresh bound-method object.
        self._schedule_call = sim.schedule_call
        self._credit_wake_cb = self._credit_wake
        self._retry_cb = self._retry
        # Arrivals go straight to the delivery callback — no trampoline call
        # per packet.  With no callback configured, arrivals raise instead.
        self._arrive_cb = self._arrive if deliver is None else deliver
        self._transmit_done_cb = self._transmit_done
        self.packets_forwarded = 0
        self.flits_forwarded = 0
        self.credits_returned = 0
        #: Cumulative cycles packets spent waiting in this output queue — the
        #: analogue of a network-tile stall counter (used for Table 1).
        self.queue_wait_cycles = 0
        self.deadlock_timeout = deadlock_timeout
        self.deadlock_reliefs = 0
        self._stalled_since: Optional[int] = None
        self._relief_event = None
        #: Optional hook called right before a packet starts traversing the
        #: link.  Injection links use it to make the routing decision at the
        #: exact moment the first flit leaves the NIC, so the decision sees
        #: the freshest congestion information available.
        self.on_transmit: Optional[Callable[[Packet], None]] = None

    # -- congestion probes ---------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Current downstream-buffer occupancy in flits (capacity - credits)."""
        arrivals = self._credit_arrivals
        if arrivals and arrivals[0][0] <= self.sim._now:
            self._settle_credits(self.sim._now)
        return self.capacity - self.credits

    def local_congestion(self) -> float:
        """Congestion visible instantly on the upstream side: queued flits."""
        return float(self.queue_flits)

    def occupancy_view(self, now: int) -> int:
        """Occupancy counting credits arrived by ``now`` — without mutating.

        The probe/audit read: :attr:`occupancy` settles in-flight credit
        batches as a side effect, which is harmless for readers that always
        settle first but would perturb the *unsettled* ``credits`` value the
        zero-delay routing probe reads (:meth:`UgalSelector._path_score`
        with ``credit_info_delay <= 0``).  This view folds due batches in
        arithmetically, leaving ``credits``/``_credit_arrivals`` untouched,
        so observers cannot change any routing decision.
        """
        credits = self.credits
        for batch in self._credit_arrivals:
            if batch[0] > now:
                break
            credits += batch[1]
        return self.capacity - credits

    def far_congestion(self, delay: int) -> float:
        """Downstream occupancy as it was ``delay`` cycles ago.

        With ``delay == 0`` this is the true current occupancy; a larger
        delay reproduces stale credit information (phantom congestion).
        """
        if delay <= 0:
            return float(self.occupancy)
        now = self.sim._now
        arrivals = self._credit_arrivals
        if arrivals and arrivals[0][0] <= now:
            self._settle_credits(now)
        horizon = now - delay
        # Advance the delayed pointer: drop samples older than the horizon,
        # remembering the last one dropped — that is the value visible now.
        hist = self._occ_history
        while hist and hist[0][0] <= horizon:
            self._occ_delayed_value = hist.popleft()[1]
        return float(self._occ_delayed_value)

    def total_congestion(self, delay: int, far_weight: float = 1.0) -> float:
        """Queue depth plus (delayed) downstream occupancy — one-hop UGAL probe."""
        return self.local_congestion() + far_weight * self.far_congestion(delay)

    # -- sending -------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Queue a packet for transmission over this link."""
        now = self.sim._now
        packet.last_enqueue_time = now
        queue = self.queue
        queue.append(packet)
        self.queue_flits += packet.flits
        if len(queue) > 1:
            # A waiting head already arranged its own wakeup (retry,
            # pipeline boundary, credit wake or relief valve) when it became
            # head; a deeper queue changes nothing for it.
            return
        if self.busy_until > now:
            if not self._retry_scheduled:
                self._retry_scheduled = True
                self._schedule_call(self.busy_until - now, self._retry_cb)
            return
        self._try_send()

    def return_credits(self, flits: int) -> None:
        """Put ``flits`` credits on the wire; they land after the link latency.

        No event is scheduled for the common case: the in-flight batch is
        folded into the credit count lazily by the next reader (a send
        attempt or a congestion probe).  Only a credit-stalled link needs a
        real wake-up, scheduled for the earliest pending arrival — in the
        benchmark scenario ~96% of credit returns wake nobody, so this takes
        the credit path out of the event queue almost entirely.
        """
        arrivals = self._credit_arrivals
        arrival = self.sim._now + self.latency
        if arrivals:
            last = arrivals[-1]
            if last[0] == arrival:
                last[1] += flits
            else:
                arrivals.append([arrival, flits])
        else:
            arrivals.append([arrival, flits])
        if self._stalled_since is not None and not self._wake_scheduled:
            self._wake_scheduled = True
            self._schedule_call(arrivals[0][0] - self.sim._now, self._credit_wake_cb)

    def _settle_credits(self, now: int) -> None:
        """Fold every credit batch that has arrived by ``now`` into the count.

        Occupancy-history samples are backdated to each batch's arrival
        cycle.  Every reader settles before touching ``credits`` or the
        history, and fresh batches always land at ``now + latency``, so the
        history stays in non-decreasing time order.
        """
        arrivals = self._credit_arrivals
        first = arrivals[0]
        if first[0] > now:
            return
        credits = self.credits
        capacity = self.capacity
        track = self._track_occupancy
        hist = self._occ_history
        returned = 0
        while True:
            t = first[0]
            credits += first[1]
            returned += first[1]
            arrivals.popleft()
            if track:
                if hist and hist[-1][0] == t:
                    hist[-1] = (t, capacity - credits)
                else:
                    hist.append((t, capacity - credits))
            if not arrivals:
                break
            first = arrivals[0]
            if first[0] > now:
                break
        self.credits = credits
        self.credits_returned += returned
        if credits > capacity:
            raise RuntimeError(f"{self.name}: credit overflow ({credits}/{capacity})")
        if track and len(hist) > 4096:
            for _ in range(2048):
                self._occ_delayed_value = hist.popleft()[1]

    def _credit_wake(self) -> None:
        self._wake_scheduled = False
        self._try_send()

    def _try_send(self) -> None:
        if not self.queue:
            return
        now = self.sim._now
        if self.busy_until > now:
            if not self._retry_scheduled:
                self._retry_scheduled = True
                self._schedule_call(self.busy_until - now, self._retry_cb)
            return
        packet = self.queue[0]
        arrivals = self._credit_arrivals
        if arrivals and arrivals[0][0] <= now:
            self._settle_credits(now)
        if self.credits < packet.flits:
            # Head-of-line blocking due to missing credits.
            if self._stalled_since is None:
                self._stalled_since = now
                # Guarantee a later wake-up even if no credits ever return, so
                # the escape valve below can fire.  The event is cancelled as
                # soon as the head packet leaves.
                self._relief_event = self.sim.schedule(
                    self.deadlock_timeout + 1, self._try_send
                )
            if self.measure_stalls and self._stall_start is None:
                self._stall_start = now
            # Wake exactly when the next in-flight credit batch lands (all
            # remaining batches are in the future after the settle above).
            if arrivals and not self._wake_scheduled:
                self._wake_scheduled = True
                self._schedule_call(arrivals[0][0] - now, self._credit_wake_cb)
            if now - self._stalled_since >= self.deadlock_timeout:
                # Escape valve: proceed without waiting for credits (emulates
                # an escape virtual channel); credits may go negative and the
                # link keeps back-pressuring until they recover.
                self.deadlock_reliefs += 1
                self._send_head(borrow=True)
            return
        self._send_head(borrow=False)

    def _retry(self) -> None:
        self._retry_scheduled = False
        self._try_send()

    def _send_head(self, borrow: bool) -> None:
        now = self.sim._now
        packet = self.queue.popleft()
        flits = packet.flits
        self.queue_flits -= flits
        self.queue_wait_cycles += now - packet.last_enqueue_time
        self._stalled_since = None
        if self._relief_event is not None:
            self._relief_event.cancel()
            self._relief_event = None
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.measure_stalls:
            if self._stall_start is not None:
                stalled = now - self._stall_start
                self._stall_start = None
                if stalled > 0 and self.on_stall is not None:
                    self.on_stall(stalled, packet)
            if packet.inject_start_time is None:
                packet.inject_start_time = now
        # Credits are always consumed so that later returns keep the
        # accounting consistent; with ``borrow`` the balance may go negative.
        credits = self.credits - flits
        self.credits = credits
        if self._track_occupancy:
            hist = self._occ_history
            if hist and hist[-1][0] == now:
                hist[-1] = (now, self.capacity - credits)
            else:
                hist.append((now, self.capacity - credits))
                if len(hist) > 4096:
                    for _ in range(2048):
                        self._occ_delayed_value = hist.popleft()[1]
        # Release the buffer the packet occupied at the upstream element.
        previous = packet.holding_link
        packet.holding_link = self
        if previous is not None:
            previous.return_credits(flits)
        serialization = self._ser_table.get(flits)
        if serialization is None:
            serialization = max(1, -(-flits // self.width) * self.cycles_per_flit)
            self._ser_table[flits] = serialization
        self.busy_until = now + serialization
        self.packets_forwarded += 1
        self.flits_forwarded += flits
        if self.queue and not self._retry_scheduled:
            # Merge the wire-free wakeup with the packet's departure onto the
            # wire: one callback at the serialization boundary pipelines the
            # next packet AND puts this one in flight, instead of scheduling
            # a separate retry/arrival pair.
            self._retry_scheduled = True
            self._schedule_call(serialization, self._transmit_done_cb, packet)
        else:
            self._schedule_call(
                serialization + self.latency, self._arrive_cb, packet, self
            )

    def _transmit_done(self, packet: Packet) -> None:
        self._schedule_call(self.latency, self._arrive_cb, packet, self)
        self._retry_scheduled = False
        self._try_send()

    def _arrive(self, packet: Packet, _link: "Link") -> None:
        raise RuntimeError(f"{self.name}: no delivery callback configured")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} queue={len(self.queue)} credits={self.credits}/{self.capacity}>"
        )
