"""NIC network performance counters (Section 2.3).

Only the four NIC counters used by the paper are modelled:

* ``request_flits`` — request flits sent;
* ``request_flits_stalled_cycles`` — cycles a ready-to-forward flit was not
  forwarded because of back-pressure;
* ``request_packets`` — request packets sent;
* ``request_packets_cum_latency`` — cumulative request→response latency
  (stored in cycles here; the hardware reports microseconds — conversion
  helpers are provided).

The derived quantities ``s`` (average stall cycles per flit) and ``L``
(average packet latency) are exactly the inputs of the performance model
(Section 2.4) and of the application-aware routing algorithm (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NicConfig


class CounterWraparoundError(ValueError):
    """A counter delta came out negative (hardware wraparound or reset).

    Real PAPI/Aries counters are fixed-width registers: a later reading can
    be *smaller* than an earlier one when the register wraps (or when
    another tool reset the counter block mid-measurement).  Feeding such a
    negative delta into the ``s``/``L`` derivations of Section 2.4 silently
    corrupts the performance model, so :meth:`CounterSnapshot.delta` refuses
    it by default.
    """


@dataclass(frozen=True)
class CounterSnapshot:
    """An immutable copy of the NIC counters at one point in time."""

    request_flits: int
    request_flits_stalled_cycles: int
    request_packets: int
    request_packets_cum_latency: float
    responses_received: int

    def delta(self, earlier: "CounterSnapshot", on_wraparound: str = "raise") -> "CounterSnapshot":
        """Counters accumulated since ``earlier`` (Section 3.2 normalization).

        ``on_wraparound`` controls what happens when a field decreased
        between the two snapshots:

        * ``"raise"`` (default) — raise :class:`CounterWraparoundError`
          naming the offending counters;
        * ``"clamp"`` — clamp the negative deltas to zero, keeping the
          snapshot usable at the cost of undercounting the wrapped field.
        """
        if on_wraparound not in ("raise", "clamp"):
            raise ValueError(
                f"on_wraparound must be 'raise' or 'clamp', got {on_wraparound!r}"
            )
        # delta() sits in the per-ack hot path of AppAware runs, so the
        # happy path stays five direct subtractions and one comparison.
        flits = self.request_flits - earlier.request_flits
        stalled = self.request_flits_stalled_cycles - earlier.request_flits_stalled_cycles
        packets = self.request_packets - earlier.request_packets
        latency = self.request_packets_cum_latency - earlier.request_packets_cum_latency
        responses = self.responses_received - earlier.responses_received
        if flits < 0 or stalled < 0 or packets < 0 or latency < 0 or responses < 0:
            if on_wraparound == "raise":
                wrapped = [
                    f"{name} ({value})"
                    for name, value in (
                        ("request_flits", flits),
                        ("request_flits_stalled_cycles", stalled),
                        ("request_packets", packets),
                        ("request_packets_cum_latency", latency),
                        ("responses_received", responses),
                    )
                    if value < 0
                ]
                raise CounterWraparoundError(
                    "counter(s) decreased between snapshots — hardware wraparound "
                    f"or reset: {', '.join(wrapped)}"
                )
            flits = max(0, flits)
            stalled = max(0, stalled)
            packets = max(0, packets)
            latency = max(0.0, latency)
            responses = max(0, responses)
        return CounterSnapshot(
            request_flits=flits,
            request_flits_stalled_cycles=stalled,
            request_packets=packets,
            request_packets_cum_latency=latency,
            responses_received=responses,
        )

    @property
    def stall_ratio(self) -> float:
        """``s``: average cycles a flit waits before being transmitted."""
        if self.request_flits == 0:
            return 0.0
        return self.request_flits_stalled_cycles / self.request_flits

    @property
    def avg_packet_latency(self) -> float:
        """``L``: average request→response latency, in cycles."""
        if self.responses_received == 0:
            return 0.0
        return self.request_packets_cum_latency / self.responses_received

    def avg_packet_latency_us(self, nic: NicConfig) -> float:
        """``L`` converted to microseconds, as the hardware counter reports it."""
        return nic.cycles_to_us(self.avg_packet_latency)


class NicCounters:
    """Mutable counter block attached to a NIC."""

    __slots__ = (
        "request_flits",
        "request_flits_stalled_cycles",
        "request_packets",
        "request_packets_cum_latency",
        "responses_received",
    )

    def __init__(self) -> None:
        self.request_flits = 0
        self.request_flits_stalled_cycles = 0
        self.request_packets = 0
        self.request_packets_cum_latency = 0.0
        self.responses_received = 0

    # -- updates (called by the NIC model) ----------------------------------

    def on_packet_injected(self, flits: int) -> None:
        """Record transmission of one request packet with ``flits`` flits."""
        self.request_packets += 1
        self.request_flits += flits

    def on_stall(self, cycles: int) -> None:
        """Record ``cycles`` of back-pressure stall on the injection pipe."""
        if cycles < 0:
            raise ValueError("stall cycles cannot be negative")
        self.request_flits_stalled_cycles += cycles

    def on_response(self, latency_cycles: float) -> None:
        """Record the completion of one request→response pair."""
        if latency_cycles < 0:
            raise ValueError("latency cannot be negative")
        self.responses_received += 1
        self.request_packets_cum_latency += latency_cycles

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> CounterSnapshot:
        """Immutable copy, e.g. taken before and after sending a message."""
        return CounterSnapshot(
            request_flits=self.request_flits,
            request_flits_stalled_cycles=self.request_flits_stalled_cycles,
            request_packets=self.request_packets,
            request_packets_cum_latency=self.request_packets_cum_latency,
            responses_received=self.responses_received,
        )

    def reset(self) -> None:
        """Zero all counters (a fresh PAPI counter set)."""
        self.request_flits = 0
        self.request_flits_stalled_cycles = 0
        self.request_packets = 0
        self.request_packets_cum_latency = 0.0
        self.responses_received = 0

    @property
    def stall_ratio(self) -> float:
        """``s`` over the whole lifetime of the counter block."""
        return self.snapshot().stall_ratio

    @property
    def avg_packet_latency(self) -> float:
        """``L`` over the whole lifetime of the counter block."""
        return self.snapshot().avg_packet_latency
