"""NIC model: packetization, injection, outstanding-packet window, counters.

The NIC is where the paper's measurements happen (Section 2.3) and where the
application-aware routing library intervenes (Section 4.3), so its behaviour
follows the description closely:

* an application message is packetized into 64-byte request packets;
* packets are injected one after the other through the host (processor-tile)
  link; a packet's routing decision is made when its first flit leaves the
  NIC, using the source router's current congestion information;
* at most ``max_outstanding_packets`` request packets may be un-acknowledged;
  further packets wait for responses (this produces the ``p/1024 · L`` term
  of Equation 2);
* back-pressure stalls on the injection pipe increment the
  ``request_flits_stalled_cycles`` counter; request→response latencies
  accumulate into the cumulative-latency counter.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from repro.config import NicConfig
from repro.network.counters import NicCounters
from repro.network.link import Link
from repro.network.packet import Message, Packet, RdmaOp
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import Network


class Nic:
    """One Aries NIC, attached to one compute node."""

    __slots__ = (
        "node_id",
        "router_id",
        "sim",
        "config",
        "network",
        "counters",
        "injection_link",
        "outstanding",
        "_message_queue",
        "_active_message",
        "_active_remaining",
        "messages_sent",
        "messages_received",
        "on_message_delivered",
    )

    def __init__(
        self,
        node_id: int,
        router_id: int,
        sim: Simulator,
        config: NicConfig,
        network: "Network",
    ):
        self.node_id = node_id
        self.router_id = router_id
        self.sim = sim
        self.config = config
        self.network = network
        self.counters = NicCounters()
        #: Set by the Network builder: the NIC→router host link.
        self.injection_link: Optional[Link] = None
        self.outstanding = 0
        self._message_queue: Deque[Message] = deque()
        self._active_message: Optional[Message] = None
        self._active_remaining = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Hook for the MPI layer: called with every delivered Message.
        self.on_message_delivered: Optional[Callable[[Message], None]] = None

    # -- sending ---------------------------------------------------------------

    def submit(self, message: Message) -> None:
        """Hand a message to the NIC (the moment ``T_msg`` starts counting)."""
        if message.src_node != self.node_id:
            raise ValueError(
                f"message source {message.src_node} does not match NIC {self.node_id}"
            )
        message.submit_time = self.sim.now
        self._message_queue.append(message)
        self._pump()

    def _pump(self) -> None:
        """Generate and enqueue request packets while the window allows it."""
        while True:
            if self._active_message is None:
                if not self._message_queue:
                    return
                self._active_message = self._message_queue.popleft()
                self._active_remaining = self._active_message.num_packets
                self.messages_sent += 1
            message = self._active_message
            while self._active_remaining > 0:
                if self.outstanding >= self.config.max_outstanding_packets:
                    return  # wait for responses before injecting more
                self._inject_packet(message)
                self._active_remaining -= 1
            if self._active_remaining == 0:
                self._active_message = None
                # loop to start the next queued message, if any

    def _inject_packet(self, message: Message) -> None:
        index = message.num_packets - self._active_remaining
        if index < message.full_packets:
            flits = message.req_flits_full
        else:
            flits = message.req_flits_tail
        packet = Packet(
            message=message,
            src_node=self.node_id,
            dst_node=message.dst_node,
            flits=flits,
            is_response=False,
            index_in_message=index,
        )
        self.outstanding += 1
        message.packets_injected += 1
        self.counters.on_packet_injected(flits)
        if message.first_injection_time is None:
            message.first_injection_time = self.sim.now
        # The routing decision is NOT made here: the injection link's
        # ``on_transmit`` hook (installed by the Network) assigns the path at
        # the exact cycle the packet's first flit leaves the NIC, so decisions
        # use fresh congestion information even when a large message queues
        # many packets at once.
        if self.injection_link is None:
            raise RuntimeError(f"NIC {self.node_id} is not wired to a router")
        self.injection_link.enqueue(packet)

    # -- counter feedback from the injection link ------------------------------

    def record_stall(self, cycles: int, packet: Packet) -> None:
        """Callback wired to the injection link's stall detector."""
        del packet  # per-flit attribution not needed
        self.counters.on_stall(cycles)

    # -- receiving --------------------------------------------------------------

    def packet_ejected(self, packet: Packet, via_link: Link) -> None:
        """A packet fully arrived at this NIC (ejection side)."""
        # The NIC drains its receive buffer immediately: free the ejection
        # buffer so credits flow back to the last router.
        via_link.return_credits(packet.flits)
        packet.holding_link = None
        if packet.is_response:
            self._response_received(packet)
        else:
            self._request_received(packet)

    def _request_received(self, packet: Packet) -> None:
        message = packet.message
        message.packets_delivered += 1
        if message.packets_delivered == message.num_packets:
            message.delivered_time = self.sim.now
            self.messages_received += 1
            if self.on_message_delivered is not None:
                self.on_message_delivered(message)
            if message.on_delivered is not None:
                message.on_delivered(message)
        # Send the response back to the source NIC by recycling the delivered
        # request packet in place: nothing else holds a reference to it once
        # its ejection buffer is freed, so flipping the endpoints avoids one
        # allocation per request.  For PUTs the response is a bare
        # acknowledgement; for GETs it carries the data.
        if self.injection_link is None:
            raise RuntimeError(f"NIC {self.node_id} is not wired to a router")
        if packet.index_in_message < message.full_packets:
            flits = message.resp_flits_full
        else:
            flits = message.resp_flits_tail
        packet.dst_node = packet.src_node
        packet.src_node = self.node_id
        packet.flits = flits
        packet.is_response = True
        packet.path = None  # re-routed at injection with fresh congestion info
        packet.hop_index = 0
        packet.request_inject_start = packet.inject_start_time
        self.injection_link.enqueue(packet)

    def _response_received(self, packet: Packet) -> None:
        message = packet.message
        message.packets_acked += 1
        self.outstanding -= 1
        if packet.request_inject_start is not None:
            latency = self.sim.now - packet.request_inject_start
            self.counters.on_response(latency)
        if message.packets_acked == message.num_packets:
            message.acked_time = self.sim.now
            if message.on_acked is not None:
                message.on_acked(message)
        # The freed window slot may allow more packets to be injected.
        self._pump()

    # -- inspection --------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when the NIC has no pending or in-flight request packets."""
        return (
            self._active_message is None
            and not self._message_queue
            and self.outstanding == 0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Nic node={self.node_id} router={self.router_id} outstanding={self.outstanding}>"
