"""Router (Aries device) model.

A router owns one output :class:`~repro.network.link.Link` per neighboring
router and one ejection link per locally attached NIC.  Packets are source
routed: the path was chosen at injection time, so the router only advances
the packet to the next link of its path.  The router also aggregates
per-device traffic counters (flits forwarded, stall-cycles observed on its
output queues), which play the role of the *network-tile counters* used in
Section 3.2 of the paper (Table 1).
"""

from __future__ import annotations

from typing import Dict

from repro.network.link import Link
from repro.network.packet import Packet


class RoutingError(RuntimeError):
    """Raised when a packet cannot be forwarded along its path."""


class Router:
    """One Aries router (blade)."""

    __slots__ = (
        "router_id",
        "output_links",
        "ejection_links",
        "flits_traversed",
        "packets_traversed",
    )

    def __init__(self, router_id: int):
        self.router_id = router_id
        #: neighbor router id -> outgoing Link
        self.output_links: Dict[int, Link] = {}
        #: local node id -> Link towards that node's NIC
        self.ejection_links: Dict[int, Link] = {}
        #: Tile-counter analogue: flits that traversed this router.
        self.flits_traversed = 0
        self.packets_traversed = 0

    # -- wiring (performed by the Network builder) ---------------------------

    def attach_output(self, neighbor_router: int, link: Link) -> None:
        """Register the outgoing link towards ``neighbor_router``."""
        if neighbor_router in self.output_links:
            raise ValueError(
                f"router {self.router_id} already has a link to {neighbor_router}"
            )
        self.output_links[neighbor_router] = link

    def attach_ejection(self, node_id: int, link: Link) -> None:
        """Register the ejection link towards a locally attached NIC."""
        if node_id in self.ejection_links:
            raise ValueError(f"router {self.router_id} already serves node {node_id}")
        self.ejection_links[node_id] = link

    # -- forwarding -----------------------------------------------------------

    def packet_arrived(self, packet: Packet, via_link: Link) -> None:
        """Handle a packet that fully arrived on one of the input buffers."""
        self.flits_traversed += packet.flits
        self.packets_traversed += 1
        path = packet.path
        hop = packet.hop_index
        try:
            here_ok = path[hop] == self.router_id
        except (TypeError, IndexError):
            here_ok = False
        if not here_ok:
            if path is None:
                raise RoutingError(
                    f"packet {packet.id} arrived at router without a path"
                )
            raise RoutingError(
                f"packet {packet.id} arrived at router {self.router_id} but its path "
                f"expects {path[hop] if hop < len(path) else '<end>'}"
            )
        hop += 1
        if hop == len(path):
            # Final router: eject towards the destination NIC.
            try:
                ejection = self.ejection_links[packet.dst_node]
            except KeyError:
                raise RoutingError(
                    f"router {self.router_id} does not serve node {packet.dst_node}"
                ) from None
            ejection.enqueue(packet)
            return
        packet.hop_index = hop
        try:
            link = self.output_links[path[hop]]
        except KeyError:
            raise RoutingError(
                f"router {self.router_id} has no link to {path[hop]} "
                f"(path {path})"
            ) from None
        link.enqueue(packet)

    # -- congestion probes ----------------------------------------------------

    def output_queue_flits(self, neighbor_router: int) -> float:
        """Instantaneous depth of the output queue towards a neighbor."""
        return self.output_links[neighbor_router].local_congestion()

    def busiest_output(self) -> float:
        """Depth of the deepest output queue (diagnostics)."""
        if not self.output_links:
            return 0.0
        return max(link.local_congestion() for link in self.output_links.values())

    @property
    def stalled_cycles(self) -> int:
        """Cumulative queue-wait cycles over this router's output links.

        This is the router-level analogue of the tile "stalled cycles"
        counters used in Table 1 of the paper.
        """
        total = sum(link.queue_wait_cycles for link in self.output_links.values())
        total += sum(link.queue_wait_cycles for link in self.ejection_links.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Router {self.router_id} degree={len(self.output_links)}>"
