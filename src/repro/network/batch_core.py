"""Fused network fast path for the ``batch`` flit engine.

PR 7's profile showed that with the calendar scheduler in place, event
*dispatch* is cheap and the remaining wall-clock lives in the per-packet
Python work between events: every link traversal walks a five-deep chain
of bound-method calls (``enqueue → _try_send → _send_head → schedule →
_transmit_done/_arrive → Router.packet_arrived → next enqueue``), and the
UGAL probe pays attribute/property dispatch per candidate.  Dense
per-cycle NumPy stepping does not help here — measured traffic is sparse
(~0.17 sends per cycle at smoke scale), so touching every link every
cycle does strictly more work than the event-driven plan and cannot
preserve the intra-cycle decision order the parity contract needs.

The batch engine therefore keeps the event-driven plan and *fuses* it:

* :class:`BatchLink` rebinds its interned event callbacks to the
  module-level handlers below with :class:`types.MethodType` — still one
  preallocated bound callable per link (zero per-event allocation), but
  each event now runs a single fused frame with local-variable state
  instead of a method chain;
* arrivals dispatch straight into an inlined copy of
  ``Router.packet_arrived`` / ``Nic.packet_ejected`` (including response
  recycling and counter updates) and forward by calling the fused enqueue
  on the next link directly;
* serialization tables are NumPy-precomputed per link instead of filled
  lazily per distinct packet size.

Every handler is a statement-for-statement transcription of the
``reference``/``calendar`` object plane (``link.py``, ``router.py``,
``nic.py``): same state mutations in the same order, same schedule sites
with the same delays, same ``schedule``/``schedule_call`` split.  The
batch engine is therefore event-for-event deterministic with the other
engines — identical ``events_executed``, timelines, counters, decisions
and store bytes — which the three-engine equivalence suite in
``tests/test_flit_engine.py`` asserts, dict-for-dict.
"""

from __future__ import annotations

from heapq import heappush
from types import MethodType
from typing import TYPE_CHECKING

import numpy as np

from repro.network.link import Link
from repro.network.packet import Packet
from repro.network.router import RoutingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.nic import Nic
    from repro.network.router import Router

#: Packet sizes (in flits) covered by the precomputed serialization table.
#: Real packets are <= (header + payload) flits — far below this — but the
#: fused send path still falls back to the exact formula beyond the table.
_SER_TABLE_FLITS = 256


def _build_ser_list(width: int, cycles_per_flit: int) -> list:
    """Precompute ``flits -> serialization cycles`` for one link shape.

    Matches ``max(1, ceil(flits / width) * cycles_per_flit)`` exactly; kept
    as a plain Python list because the fused send path indexes it with a
    scalar (a list index is faster than a NumPy scalar extraction).
    """
    flits = np.arange(_SER_TABLE_FLITS, dtype=np.int64)
    ser = np.maximum(1, -(-flits // width) * cycles_per_flit)
    return [int(v) for v in ser]


# -- fused event handlers ------------------------------------------------------
#
# Each function takes the BatchLink as its first argument (they are bound to
# links with MethodType, so from the scheduler's point of view they are the
# same zero-allocation interned callbacks the calendar engine uses).  Bodies
# are transcribed from Link/Router/Nic — comments there explain the physics;
# comments here only mark what was inlined from where.


def _do_enqueue(link, packet):
    # Link.enqueue, with the retry schedule landing directly in the calendar
    # bucket (the delay is a positive integer by construction, so the
    # schedule_call validation/rounding is dead weight here).
    now = link.sim._now
    packet.last_enqueue_time = now
    queue = link.queue
    if queue:  # deeper queue: the pending retry/arrival will drain it
        queue.append(packet)
        link.queue_flits += packet.flits
        return
    queue.append(packet)
    link.queue_flits += packet.flits
    if link.busy_until > now:
        if not link._retry_scheduled:
            link._retry_scheduled = True
            sim = link.sim
            time = link.busy_until
            buckets = sim._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [link._retry_cb, ()]
                heappush(sim._times, time)
            else:
                bucket.append(link._retry_cb)
                bucket.append(())
            sim._live_events += 1
        return
    _pump(link, now)


def _do_return_credits(link, flits):
    # Link.return_credits
    arrivals = link._credit_arrivals
    arrival = link.sim._now + link.latency
    if arrivals:
        last = arrivals[-1]
        if last[0] == arrival:
            last[1] += flits
        else:
            arrivals.append([arrival, flits])
    else:
        arrivals.append([arrival, flits])
    if link._stalled_since is not None and not link._wake_scheduled:
        link._wake_scheduled = True
        link._schedule_call(arrivals[0][0] - link.sim._now, link._credit_wake_cb)


def _do_settle_credits(link, now):
    # Link._settle_credits
    arrivals = link._credit_arrivals
    first = arrivals[0]
    if first[0] > now:
        return
    credits = link.credits
    capacity = link.capacity
    track = link._track_occupancy
    hist = link._occ_history
    returned = 0
    while True:
        t = first[0]
        credits += first[1]
        returned += first[1]
        arrivals.popleft()
        if track:
            if hist and hist[-1][0] == t:
                hist[-1] = (t, capacity - credits)
            else:
                hist.append((t, capacity - credits))
        if not arrivals:
            break
        first = arrivals[0]
        if first[0] > now:
            break
    link.credits = credits
    link.credits_returned += returned
    if credits > capacity:
        raise RuntimeError(f"{link.name}: credit overflow ({credits}/{capacity})")
    if track and len(hist) > 4096:
        for _ in range(2048):
            link._occ_delayed_value = hist.popleft()[1]


def _do_credit_wake(link):
    # Link._credit_wake
    link._wake_scheduled = False
    _pump(link, link.sim._now)


def _do_retry(link):
    # Link._retry
    link._retry_scheduled = False
    _pump(link, link.sim._now)


def _do_try_send(link):
    # Link._try_send
    _pump(link, link.sim._now)


def _pump(link, now):
    """Fused ``Link._try_send`` + ``Link._send_head(borrow=False)``.

    One stack frame for the entire happy path of a link send, with the
    calendar-bucket append inlined (every delay scheduled here is a
    non-negative integer, making schedule_call's validation and float
    rounding dead weight).  The credit-stalled and escape-valve branches
    are rare and stay in :func:`_stall_head` / :func:`_do_send_head`.
    """
    queue = link.queue
    if not queue:
        return
    if link.busy_until > now:
        if not link._retry_scheduled:
            link._retry_scheduled = True
            sim = link.sim
            time = link.busy_until
            buckets = sim._buckets
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [link._retry_cb, ()]
                heappush(sim._times, time)
            else:
                bucket.append(link._retry_cb)
                bucket.append(())
            sim._live_events += 1
        return
    packet = queue[0]
    arrivals = link._credit_arrivals
    if arrivals and arrivals[0][0] <= now:
        _do_settle_credits(link, now)
    flits = packet.flits
    credits = link.credits
    if credits < flits:
        _stall_head(link, now, arrivals)
        return
    # ---- Link._send_head(borrow=False), fused ------------------------------
    queue.popleft()
    link.queue_flits -= flits
    link.queue_wait_cycles += now - packet.last_enqueue_time
    link._stalled_since = None
    relief = link._relief_event
    if relief is not None:
        relief.cancel()
        link._relief_event = None
    on_transmit = link.on_transmit
    if on_transmit is not None:
        # The routing hook probes *fabric* links only, never this (host)
        # link, so the local credit copy cannot go stale across the call.
        on_transmit(packet)
    if link.measure_stalls:
        stall_start = link._stall_start
        if stall_start is not None:
            stalled = now - stall_start
            link._stall_start = None
            if stalled > 0 and link.on_stall is not None:
                link.on_stall(stalled, packet)
        if packet.inject_start_time is None:
            packet.inject_start_time = now
    credits -= flits
    link.credits = credits
    if link._track_occupancy:
        hist = link._occ_history
        if hist and hist[-1][0] == now:
            hist[-1] = (now, link.capacity - credits)
        else:
            hist.append((now, link.capacity - credits))
            if len(hist) > 4096:
                for _ in range(2048):
                    link._occ_delayed_value = hist.popleft()[1]
    previous = packet.holding_link
    packet.holding_link = link
    if previous is not None:
        _do_return_credits(previous, flits)
    if flits < _SER_TABLE_FLITS:
        serialization = link._ser_list[flits]
    else:
        serialization = max(1, -(-flits // link.width) * link.cycles_per_flit)
    link.busy_until = now + serialization
    link.packets_forwarded += 1
    link.flits_forwarded += flits
    if queue and not link._retry_scheduled:
        link._retry_scheduled = True
        time = now + serialization
        fn = link._transmit_done_cb
        args = (packet,)
    else:
        time = now + serialization + link.latency
        fn = link._arrive_cb
        args = (packet, link)
    sim = link.sim
    buckets = sim._buckets
    bucket = buckets.get(time)
    if bucket is None:
        buckets[time] = [fn, args]
        heappush(sim._times, time)
    else:
        bucket.append(fn)
        bucket.append(args)
    sim._live_events += 1


def _stall_head(link, now, arrivals):
    # Link._try_send, credit-stalled branch (head-of-line blocking).
    if link._stalled_since is None:
        link._stalled_since = now
        link._relief_event = link.sim.schedule(
            link.deadlock_timeout + 1, link._try_send
        )
    if link.measure_stalls and link._stall_start is None:
        link._stall_start = now
    if arrivals and not link._wake_scheduled:
        link._wake_scheduled = True
        link._schedule_call(arrivals[0][0] - now, link._credit_wake_cb)
    if now - link._stalled_since >= link.deadlock_timeout:
        link.deadlock_reliefs += 1
        _do_send_head(link, True)


def _do_send_head(link, borrow):
    # Link._send_head
    now = link.sim._now
    packet = link.queue.popleft()
    flits = packet.flits
    link.queue_flits -= flits
    link.queue_wait_cycles += now - packet.last_enqueue_time
    link._stalled_since = None
    relief = link._relief_event
    if relief is not None:
        relief.cancel()
        link._relief_event = None
    on_transmit = link.on_transmit
    if on_transmit is not None:
        on_transmit(packet)
    if link.measure_stalls:
        stall_start = link._stall_start
        if stall_start is not None:
            stalled = now - stall_start
            link._stall_start = None
            if stalled > 0 and link.on_stall is not None:
                link.on_stall(stalled, packet)
        if packet.inject_start_time is None:
            packet.inject_start_time = now
    credits = link.credits - flits
    link.credits = credits
    if link._track_occupancy:
        hist = link._occ_history
        if hist and hist[-1][0] == now:
            hist[-1] = (now, link.capacity - credits)
        else:
            hist.append((now, link.capacity - credits))
            if len(hist) > 4096:
                for _ in range(2048):
                    link._occ_delayed_value = hist.popleft()[1]
    previous = packet.holding_link
    packet.holding_link = link
    if previous is not None:
        _do_return_credits(previous, flits)
    if flits < _SER_TABLE_FLITS:
        serialization = link._ser_list[flits]
    else:
        serialization = max(1, -(-flits // link.width) * link.cycles_per_flit)
    link.busy_until = now + serialization
    link.packets_forwarded += 1
    link.flits_forwarded += flits
    if link.queue and not link._retry_scheduled:
        link._retry_scheduled = True
        link._schedule_call(serialization, link._transmit_done_cb, packet)
    else:
        link._schedule_call(
            serialization + link.latency, link._arrive_cb, packet, link
        )


def _do_transmit_done(link, packet):
    # Link._transmit_done, with the arrival schedule inlined.
    sim = link.sim
    now = sim._now
    time = now + link.latency
    buckets = sim._buckets
    bucket = buckets.get(time)
    if bucket is None:
        buckets[time] = [link._arrive_cb, (packet, link)]
        heappush(sim._times, time)
    else:
        bucket.append(link._arrive_cb)
        bucket.append((packet, link))
    sim._live_events += 1
    link._retry_scheduled = False
    _pump(link, now)


def _do_arrive_router(link, packet, _via):
    # Router.packet_arrived, with the forward landing directly in the fused
    # enqueue of the next BatchLink (no Router method dispatch per hop).
    router = link.dst_router
    router.flits_traversed += packet.flits
    router.packets_traversed += 1
    path = packet.path
    hop = packet.hop_index
    try:
        here_ok = path[hop] == router.router_id
    except (TypeError, IndexError):
        here_ok = False
    if not here_ok:
        if path is None:
            raise RoutingError(
                f"packet {packet.id} arrived at router without a path"
            )
        raise RoutingError(
            f"packet {packet.id} arrived at router {router.router_id} but its path "
            f"expects {path[hop] if hop < len(path) else '<end>'}"
        )
    hop += 1
    if hop == len(path):
        try:
            ejection = router.ejection_links[packet.dst_node]
        except KeyError:
            raise RoutingError(
                f"router {router.router_id} does not serve node {packet.dst_node}"
            ) from None
        _do_enqueue(ejection, packet)
        return
    packet.hop_index = hop
    try:
        next_link = router.output_links[path[hop]]
    except KeyError:
        raise RoutingError(
            f"router {router.router_id} has no link to {path[hop]} "
            f"(path {path})"
        ) from None
    _do_enqueue(next_link, packet)


def _do_arrive_nic(link, packet, _via):
    # Nic.packet_ejected + _request_received/_response_received, with the
    # NicCounters updates inlined (validation elided: latencies and stall
    # spans are non-negative by construction on this path).
    _do_return_credits(link, packet.flits)
    packet.holding_link = None
    nic = link.dst_nic
    message = packet.message
    if packet.is_response:
        # Nic._response_received
        message.packets_acked += 1
        nic.outstanding -= 1
        if packet.request_inject_start is not None:
            counters = nic.counters
            counters.responses_received += 1
            counters.request_packets_cum_latency += (
                link.sim._now - packet.request_inject_start
            )
        if message.packets_acked == message.num_packets:
            message.acked_time = link.sim._now
            if message.on_acked is not None:
                message.on_acked(message)
        nic._pump()
        return
    # Nic._request_received
    message.packets_delivered += 1
    if message.packets_delivered == message.num_packets:
        message.delivered_time = link.sim._now
        nic.messages_received += 1
        if nic.on_message_delivered is not None:
            nic.on_message_delivered(message)
        if message.on_delivered is not None:
            message.on_delivered(message)
    injection = nic.injection_link
    if injection is None:
        raise RuntimeError(f"NIC {nic.node_id} is not wired to a router")
    if packet.index_in_message < message.full_packets:
        flits = message.resp_flits_full
    else:
        flits = message.resp_flits_tail
    packet.dst_node = packet.src_node
    packet.src_node = nic.node_id
    packet.flits = flits
    packet.is_response = True
    packet.path = None
    packet.hop_index = 0
    packet.request_inject_start = packet.inject_start_time
    _do_enqueue(injection, packet)


class BatchLink(Link):
    """A :class:`Link` whose event callbacks run the fused handlers.

    Construction is identical to ``Link``; the Network builder then calls
    :meth:`bind_router` or :meth:`bind_nic` to attach the downstream
    element, which selects the fused arrival handler.  Method overrides
    keep every external entry point (NIC injection, probes, tests, the
    relief-valve event) on the fused core so there is exactly one
    implementation of the semantics per engine plane.
    """

    __slots__ = ("dst_router", "dst_nic", "_ser_list")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dst_router = None
        self.dst_nic = None
        self._ser_list = _build_ser_list(self.width, self.cycles_per_flit)
        # Rebind the interned callbacks to the fused handlers: still one
        # preallocated bound callable per link, zero per-event allocation.
        self._retry_cb = MethodType(_do_retry, self)
        self._credit_wake_cb = MethodType(_do_credit_wake, self)
        self._transmit_done_cb = MethodType(_do_transmit_done, self)
        # _arrive_cb keeps the constructor-provided delivery callback until
        # bind_router()/bind_nic() swaps in a fused arrival handler.

    # -- wiring (performed by the Network builder) ---------------------------

    def bind_router(self, router: "Router") -> None:
        """Attach the downstream router; arrivals use the fused forwarder."""
        self.dst_router = router
        self._arrive_cb = MethodType(_do_arrive_router, self)

    def bind_nic(self, nic: "Nic") -> None:
        """Attach the downstream NIC; arrivals use the fused ejector."""
        self.dst_nic = nic
        self._arrive_cb = MethodType(_do_arrive_nic, self)

    # -- delegators ----------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        _do_enqueue(self, packet)

    def return_credits(self, flits: int) -> None:
        _do_return_credits(self, flits)

    def _settle_credits(self, now: int) -> None:
        _do_settle_credits(self, now)

    def _credit_wake(self) -> None:
        _do_credit_wake(self)

    def _retry(self) -> None:
        _do_retry(self)

    def _try_send(self) -> None:
        _do_try_send(self)

    def _send_head(self, borrow: bool) -> None:
        _do_send_head(self, borrow)

    def _transmit_done(self, packet: Packet) -> None:
        _do_transmit_done(self, packet)
