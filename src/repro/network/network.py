"""The complete simulated system: topology + routers + links + NICs + routing.

:class:`Network` is the main entry point of the substrate layer.  It wires an
Aries-like Dragonfly out of :class:`~repro.network.router.Router`,
:class:`~repro.network.link.Link` and :class:`~repro.network.nic.Nic`
instances, installs the UGAL path selector, and offers a small API used by
the MPI layer and the experiments:

* :meth:`send` — submit an application message (RDMA PUT/GET) with a given
  per-message routing mode;
* :meth:`run` / :meth:`run_until_idle` — advance the discrete-event clock;
* counter access per NIC and per router (the simulated PAPI).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.model.base import NetworkModel
from repro.network.link import Link
from repro.network.nic import Nic
from repro.network.packet import Message, Packet, RdmaOp
from repro.network.router import Router
from repro.routing.modes import RoutingMode
from repro.routing.ugal import BatchUgalSelector, UgalSelector
from repro.sim.engine import Simulator, make_simulator
from repro.sim.rng import RandomStreams
from repro.telemetry.core import TELEMETRY
from repro.telemetry.probes import PROBES, ProbeRecorder, ProbeSampler
from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.geometry import router_of_node


class FlitLinkSampler(ProbeSampler):
    """Fixed-interval link/NIC probe for the flit backend (all engines).

    Polled via the simulator's ``probe_hook`` slot, so it works identically
    under the reference, calendar and batch engines.  It only *reads* link
    state — through :meth:`Link.occupancy_view`, which never settles
    credits — and never schedules events, keeping traced and untraced
    event streams (and payloads) byte-identical.

    Series schema (shared verbatim with the flow backend's sampler):
    ``occupancy``/``queue``/``stalled_links`` per link class
    (local/global/injection) per group, plus the paper's NIC counter
    surface — ``nic_stall_ratio`` (s) and ``nic_latency`` (L) — per group.
    """

    __slots__ = ("_link_buckets", "_nic_buckets")

    def __init__(self, recorder: ProbeRecorder, network: "Network"):
        super().__init__(recorder)
        recorder.backend = "flit"
        topology = network.topology
        group_of = topology.group_of_router
        link_buckets: Dict[Tuple[str, int], list] = {}
        for (src, dst), link in network._links.items():
            kind = topology.link_kind(src, dst)
            cls = "global" if kind == LinkKind.BLUE else "local"
            link_buckets.setdefault((cls, group_of[src]), []).append(link)
        for node, link in enumerate(network._injection_links):
            group = group_of[network._router_of_node[node]]
            link_buckets.setdefault(("injection", group), []).append(link)
        self._link_buckets = sorted(link_buckets.items())
        nic_buckets: Dict[int, list] = {}
        for nic in network.nics:
            nic_buckets.setdefault(group_of[nic.router_id], []).append(nic)
        self._nic_buckets = sorted(nic_buckets.items())

    def collect(self, now: int) -> None:
        recorder = self.recorder
        for (cls, group), links in self._link_buckets:
            occupancy = 0
            queued = 0
            stalled = 0
            for link in links:
                occupancy += link.occupancy_view(now)
                queued += link.queue_flits
                if link._stalled_since is not None:
                    stalled += 1
            n = len(links)
            recorder.series_for("occupancy", cls, group).add(now, occupancy / n)
            recorder.series_for("queue", cls, group).add(now, queued / n)
            recorder.series_for("stalled_links", cls, group).add(now, stalled)
        for group, nics in self._nic_buckets:
            flits = stalled_cycles = responses = 0
            cum_latency = 0.0
            for nic in nics:
                counters = nic.counters
                flits += counters.request_flits
                stalled_cycles += counters.request_flits_stalled_cycles
                cum_latency += counters.request_packets_cum_latency
                responses += counters.responses_received
            stall_ratio = stalled_cycles / flits if flits else 0.0
            latency = cum_latency / responses if responses else 0.0
            recorder.series_for("nic_stall_ratio", "nic", group).add(
                now, stall_ratio
            )
            recorder.series_for("nic_latency", "nic", group).add(now, latency)


class Network(NetworkModel):
    """A fully wired Dragonfly system ready to carry traffic.

    This is the cycle-accurate **flit-level** backend of the
    :class:`~repro.model.base.NetworkModel` protocol: packets move flit by
    flit through credit-flow-controlled links, so phantom congestion,
    back-pressure stalls and adaptive-routing dynamics emerge from the
    mechanics rather than a closed-form model.
    """

    backend_name = "flit"

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        sim: Optional[Simulator] = None,
        streams: Optional[RandomStreams] = None,
    ):
        self.config = config or SimulationConfig()
        self.sim = sim or make_simulator()
        self.streams = streams or RandomStreams(self.config.seed)
        self.topology = DragonflyTopology(self.config.topology)

        # The batch engine swaps the *network plane*, not the scheduler:
        # links become BatchLinks running the fused handlers, and the
        # selector gains the fused probe + vectorized candidate scorer.
        # Semantics (and therefore results) are identical per the parity
        # contract in repro.network.batch_core.
        self._batch = getattr(self.sim, "engine_kind", None) == "batch"
        if self._batch:
            from repro.network.batch_core import BatchLink

            self._link_cls = BatchLink
            selector_cls = BatchUgalSelector
        else:
            self._link_cls = Link
            selector_cls = UgalSelector

        self.routers: List[Router] = [
            Router(rid) for rid in range(self.topology.num_routers)
        ]
        self.nics: List[Nic] = []
        #: Directed router-to-router links, keyed by (src_router, dst_router).
        self._links: Dict[Tuple[int, int], Link] = {}
        self._injection_links: List[Link] = []
        self._ejection_links: List[Link] = []

        self._build_fabric()
        self._build_hosts()

        self.selector = selector_cls(
            self.topology,
            self.config.routing,
            self.streams.stream("routing"),
            link_probe=self.link,
            links=self._links,
        )
        #: node id -> router id, precomputed for the per-packet routing hook.
        self._router_of_node: List[int] = [
            router_of_node(node, self.config.topology)
            for node in range(self.topology.num_nodes)
        ]
        #: Messages completed (delivered), for experiment bookkeeping.
        self.delivered_messages: int = 0

        # Install the link probe last so it sees the fully wired system.
        # When probes are off the hook stays None and the engines pay one
        # ``is not None`` check per event (reference) or bucket (calendar).
        if PROBES.enabled and PROBES.recorder is not None:
            self.sim.probe_hook = FlitLinkSampler(PROBES.recorder, self)

    # -- construction --------------------------------------------------------

    @staticmethod
    def _buffer_for(base_flits: int, latency: int) -> int:
        """Input-buffer depth covering at least the credit round trip.

        Real Aries tiles provision buffering beyond the bandwidth-delay
        product so that a single uncongested flow never stalls on credits;
        without this, optical links (300-cycle latency) would be throttled to
        a fraction of their bandwidth even on an idle network.
        """
        return max(base_flits, 2 * latency + 16)

    def _build_fabric(self) -> None:
        topo_cfg = self.config.topology
        # Runs with no credit-information delay answer every far-end probe
        # from the live credit count, so the per-update occupancy history
        # would be pure overhead.
        track_occupancy = self.config.routing.credit_info_delay > 0
        for link_id in self.topology.all_links():
            kind = link_id.kind
            latency = self.topology.link_latency(kind)
            link = self._link_cls(
                sim=self.sim,
                name=link_id.label(topo_cfg),
                latency=latency,
                width=self.topology.link_width(kind),
                buffer_flits=self._buffer_for(topo_cfg.router_buffer_flits, latency),
                cycles_per_flit=topo_cfg.fabric_cycles_per_flit,
                deliver=self.routers[link_id.dst].packet_arrived,
                track_occupancy=track_occupancy,
            )
            if self._batch:
                link.bind_router(self.routers[link_id.dst])
            self._links[(link_id.src, link_id.dst)] = link
            self.routers[link_id.src].attach_output(link_id.dst, link)

    def _build_hosts(self) -> None:
        topo_cfg = self.config.topology
        nic_cfg = self.config.nic
        for node_id in range(self.topology.num_nodes):
            router_id = router_of_node(node_id, topo_cfg)
            router = self.routers[router_id]
            nic = Nic(node_id, router_id, self.sim, nic_cfg, self)
            # NIC -> router (injection) link; stalls here feed the NIC counter.
            injection = self._link_cls(
                sim=self.sim,
                name=f"nic{node_id}->r{router_id}",
                latency=topo_cfg.host_link_latency,
                width=1,
                buffer_flits=self._buffer_for(
                    topo_cfg.nic_buffer_flits, topo_cfg.host_link_latency
                ),
                cycles_per_flit=topo_cfg.cycles_per_flit,
                deliver=router.packet_arrived,
                measure_stalls=True,
                on_stall=nic.record_stall,
                # Routing only probes the delayed occupancy of *fabric*
                # links (the first hop of a candidate path), never the host
                # links, so their history would go unread.
                track_occupancy=False,
            )
            injection.on_transmit = self.assign_path
            # router -> NIC (ejection) link.
            ejection = self._link_cls(
                sim=self.sim,
                name=f"r{router_id}->nic{node_id}",
                latency=topo_cfg.host_link_latency,
                width=1,
                buffer_flits=self._buffer_for(
                    topo_cfg.nic_buffer_flits, topo_cfg.host_link_latency
                ),
                cycles_per_flit=topo_cfg.cycles_per_flit,
                deliver=nic.packet_ejected,
                track_occupancy=False,
            )
            if self._batch:
                injection.bind_router(router)
                ejection.bind_nic(nic)
            nic.injection_link = injection
            router.attach_ejection(node_id, ejection)
            self.nics.append(nic)
            self._injection_links.append(injection)
            self._ejection_links.append(ejection)

    # -- routing hook ----------------------------------------------------------

    def assign_path(self, packet: Packet) -> None:
        """Choose the packet's path; called as its first flit leaves the NIC.

        Responses are small control packets; the hardware routes them
        adaptively as well, but their contribution to congestion is minor —
        they travel with the same mode as their request stream (pinned by
        ``tests/test_network.py::TestResponseRouting``).
        """
        if packet.path is not None:
            return
        routers = self._router_of_node
        decision = self.selector.select(
            routers[packet.src_node], routers[packet.dst_node],
            packet.message.routing_mode,
        )
        packet.path = decision.path
        packet.minimal = decision.minimal
        packet.hop_index = 0
        if not packet.is_response:
            message = packet.message
            if decision.minimal:
                message.minimal_packets += 1
            else:
                message.nonminimal_packets += 1

    # -- public API --------------------------------------------------------------

    def send(
        self,
        src_node: int,
        dst_node: int,
        size_bytes: int,
        routing_mode: RoutingMode = RoutingMode.ADAPTIVE_0,
        op: RdmaOp = RdmaOp.PUT,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_acked: Optional[Callable[[Message], None]] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Submit a message to the source NIC and return its handle."""
        if src_node == dst_node:
            raise ValueError("source and destination nodes must differ (use the host model for self-sends)")
        self._check_node(src_node)
        self._check_node(dst_node)

        def _count_delivery(message: Message) -> None:
            self.delivered_messages += 1
            if on_delivered is not None:
                on_delivered(message)

        message = Message(
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=size_bytes,
            routing_mode=routing_mode,
            nic_config=self.config.nic,
            op=op,
            on_delivered=_count_delivery,
            on_acked=on_acked,
            tag=tag,
        )
        self.nics[src_node].submit(message)
        return message

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self.nics):
            raise ValueError(
                f"node {node_id} out of range (system has {len(self.nics)} nodes)"
            )

    # -- access helpers -----------------------------------------------------------

    def nic(self, node_id: int) -> Nic:
        """The NIC attached to a node."""
        self._check_node(node_id)
        return self.nics[node_id]

    def router(self, router_id: int) -> Router:
        """A router by flat id."""
        return self.routers[router_id]

    def link(self, src_router: int, dst_router: int) -> Link:
        """The directed fabric link between two adjacent routers."""
        try:
            return self._links[(src_router, dst_router)]
        except KeyError:
            raise KeyError(
                f"no fabric link between routers {src_router} and {dst_router}"
            ) from None

    def injection_link(self, node_id: int) -> Link:
        """The NIC→router link of a node (where NIC stalls are measured)."""
        self._check_node(node_id)
        return self._injection_links[node_id]

    def fabric_links(self) -> Iterable[Link]:
        """All router-to-router links."""
        return self._links.values()

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes in the system."""
        return len(self.nics)

    @property
    def num_routers(self) -> int:
        """Number of routers in the system."""
        return len(self.routers)

    # -- execution -----------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Advance the simulation (see :meth:`repro.sim.engine.Simulator.run`)."""
        if not TELEMETRY.enabled:
            return self.sim.run(until=until, max_events=max_events)
        flits_before = self.total_flits_traversed()
        credits_before = self.total_credits_returned()
        with TELEMETRY.tracer.span("flit.run", cat="flit") as sp:
            result = self.sim.run(until=until, max_events=max_events)
            sp.add(flits=self.total_flits_traversed() - flits_before,
                   credits=self.total_credits_returned() - credits_before)
        return result

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until every queued event has been processed."""
        if not TELEMETRY.enabled:
            return self.sim.run_until_idle(max_events=max_events)
        flits_before = self.total_flits_traversed()
        credits_before = self.total_credits_returned()
        with TELEMETRY.tracer.span("flit.run", cat="flit") as sp:
            result = self.sim.run_until_idle(max_events=max_events)
            sp.add(flits=self.total_flits_traversed() - flits_before,
                   credits=self.total_credits_returned() - credits_before)
        return result

    # -- system-wide statistics -------------------------------------------------------

    def total_flits_traversed(self, router_ids: Optional[Iterable[int]] = None) -> int:
        """Flits observed by the (selected) routers — the Table 1 'incoming flits'."""
        routers = (
            self.routers
            if router_ids is None
            else [self.routers[r] for r in router_ids]
        )
        return sum(r.flits_traversed for r in routers)

    def total_credits_returned(self) -> int:
        """Credits returned across every link (fabric + injection + ejection)."""
        fabric = sum(link.credits_returned for link in self._links.values())
        hosts = sum(
            link.credits_returned
            for link in (*self._injection_links, *self._ejection_links)
        )
        return fabric + hosts

    def total_deadlock_reliefs(self) -> int:
        """Escape-valve activations across all links (should stay at/near zero)."""
        fabric = sum(link.deadlock_reliefs for link in self._links.values())
        hosts = sum(
            link.deadlock_reliefs
            for link in (*self._injection_links, *self._ejection_links)
        )
        return fabric + hosts

    def reset_counters(self) -> None:
        """Zero every NIC and router counter (a fresh measurement interval)."""
        for nic in self.nics:
            nic.counters.reset()
        for router in self.routers:
            router.flits_traversed = 0
            router.packets_traversed = 0
        for link in self._links.values():
            link.queue_wait_cycles = 0
            link.packets_forwarded = 0
            link.flits_forwarded = 0
            link.credits_returned = 0
        for link in (*self._injection_links, *self._ejection_links):
            link.queue_wait_cycles = 0
            link.packets_forwarded = 0
            link.flits_forwarded = 0
            link.credits_returned = 0
        self.selector.reset_statistics()
