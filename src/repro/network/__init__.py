"""Packet-level model of the Aries network.

The model reproduces the mechanisms that matter for the paper's analysis:

* NICs packetize application messages into 64-byte request packets (1 header
  flit + up to 4 payload flits for PUTs), inject one flit per cycle, keep at
  most 1024 packets outstanding, and maintain the four counters of
  Section 2.3 (request flits, request-flit stall cycles, request packets,
  cumulative request→response latency);
* routers forward packets hop by hop along a source-selected path, with
  finite per-port input buffers and credit-based flow control, so congestion
  anywhere on a path back-pressures all the way to the sending NIC;
* links serialize packets at one flit per cycle (per tile) and add the
  electrical/optical wire latency;
* every buffer-occupancy change is recorded with a timestamp so routing can
  consume a *delayed* view of far-end congestion — the ingredient of phantom
  congestion (Section 2.2).
"""

from repro.network.packet import Message, Packet, RdmaOp
from repro.network.counters import NicCounters, CounterSnapshot
from repro.network.link import Link
from repro.network.router import Router
from repro.network.nic import Nic
from repro.network.network import Network

__all__ = [
    "Message",
    "Packet",
    "RdmaOp",
    "NicCounters",
    "CounterSnapshot",
    "Link",
    "Router",
    "Nic",
    "Network",
]
