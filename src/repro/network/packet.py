"""Messages, request packets and response packets.

An application *message* (an RDMA PUT or GET issued by the host) is split by
the NIC into fixed-size request packets; every request packet is acknowledged
by a response packet travelling in the opposite direction (Section 2.1).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Callable, Optional, Tuple

from repro.config import NicConfig

_message_ids = itertools.count()
_packet_ids = itertools.count()


class RdmaOp(str, Enum):
    """Type of RDMA operation carried by a message."""

    #: Data travels in request packets (5 request flits per 64-byte packet).
    PUT = "put"
    #: Data travels in response packets (1 request flit per packet).
    GET = "get"


def packetize(size_bytes: int, op: RdmaOp, nic: NicConfig) -> Tuple[int, int, int]:
    """Return ``(packets, request_flits, response_flits)`` for a message.

    Follows Section 2.1: one request packet per 64 payload bytes; a PUT
    request packet is one header flit plus one payload flit per 16 bytes of
    payload (up to four); a GET request packet is a single flit and the data
    comes back in the response.
    """
    if size_bytes < 0:
        raise ValueError("message size must be non-negative")
    if size_bytes == 0:
        return 1, nic.header_flits, nic.response_flits
    packets = -(-size_bytes // nic.packet_payload_bytes)
    if op == RdmaOp.GET:
        request_flits = packets * nic.header_flits
        # data returns in responses: one payload flit per 16 bytes plus header
        response_flits = packets * nic.header_flits + -(-size_bytes // nic.flit_payload_bytes)
        return packets, request_flits, response_flits
    # PUT: full packets carry header + max payload flits, the last packet may
    # carry fewer payload flits.
    full_packets, tail_bytes = divmod(size_bytes, nic.packet_payload_bytes)
    request_flits = full_packets * (nic.header_flits + nic.max_payload_flits)
    if tail_bytes:
        request_flits += nic.header_flits + -(-tail_bytes // nic.flit_payload_bytes)
    response_flits = packets * nic.response_flits
    return packets, request_flits, response_flits


class Message:
    """An application message handed to the sending NIC.

    Parameters
    ----------
    src_node, dst_node:
        Flat node ids of the communicating endpoints.
    size_bytes:
        Application payload size.
    routing_mode:
        The per-message routing mode (the quantity the paper's
        application-aware library controls).
    op:
        PUT or GET semantics, affecting packetization.
    on_delivered:
        Callback invoked (once) when the last request packet has been
        delivered to the destination NIC.
    on_acked:
        Callback invoked (once) when the last response has returned to the
        sending NIC.
    tag:
        Opaque identifier used by the MPI layer for matching.
    """

    __slots__ = (
        "id",
        "src_node",
        "dst_node",
        "size_bytes",
        "routing_mode",
        "op",
        "tag",
        "on_delivered",
        "on_acked",
        "num_packets",
        "request_flits",
        "response_flits",
        "full_packets",
        "req_flits_full",
        "req_flits_tail",
        "resp_flits_full",
        "resp_flits_tail",
        "packets_injected",
        "packets_delivered",
        "packets_acked",
        "submit_time",
        "first_injection_time",
        "delivered_time",
        "acked_time",
        "minimal_packets",
        "nonminimal_packets",
    )

    def __init__(
        self,
        src_node: int,
        dst_node: int,
        size_bytes: int,
        routing_mode,
        nic_config: NicConfig,
        op: RdmaOp = RdmaOp.PUT,
        on_delivered: Optional[Callable[["Message"], None]] = None,
        on_acked: Optional[Callable[["Message"], None]] = None,
        tag: Optional[object] = None,
    ):
        self.id = next(_message_ids)
        self.src_node = src_node
        self.dst_node = dst_node
        self.size_bytes = size_bytes
        self.routing_mode = routing_mode
        self.op = op
        self.tag = tag
        self.on_delivered = on_delivered
        self.on_acked = on_acked
        packets, req_flits, resp_flits = packetize(size_bytes, op, nic_config)
        self.num_packets = packets
        self.request_flits = req_flits
        self.response_flits = resp_flits
        # Per-packet flit layout, precomputed so the NIC's injection hot path
        # is a compare and an attribute read instead of division per packet:
        # packets with ``index < full_packets`` carry a full payload, the
        # remaining (at most one) packet carries the tail.
        nic = nic_config
        if size_bytes == 0:
            full_packets = 0
            payload_full = payload_tail = 0
        else:
            full_packets = size_bytes // nic.packet_payload_bytes
            payload_full = nic.max_payload_flits
            tail_bytes = size_bytes - full_packets * nic.packet_payload_bytes
            if tail_bytes <= 0:
                payload_tail = nic.max_payload_flits
            else:
                payload_tail = -(-tail_bytes // nic.flit_payload_bytes)
        self.full_packets = full_packets
        if op == RdmaOp.GET:
            # GET requests are a bare header; the data rides the response.
            self.req_flits_full = self.req_flits_tail = nic.header_flits
            self.resp_flits_full = nic.header_flits + payload_full
            self.resp_flits_tail = nic.header_flits + payload_tail
        else:
            self.req_flits_full = nic.header_flits + payload_full
            self.req_flits_tail = nic.header_flits + payload_tail
            self.resp_flits_full = self.resp_flits_tail = nic.response_flits
        self.packets_injected = 0
        self.packets_delivered = 0
        self.packets_acked = 0
        self.submit_time: Optional[int] = None
        self.first_injection_time: Optional[int] = None
        self.delivered_time: Optional[int] = None
        self.acked_time: Optional[int] = None
        self.minimal_packets = 0
        self.nonminimal_packets = 0

    @property
    def delivered(self) -> bool:
        """True once every request packet reached the destination NIC."""
        return self.packets_delivered >= self.num_packets

    @property
    def acked(self) -> bool:
        """True once every response returned to the sending NIC."""
        return self.packets_acked >= self.num_packets

    @property
    def transmission_time(self) -> Optional[int]:
        """T_msg of the paper: submit at the sender NIC → last flit delivered."""
        if self.delivered_time is None or self.submit_time is None:
            return None
        return self.delivered_time - self.submit_time

    def minimal_fraction(self) -> float:
        """Fraction of this message's packets that were routed minimally."""
        total = self.minimal_packets + self.nonminimal_packets
        if total == 0:
            return 1.0
        return self.minimal_packets / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.id} {self.src_node}->{self.dst_node} "
            f"{self.size_bytes}B {self.op.value} mode={self.routing_mode}>"
        )


class Packet:
    """A request or response packet travelling through the network."""

    __slots__ = (
        "id",
        "message",
        "src_node",
        "dst_node",
        "flits",
        "is_response",
        "path",
        "hop_index",
        "holding_link",
        "inject_start_time",
        "request_inject_start",
        "minimal",
        "index_in_message",
        "last_enqueue_time",
    )

    def __init__(
        self,
        message: Message,
        src_node: int,
        dst_node: int,
        flits: int,
        is_response: bool = False,
        index_in_message: int = 0,
    ):
        self.id = next(_packet_ids)
        self.message = message
        self.src_node = src_node
        self.dst_node = dst_node
        self.flits = flits
        self.is_response = is_response
        #: Sequence of router ids; chosen by the routing policy at injection.
        self.path: Optional[Tuple[int, ...]] = None
        self.hop_index = 0
        #: The link whose downstream buffer currently holds this packet.
        self.holding_link = None
        #: When the first flit left the NIC (after any back-pressure stall).
        self.inject_start_time: Optional[int] = None
        #: For responses: the request's injection start, to compute L.
        self.request_inject_start: Optional[int] = None
        self.minimal = True
        self.index_in_message = index_in_message
        #: When the packet was queued at its current link (for wait counters).
        self.last_enqueue_time = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "resp" if self.is_response else "req"
        return f"<Packet {self.id} {kind} {self.src_node}->{self.dst_node} flits={self.flits}>"
