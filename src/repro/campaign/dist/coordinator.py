"""The distributed coordinator: lease shards, merge streams, survive deaths.

The coordinator owns the campaign: it resolves cache hits against the
artifact store (so a killed campaign resumes from whatever the store
already holds), cuts the misses into balanced shards
(:class:`~repro.campaign.dist.shard.ShardPlanner`), leases shards to
workers over the wire protocol and merges every streamed result into the
store the moment it arrives — journaled, atomically indexed and deduped by
spec hash, so two deliveries of the same cell (a re-leased shard whose
original worker was merely slow, not dead) can never double-write.

Failure model
-------------

Workers prove liveness through traffic: results, shard-done frames and
background heartbeats all refresh a lease.  A lease that goes silent for
``lease_timeout_s`` — or whose connection drops — is revoked: the shard's
*unfinished* cells are re-queued as a new shard (finished cells were
already merged) and handed to the next free worker.  A shard abandoned
``max_leases`` times stops being retried and its remaining cells become
failed records, so one poisonous cell cannot wedge the campaign.  Locally
spawned workers are respawned (within a budget) when they die with work
still pending.
"""

from __future__ import annotations

import pathlib
import queue
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.campaign.dist.protocol import Channel, ProtocolError
from repro.campaign.dist.shard import Shard, ShardPlanner
from repro.campaign.dist.worker import DEFAULT_HEARTBEAT_S
from repro.campaign.executor import CampaignResult, ProgressFn, RunRecord, run_audits
from repro.campaign.plan import CampaignPlan, RunSpec
from repro.campaign.store import ArtifactStore
from repro.telemetry.core import TELEMETRY, TELEMETRY_ENV_VAR
from repro.telemetry.log import get_logger, log_event

import logging

TRANSPORTS = ("local", "socket")


@dataclass(frozen=True)
class DistOptions:
    """Knobs of one distributed execution."""

    #: Worker processes the coordinator spawns (socket transport also
    #: accepts external ``repro campaign worker --connect`` processes on
    #: top of these; ``workers=0`` is valid there and waits for them).
    workers: int = 2
    transport: str = "local"
    #: Socket transport: listen address (port 0 picks an ephemeral port).
    bind_host: str = "127.0.0.1"
    bind_port: int = 0
    #: Revoke a lease after this much silence (no result/heartbeat).
    lease_timeout_s: float = 30.0
    heartbeat_s: float = DEFAULT_HEARTBEAT_S
    shards_per_worker: int = 4
    max_shard_cells: int = 64
    #: Give up on a shard's remaining cells after this many leases.
    max_leases: int = 3
    #: Results a spawned worker buffers into one ``result_batch`` frame.
    #: 1 (the default) streams every cell the moment it finishes; raise it
    #: when cells are sub-millisecond and framing dominates the wire cost.
    batch_results: int = 1
    #: Module spawned workers import before serving (extra scenarios).
    preload: Optional[str] = None
    #: Extra environment for spawned workers (merged over the parent's).
    extra_env: Optional[Mapping[str, str]] = None
    #: Simulation engine spawned workers run the flit backend on
    #: (``None`` inherits the coordinator's environment).  Results are
    #: engine-independent — the engines are event-for-event equivalent —
    #: so this is a pure performance knob, but it must reach every worker
    #: or part of the fleet silently runs slower than asked.
    sim_engine: Optional[str] = None
    #: Enable network probes in spawned workers (same inheritance channel
    #: as telemetry: probes activate per-process at import time, so the
    #: request must travel through the worker environment).
    probes: bool = False
    #: Probe sampling interval in sim cycles (``None`` keeps the default).
    probe_interval: Optional[int] = None
    #: Routing-decision audit sample rate in [0, 1] (``None`` = default).
    probe_decision_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r} (choose from {TRANSPORTS})"
            )
        if self.sim_engine is not None:
            from repro.sim.engine import SIM_ENGINE_KINDS

            if self.sim_engine not in SIM_ENGINE_KINDS:
                raise ValueError(
                    f"unknown sim engine {self.sim_engine!r} "
                    f"(choose from {SIM_ENGINE_KINDS})"
                )
        if self.workers < 0 or (self.transport == "local" and self.workers < 1):
            raise ValueError("workers must be >= 1 (>= 0 for socket transport)")
        if self.lease_timeout_s <= 0 or self.heartbeat_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.lease_timeout_s <= 2 * self.heartbeat_s:
            raise ValueError(
                "lease_timeout_s must exceed two heartbeat intervals, or every "
                "scheduling hiccup would look like a dead worker"
            )
        if self.max_leases < 1:
            raise ValueError("max_leases must be >= 1")
        if self.batch_results < 1:
            raise ValueError("batch_results must be >= 1")
        if self.probe_interval is not None and self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.probe_decision_rate is not None and not (
            0.0 <= self.probe_decision_rate <= 1.0
        ):
            raise ValueError("probe_decision_rate must be within [0, 1]")
        if (
            self.probe_interval is not None or self.probe_decision_rate is not None
        ) and not self.probes:
            raise ValueError("probe_interval/probe_decision_rate require probes=True")


@dataclass
class _Lease:
    shard: Shard
    remaining: Set[str]
    attempts: int
    last_seen: float
    #: Telemetry timeline of this lease (None when telemetry is disabled).
    timeline: Optional[Dict] = None


class _WorkerHandle:
    """Coordinator-side state of one connected worker."""

    _counter = 0

    def __init__(self, channel: Channel, proc: Optional[subprocess.Popen] = None) -> None:
        _WorkerHandle._counter += 1
        self.handle_id = _WorkerHandle._counter
        self.channel = channel
        self.proc = proc
        self.name = f"worker-{self.handle_id}"
        self.ready = False  # a hello frame arrived
        self.lease: Optional[_Lease] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


class Coordinator:
    """Runs one campaign plan over a fleet of shard-leasing workers."""

    def __init__(
        self,
        plan: CampaignPlan,
        store: Optional[ArtifactStore] = None,
        options: DistOptions = DistOptions(),
        progress: Optional[ProgressFn] = None,
        force: bool = False,
    ) -> None:
        for spec in plan:
            if spec.is_auto:
                raise ValueError(
                    f"spec {spec.label()} is unrouted — plan with a "
                    "BackendRouter before distributing"
                )
        self.plan = plan
        self.store = store
        self.options = options
        self.progress = progress
        self.force = force
        self._events: "queue.Queue[Tuple[str, _WorkerHandle, Optional[Dict]]]" = queue.Queue()
        self._handles: Dict[int, _WorkerHandle] = {}
        self._pending: List[Shard] = []
        self._attempts: Dict[int, int] = {}  # shard_id -> leases so far
        self._next_shard_id = 0
        self._records: List[Optional[RunRecord]] = [None] * len(plan)
        self._index_of = {spec.spec_hash(): i for i, spec in enumerate(plan)}
        self._outstanding: Set[str] = set()
        self._reported = 0
        self._spawned: List[subprocess.Popen] = []
        self._reaped: Set[int] = set()
        self._respawn_budget = options.workers * max(1, options.max_leases - 1)
        self._listener = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._log = get_logger("campaign.dist.coordinator")
        # Session telemetry: shard lease->first-result->done timelines,
        # heartbeat-gap distribution, revocation count, journal flush cost.
        self._telemetry_on = TELEMETRY.enabled
        self._timelines: List[Dict] = []
        self._heartbeat_gaps: List[float] = []
        self._revocations = 0
        self._worker_frames: List[Dict] = []
        if options.transport == "socket":
            import socket as socket_mod

            self._listener = socket_mod.socket(
                socket_mod.AF_INET, socket_mod.SOCK_STREAM
            )
            self._listener.setsockopt(
                socket_mod.SOL_SOCKET, socket_mod.SO_REUSEADDR, 1
            )
            self._listener.bind((options.bind_host, options.bind_port))
            self._listener.listen(16)

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) of the socket transport, else ``None``."""
        if self._listener is None:
            return None
        return self._listener.getsockname()[:2]

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of the workers this coordinator spawned (tests kill these)."""
        return [proc.pid for proc in self._spawned if proc.poll() is None]

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the plan; returns records in plan order, like the pool."""
        result = CampaignResult(plan=self.plan, workers=self.options.workers)
        misses = self._resolve_cached()
        try:
            if misses:
                planner = ShardPlanner(
                    shards_per_worker=self.options.shards_per_worker,
                    max_shard_cells=self.options.max_shard_cells,
                )
                shards = planner.partition(
                    self.plan, max(1, self.options.workers), specs=misses
                )
                self._pending = list(shards)
                self._next_shard_id = max(s.shard_id for s in shards) + 1
                for shard in shards:
                    self._attempts[shard.shard_id] = 0
                self._outstanding = {
                    spec.spec_hash() for shard in shards for spec in shard.specs
                }
                self._start_workers()
                self._event_loop()
        finally:
            self._shutdown()
        result.records = [r for r in self._records if r is not None]
        return result

    # -- cache resolution ------------------------------------------------------

    def _resolve_cached(self) -> List[RunSpec]:
        misses: List[RunSpec] = []
        for index, spec in enumerate(self.plan):
            if self.store is not None and not self.force and self.store.has(spec):
                payload = self.store.load(spec)
                report = payload.get("report", "") if isinstance(payload, dict) else ""
                self._records[index] = RunRecord(
                    spec=spec,
                    payload=payload,
                    report=report if isinstance(report, str) else "",
                    cached=True,
                )
            else:
                misses.append(spec)
        if self.progress is not None:
            for record in self._records:
                if record is not None:
                    self._reported += 1
                    self.progress(self._reported, len(self.plan), record)
        return misses

    # -- worker plumbing -------------------------------------------------------

    def _start_workers(self) -> None:
        if self.options.transport == "socket":
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True
            )
            self._accept_thread.start()
        for _ in range(self.options.workers):
            self._spawn_worker()

    def _worker_command(self) -> List[str]:
        command = [sys.executable, "-m", "repro.experiments.cli", "campaign", "worker"]
        if self.options.transport == "local":
            command.append("--stdio")
        else:
            host, port = self.address
            command.extend(["--connect", f"{host}:{port}"])
        command.extend(["--heartbeat", str(self.options.heartbeat_s), "--quiet"])
        if self.options.batch_results > 1:
            command.extend(["--batch-results", str(self.options.batch_results)])
        if self.options.preload:
            command.extend(["--preload", self.options.preload])
        return command

    def _worker_env(self) -> Dict[str, str]:
        import os

        env = dict(os.environ)
        env.update(self.options.extra_env or {})
        if self._telemetry_on:
            # Telemetry is enabled per-process at import time; spawned
            # workers inherit the request through the environment.
            env[TELEMETRY_ENV_VAR] = "1"
        if self.options.sim_engine is not None:
            # Same inheritance channel as telemetry: the worker reads the
            # engine from its environment when it builds each Network.
            from repro.sim.engine import SIM_ENGINE_ENV_VAR

            env[SIM_ENGINE_ENV_VAR] = self.options.sim_engine
        if self.options.probes:
            from repro.telemetry.probes import (
                PROBE_DECISION_RATE_ENV_VAR,
                PROBE_INTERVAL_ENV_VAR,
                PROBES_ENV_VAR,
            )

            env[PROBES_ENV_VAR] = "1"
            if self.options.probe_interval is not None:
                env[PROBE_INTERVAL_ENV_VAR] = str(self.options.probe_interval)
            if self.options.probe_decision_rate is not None:
                env[PROBE_DECISION_RATE_ENV_VAR] = str(
                    self.options.probe_decision_rate
                )
        # The worker runs `-m repro.experiments.cli`, so the child must be
        # able to import repro even when the parent got it from a path
        # pytest/pyproject injected into *this* process only (uninstalled
        # checkouts); prepending our own package root is harmless otherwise.
        import repro

        package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + os.pathsep + existing if existing else package_root
            )
        return env

    def _spawn_worker(self) -> None:
        stdio = self.options.transport == "local"
        # Workers inherit stderr: they log there by design (serve_stdio even
        # redirects stray stdout there), and swallowing it would make a
        # worker-death loop undiagnosable — the spawned fleet runs --quiet,
        # so only real failures (tracebacks, import errors) surface.
        proc = subprocess.Popen(
            self._worker_command(),
            stdin=subprocess.PIPE if stdio else subprocess.DEVNULL,
            stdout=subprocess.PIPE if stdio else subprocess.DEVNULL,
            stderr=None,
            env=self._worker_env(),
        )
        self._spawned.append(proc)
        log_event(self._log, "worker.spawned", pid=proc.pid,
                  transport=self.options.transport)
        if stdio:
            channel = Channel(proc.stdout, proc.stdin, name=f"pid-{proc.pid}")
            self._register(_WorkerHandle(channel, proc=proc))
        # Socket workers register themselves through the accept loop.

    def _register(self, handle: _WorkerHandle) -> None:
        self._handles[handle.handle_id] = handle
        threading.Thread(
            target=self._reader_loop, args=(handle,), daemon=True
        ).start()

    def _accept_loop(self) -> None:
        import socket as socket_mod

        while not self._stopping.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            try:
                conn.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
            except OSError:
                pass
            channel = Channel.over_socket(conn, name=f"{peer[0]}:{peer[1]}")
            handle = _WorkerHandle(channel)
            self._events.put(("accepted", handle, None))

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.channel.recv()
            except (ProtocolError, OSError, ValueError):
                message = None
            if message is None:
                self._events.put(("closed", handle, None))
                return
            self._events.put(("message", handle, message))

    # -- main loop -------------------------------------------------------------

    def _event_loop(self) -> None:
        tick = min(1.0, self.options.heartbeat_s)
        while self._outstanding:
            try:
                kind, handle, message = self._events.get(timeout=tick)
            except queue.Empty:
                self._check_leases()
                self._reap_spawned()
                self._check_starvation()
                continue
            if kind == "accepted":
                self._register(handle)
            elif kind == "closed":
                self._on_closed(handle)
            elif kind == "message":
                self._on_message(handle, message)
            self._reap_spawned()

    def _on_message(self, handle: _WorkerHandle, message: Dict) -> None:
        if handle.lease is not None:
            if self._telemetry_on:
                gap = time.monotonic() - handle.lease.last_seen
                if len(self._heartbeat_gaps) < 4096:
                    self._heartbeat_gaps.append(gap)
            handle.lease.last_seen = time.monotonic()
        kind = message["type"]
        if kind == "hello":
            handle.ready = True
            handle.name = str(message.get("worker", handle.name))
            self._assign_work(handle)
        elif kind == "heartbeat":
            pass  # the timestamp refresh above is the whole point
        elif kind == "result":
            self._merge_result(handle, message)
        elif kind == "result_batch":
            # Batched workers pack several result bodies into one frame;
            # each entry merges exactly like a standalone result frame.
            for entry in message["results"]:
                self._merge_result(handle, entry)
        elif kind == "shard_done":
            lease, handle.lease = handle.lease, None
            if lease is not None and lease.timeline is not None:
                lease.timeline["done_at"] = time.time()
            frame = message.get("telemetry")
            if isinstance(frame, dict) and len(self._worker_frames) < 256:
                self._worker_frames.append({"worker": handle.name, **frame})
            if lease is not None and lease.remaining:
                # The worker claims completion but cells are missing — a
                # protocol bug or a filtered duplicate; re-queue the rest.
                self._requeue(lease)
            self._assign_work(handle)

    def _merge_result(self, handle: _WorkerHandle, message: Dict) -> None:
        spec = RunSpec.from_wire(message["spec"])
        spec_hash = spec.spec_hash()
        if spec_hash not in self._outstanding:
            return  # duplicate from a revoked-but-alive lease; already merged
        telemetry = message.get("telemetry")
        probes = message.get("probes")
        record = RunRecord(
            spec=spec,
            payload=message.get("payload"),
            report=str(message.get("report", "")),
            elapsed_s=float(message.get("elapsed_s", 0.0)),
            error=str(message.get("error", "")),
            telemetry=telemetry if isinstance(telemetry, dict) else None,
            probes=probes if isinstance(probes, dict) else None,
        )
        self._finish(spec_hash, record)
        if handle.lease is not None:
            handle.lease.remaining.discard(spec_hash)
            timeline = handle.lease.timeline
            if timeline is not None and timeline["first_result_at"] is None:
                timeline["first_result_at"] = time.time()

    def _finish(self, spec_hash: str, record: RunRecord) -> None:
        self._outstanding.discard(spec_hash)
        self._records[self._index_of[spec_hash]] = record
        if record.ok and not record.cached and self.store is not None:
            # Journaled save: the result file lands now, the index update is
            # an O(1) append — flushed (atomically) once at shutdown.
            self.store.save(
                record.spec,
                record.payload,
                record.report,
                record.elapsed_s,
                defer_index=True,
                telemetry=record.telemetry,
                probes=record.probes,
            )
        if self.progress is not None:
            self._reported += 1
            self.progress(self._reported, len(self.plan), record)

    def _assign_work(self, handle: _WorkerHandle) -> None:
        if handle.lease is not None or not handle.ready:
            return
        if not self._pending:
            return  # stays idle; may be re-used when a lease is revoked
        shard = self._pending.pop(0)
        self._attempts[shard.shard_id] += 1
        timeline: Optional[Dict] = None
        if self._telemetry_on:
            timeline = {
                "shard": shard.shard_id,
                "worker": handle.name,
                "cells": len(shard.specs),
                "attempt": self._attempts[shard.shard_id],
                "leased_at": time.time(),
                "first_result_at": None,
                "done_at": None,
                "revoked": False,
            }
            self._timelines.append(timeline)
        handle.lease = _Lease(
            shard=shard,
            remaining={spec.spec_hash() for spec in shard.specs},
            attempts=self._attempts[shard.shard_id],
            last_seen=time.monotonic(),
            timeline=timeline,
        )
        log_event(self._log, "lease.assigned", shard=shard.shard_id,
                  worker=handle.name, cells=len(shard.specs),
                  attempt=self._attempts[shard.shard_id])
        try:
            handle.channel.send(
                {
                    "type": "lease",
                    "shard": shard.shard_id,
                    "specs": [spec.to_wire() for spec in shard.specs],
                }
            )
        except (OSError, ValueError):
            # The worker died between accept and lease; the reader loop will
            # deliver "closed", which re-queues via _on_closed.
            pass

    def _on_closed(self, handle: _WorkerHandle) -> None:
        self._handles.pop(handle.handle_id, None)
        handle.channel.close()
        lease, handle.lease = handle.lease, None
        if lease is not None:
            self._requeue(lease)
        self._redistribute()

    def _reap_spawned(self) -> None:
        """Respawn replacements for spawned workers that died with work left.

        Covers both transports uniformly: a dead stdio child *and* a dead
        TCP child (whose handle carries no process reference — it registered
        through the accept loop) show up here as an exited Popen.  Each
        death spends one unit of the respawn budget, which bounds the blast
        radius of a cell that reliably kills its worker.
        """
        if not self._outstanding:
            return
        for proc in list(self._spawned):
            if proc.poll() is None or proc.pid in self._reaped:
                continue
            self._reaped.add(proc.pid)
            if self._respawn_budget > 0:
                self._respawn_budget -= 1
                log_event(self._log, "worker.respawned", level=logging.WARNING,
                          dead_pid=proc.pid, budget_left=self._respawn_budget)
                self._spawn_worker()

    def _check_leases(self) -> None:
        now = time.monotonic()
        for handle in list(self._handles.values()):
            lease = handle.lease
            if lease is None:
                continue
            if now - lease.last_seen > self.options.lease_timeout_s:
                # Silent worker: revoke.  Closing the channel pops the reader
                # loop, which funnels into _on_closed for the actual re-queue
                # (and kills the process if it was ours, below).
                self._revocations += 1
                if lease.timeline is not None:
                    lease.timeline["revoked"] = True
                log_event(self._log, "lease.revoked", level=logging.WARNING,
                          shard=lease.shard.shard_id, worker=handle.name,
                          silent_s=round(now - lease.last_seen, 3))
                if handle.proc is not None and handle.proc.poll() is None:
                    handle.proc.kill()
                handle.channel.close()

    def _check_starvation(self) -> None:
        """Abandon work that can never run: no workers and no way to get any.

        The one mode that waits indefinitely is the deliberate listen-only
        fleet (``--transport socket --workers 0``): there, external workers
        are the *only* execution substrate and may attach at any time.  A
        run that asked for its own spawned fleet does not get that grace —
        once the fleet is gone and the respawn budget is spent, waiting for
        a hypothetical external worker would wedge the campaign forever,
        which is exactly what the abandon path exists to prevent.
        """
        if not self._pending or self._handles:
            return
        if self._respawn_budget > 0 and self.options.workers > 0:
            return  # a replacement spawn is still possible
        if self.options.transport == "socket" and self.options.workers == 0:
            return  # listen-only mode: external workers may still attach
        for shard in self._pending:
            self._abandon(shard, reason="no workers left and respawn budget spent")
        self._pending.clear()

    def _requeue(self, lease: _Lease) -> None:
        remaining = [
            spec for spec in lease.shard.specs if spec.spec_hash() in lease.remaining
        ]
        remaining = [
            spec for spec in remaining if spec.spec_hash() in self._outstanding
        ]
        if not remaining:
            return
        shard = Shard(
            shard_id=self._next_shard_id,
            specs=tuple(remaining),
            est_work=lease.shard.est_work,
        )
        self._next_shard_id += 1
        self._attempts[shard.shard_id] = lease.attempts
        if lease.attempts >= self.options.max_leases:
            self._abandon(
                shard,
                reason=f"abandoned after {lease.attempts} revoked lease(s)",
            )
            return
        self._pending.append(shard)
        log_event(self._log, "shard.requeued", shard=shard.shard_id,
                  cells=len(shard.specs), attempts=lease.attempts)
        self._redistribute()

    def _redistribute(self) -> None:
        for handle in list(self._handles.values()):
            if not self._pending:
                break
            self._assign_work(handle)

    def _abandon(self, shard: Shard, reason: str) -> None:
        log_event(self._log, "shard.abandoned", level=logging.WARNING,
                  shard=shard.shard_id, cells=len(shard.specs), reason=reason)
        for spec in shard.specs:
            spec_hash = spec.spec_hash()
            if spec_hash not in self._outstanding:
                continue
            self._finish(
                spec_hash,
                RunRecord(
                    spec=spec,
                    error=f"shard {shard.shard_id} {reason} — worker keeps "
                    "dying on these cells or no worker ever connected",
                ),
            )

    # -- teardown --------------------------------------------------------------

    def _shutdown(self) -> None:
        self._stopping.set()
        for handle in list(self._handles.values()):
            try:
                handle.channel.send({"type": "shutdown"})
            except (OSError, ValueError):
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._spawned:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        for handle in list(self._handles.values()):
            handle.channel.close()
        self._handles.clear()
        if self.store is not None:
            flush_t0 = time.perf_counter()
            self.store.flush_journal()
            flush_s = time.perf_counter() - flush_t0
            log_event(self._log, "journal.flushed",
                      flush_s=round(flush_s, 6))
            if self._telemetry_on and self._timelines:
                gaps = self._heartbeat_gaps
                self.store.save_session_telemetry(
                    {
                        "kind": "dist",
                        "transport": self.options.transport,
                        "workers": self.options.workers,
                        "shards": self._timelines,
                        "revocations": self._revocations,
                        "journal_flush_s": round(flush_s, 6),
                        "heartbeat_gaps": {
                            "count": len(gaps),
                            "max_s": round(max(gaps), 6) if gaps else 0.0,
                            "mean_s": round(sum(gaps) / len(gaps), 6) if gaps else 0.0,
                        },
                        "worker_frames": self._worker_frames,
                    }
                )


def run_distributed(
    plan: CampaignPlan,
    store: Optional[ArtifactStore] = None,
    options: DistOptions = DistOptions(),
    progress: Optional[ProgressFn] = None,
    force: bool = False,
    audit_fraction: float = 0.0,
) -> CampaignResult:
    """Execute a plan on the distributed coordinator/worker topology.

    The drop-in sibling of :func:`repro.campaign.executor.execute_plan`:
    same store-as-cache semantics, same plan-ordered records, same audit
    post-pass (audits stay serial in the coordinator process — they are a
    small high-fidelity sample by design).
    """
    coordinator = Coordinator(
        plan, store=store, options=options, progress=progress, force=force
    )
    result = coordinator.run()
    if audit_fraction > 0.0:
        run_audits(plan, result, store, audit_fraction, force=force)
    return result
