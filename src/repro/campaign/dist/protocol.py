"""Wire protocol of the distributed executor: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding one message object.  The framing is transport
agnostic — the same :class:`Channel` runs over a TCP socket (cross-host
workers) or over a subprocess's stdin/stdout pipes (the ``local``
transport) — and deliberately boring: every message is a flat dict with a
``"type"`` key, so the protocol can be watched with ``tcpdump``/``strace``
and extended without versioned binary schemas.

Message vocabulary (all coordinator/worker traffic):

================  =========  =================================================
type              direction  meaning
================  =========  =================================================
``hello``         w -> c     worker announces itself (name, pid, host)
``lease``         c -> w     a shard to execute: id + serialized specs
``result``        w -> c     one finished cell (payload/report/elapsed/error)
``result_batch``  w -> c     several finished cells in one frame: a
                             ``results`` list whose entries are ``result``
                             bodies (sans ``type``/``shard``) — sent by
                             workers running with ``--batch-results N > 1``
``shard_done``    w -> c     every cell of the leased shard was streamed back
``heartbeat``     w -> c     liveness while executing a long cell
``shutdown``      c -> w     no more work; the worker exits its serve loop
================  =========  =================================================

When telemetry is enabled (``REPRO_TELEMETRY``), ``result`` frames carry an
optional ``telemetry`` dict (the cell's span/phase snapshot, merged by the
coordinator into the store's index entry) and ``shard_done`` frames an
optional worker-process aggregate under the same key.  Both fields are
additive: receivers that predate them ignore unknown keys, so mixed-version
fleets interoperate.

Run specs travel as their wire form (:meth:`repro.campaign.plan.
RunSpec.to_wire`), so a worker needs nothing but the scenario registry to
reconstruct and execute them.
"""

from __future__ import annotations

import json
import struct
import threading
from typing import BinaryIO, Dict, Optional

#: Frame header: 4-byte big-endian payload length.
_HEADER = struct.Struct(">I")

#: Refuse frames above this size — a corrupted length prefix must not make
#: the receiver allocate gigabytes.  Result payloads are JSON metric dicts;
#: 64 MiB is orders of magnitude above any real campaign cell.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame or an out-of-protocol message."""


def encode_frame(message: Dict) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


class Channel:
    """A duplex message channel over a pair of binary streams.

    ``send`` is thread-safe (the worker's heartbeat thread and its result
    stream share one channel); ``recv`` is meant for a single reader.  A
    clean end-of-stream returns ``None`` from :meth:`recv`; a stream that
    dies mid-frame (SIGKILLed peer) raises :class:`ProtocolError`, which
    callers treat exactly like a disconnect.
    """

    def __init__(self, reader: BinaryIO, writer: BinaryIO, name: str = "peer") -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = threading.Lock()
        self._closed = False
        self.name = name

    @staticmethod
    def over_socket(sock, name: str = "peer") -> "Channel":
        """A channel over a connected TCP socket (one makefile per side)."""
        return Channel(
            sock.makefile("rb"), sock.makefile("wb", buffering=0), name=name
        )

    def send(self, message: Dict) -> None:
        """Send one message; raises ``OSError``/``ValueError`` on a dead peer."""
        frame = encode_frame(message)
        with self._send_lock:
            self._writer.write(frame)
            self._writer.flush()

    def recv(self) -> Optional[Dict]:
        """Receive the next message, or ``None`` on clean end-of-stream."""
        header = self._read_exact(_HEADER.size, allow_eof=True)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds {MAX_FRAME_BYTES} — corrupt stream?"
            )
        body = self._read_exact(length, allow_eof=False)
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError(f"message without a type: {message!r}")
        return message

    def _read_exact(self, count: int, allow_eof: bool) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._reader.read(remaining)
            if not chunk:
                if allow_eof and remaining == count:
                    return None
                raise ProtocolError(
                    f"stream from {self.name} ended mid-frame "
                    f"({count - remaining}/{count} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        """Close both streams (idempotent, swallows errors on dead pipes)."""
        if self._closed:
            return
        self._closed = True
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except OSError:
                pass
