"""Shard planning: partition a campaign plan into balanced work units.

A *shard* is the lease granularity of the distributed executor: the
coordinator hands whole shards to workers and re-leases whatever part of a
shard a dead worker had not streamed back.  Shards should therefore be

* **balanced** — a worker stuck with the one expensive cell while the
  others idle wastes the fleet, so cells are packed by their PR-4 cost
  estimates (longest-processing-time greedy), and
* **plentiful** — more shards than workers keeps the tail short and bounds
  how much work one worker death re-executes, without going all the way to
  per-cell leases (whose round trips would dominate cheap smoke cells).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.plan import CampaignPlan, RunSpec


@dataclass(frozen=True)
class Shard:
    """One leasable unit of work: an ordered slice of the plan's cells."""

    shard_id: int
    specs: Tuple[RunSpec, ...]
    #: Estimated total work (abstract units; cell count when no estimates).
    est_work: float = 0.0

    def __len__(self) -> int:
        return len(self.specs)


@dataclass(frozen=True)
class ShardPlanner:
    """Partitions cells into balanced shards by estimated work.

    ``shards_per_worker`` controls the lease granularity (see the module
    docstring); ``max_shard_cells`` additionally caps a shard's size so a
    huge uniform grid at few workers still re-leases in bounded pieces.
    """

    shards_per_worker: int = 4
    max_shard_cells: int = 64

    def __post_init__(self) -> None:
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if self.max_shard_cells < 1:
            raise ValueError("max_shard_cells must be >= 1")

    def shard_count(self, cells: int, workers: int) -> int:
        """How many shards to cut ``cells`` into for ``workers`` workers."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        wanted = max(
            workers * self.shards_per_worker,
            -(-cells // self.max_shard_cells),  # ceil division
        )
        return max(1, min(cells, wanted))

    def partition(
        self,
        plan: CampaignPlan,
        workers: int,
        specs: Optional[Sequence[RunSpec]] = None,
    ) -> List[Shard]:
        """Cut the plan (or the given subset of its specs) into shards.

        Work estimates come from the plan's cost annotations when present
        (``plan.costs``, parallel to ``plan.specs``); un-annotated plans
        fall back to one unit per cell, which degrades LPT to round-robin
        by size — still balanced for uniform grids.  The packing is
        deterministic: greedy longest-first into the least-loaded shard,
        ties broken by shard id, and each shard keeps its cells in plan
        order so progress output stays readable.
        """
        chosen = list(plan.specs if specs is None else specs)
        if not chosen:
            return []
        work_by_spec: Dict[RunSpec, float] = {}
        if plan.costs:
            work_by_spec = {cell.spec: cell.work for cell in plan.costs}
        order = {spec: index for index, spec in enumerate(plan.specs)}
        count = self.shard_count(len(chosen), workers)

        # LPT greedy: heaviest cell first onto the least-loaded shard.
        weighted = sorted(
            enumerate(chosen),
            key=lambda item: (-work_by_spec.get(item[1], 1.0), item[0]),
        )
        heap: List[Tuple[float, int]] = [(0.0, shard_id) for shard_id in range(count)]
        heapq.heapify(heap)
        members: List[List[int]] = [[] for _ in range(count)]
        loads = [0.0] * count
        for original_index, spec in weighted:
            load, shard_id = heapq.heappop(heap)
            members[shard_id].append(original_index)
            loads[shard_id] = load + work_by_spec.get(spec, 1.0)
            heapq.heappush(heap, (loads[shard_id], shard_id))

        shards: List[Shard] = []
        for shard_id, indices in enumerate(members):
            if not indices:
                continue
            cells = sorted(
                (chosen[index] for index in indices),
                key=lambda spec: order.get(spec, 0),
            )
            shards.append(
                Shard(
                    shard_id=shard_id,
                    specs=tuple(cells),
                    est_work=loads[shard_id],
                )
            )
        # Renumber densely so shard ids are contiguous even after empties.
        return [
            Shard(shard_id=i, specs=shard.specs, est_work=shard.est_work)
            for i, shard in enumerate(shards)
        ]
