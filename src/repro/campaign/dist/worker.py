"""The distributed worker: lease shards, execute cells, stream results.

A worker is a plain process (same host or another one) running
:func:`serve_channel` over any :class:`~repro.campaign.dist.protocol.
Channel`.  It owns no store and no plan — it announces itself, receives
shard leases, executes each cell with the executor's single-cell runner
(:func:`repro.campaign.executor.run_cell`) and streams every record back
the moment it finishes, so the coordinator can merge results (and survive
this worker's death) without waiting for shard boundaries.  When cells are
so short that framing dominates (sub-millisecond audit or smoke cells),
``batch_results`` trades that immediacy for throughput by buffering up to
N records into one ``result_batch`` frame.

Liveness is a background heartbeat: while a shard is leased, a daemon
thread pings the coordinator every ``heartbeat_s`` so a long-running cell
is distinguishable from a dead worker.  Scenario code that prints to
stdout would corrupt a stdio transport — :func:`serve_stdio` therefore
steals fd 1 for the channel and points ``stdout`` at stderr first.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
from typing import Optional

from repro.campaign.dist.protocol import Channel, ProtocolError
from repro.campaign.plan import RunSpec
from repro.telemetry.core import TELEMETRY, snapshot_of
from repro.telemetry.log import get_logger, log_event

#: Default liveness ping interval (seconds).  Must be well under the
#: coordinator's lease timeout; see DistOptions.lease_timeout_s.
DEFAULT_HEARTBEAT_S = 2.0


def default_worker_name() -> str:
    """host-pid identity used in hello frames and coordinator logs."""
    return f"{socket.gethostname()}:{os.getpid()}"


class _Heartbeat:
    """Background pinger active while a shard is leased."""

    def __init__(self, channel: Channel, interval_s: float) -> None:
        self._channel = channel
        self._interval_s = interval_s
        self._shard_id: Optional[int] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def watch(self, shard_id: Optional[int]) -> None:
        with self._lock:
            self._shard_id = shard_id

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            with self._lock:
                shard_id = self._shard_id
            if shard_id is None:
                continue
            try:
                self._channel.send({"type": "heartbeat", "shard": shard_id})
            except (OSError, ValueError):
                return  # coordinator is gone; the main loop will notice too


def serve_channel(
    channel: Channel,
    name: Optional[str] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    log=None,
    batch_results: int = 1,
) -> int:
    """Serve shard leases over an established channel until shutdown.

    Returns the number of cells executed.  Failures inside a cell become
    error records in the result stream (exactly like the pool executor);
    only a broken channel or a protocol violation raises.

    ``batch_results`` buffers up to that many finished cells into one
    ``result_batch`` frame before sending.  The default of 1 streams every
    cell the moment it finishes (a plain ``result`` frame, the historical
    wire behaviour); larger values amortize framing and syscall cost when
    cells are sub-millisecond and the frame overhead dominates.  The buffer
    is always flushed before ``shard_done``, so a batch never outlives its
    shard — at most ``batch_results - 1`` results are lost if this worker
    dies mid-shard, and those cells are re-leased like any unfinished work.
    """
    from repro.campaign import ensure_builtin_scenarios
    from repro.campaign.executor import run_cell

    if batch_results < 1:
        raise ValueError(f"batch_results must be >= 1, got {batch_results}")
    ensure_builtin_scenarios()
    name = name or default_worker_name()
    if log is None:
        logger = get_logger("campaign.dist.worker")
        log = lambda text: log_event(logger, "worker", worker=name, detail=text)  # noqa: E731
    channel.send(
        {"type": "hello", "worker": name, "pid": os.getpid(), "host": socket.gethostname()}
    )
    heartbeat = _Heartbeat(channel, heartbeat_s)
    executed = 0
    try:
        while True:
            message = channel.recv()
            if message is None or message["type"] == "shutdown":
                break
            if message["type"] != "lease":
                raise ProtocolError(
                    f"worker expected a lease or shutdown, got {message['type']!r}"
                )
            shard_id = int(message["shard"])
            specs = [RunSpec.from_wire(form) for form in message["specs"]]
            log(f"[{name}] leased shard {shard_id} ({len(specs)} cell(s))")
            heartbeat.watch(shard_id)
            buffered: list = []

            def flush(shard_id=shard_id, buffered=buffered) -> None:
                if not buffered:
                    return
                if len(buffered) == 1:
                    # A lone result travels as the classic frame, so a
                    # batching worker against an old coordinator degrades
                    # gracefully for shards of one cell.
                    channel.send(
                        {"type": "result", "shard": shard_id, **buffered[0]}
                    )
                else:
                    channel.send(
                        {
                            "type": "result_batch",
                            "shard": shard_id,
                            "results": list(buffered),
                        }
                    )
                buffered.clear()

            for spec in specs:
                record = run_cell(spec)
                executed += 1
                result = {
                    "spec": spec.to_wire(),
                    "elapsed_s": record.elapsed_s,
                    "error": record.error,
                }
                if record.payload is not None:
                    result["payload"] = record.payload
                    result["report"] = record.report
                if record.telemetry is not None:
                    result["telemetry"] = record.telemetry
                if record.probes is not None:
                    result["probes"] = record.probes
                buffered.append(result)
                if len(buffered) >= batch_results:
                    flush()
            flush()
            heartbeat.watch(None)
            done = {"type": "shard_done", "shard": shard_id}
            if TELEMETRY.enabled:
                # Worker-process aggregate (spans recorded outside any cell
                # capture — lease handling, idle time between cells).
                done["telemetry"] = snapshot_of(TELEMETRY.tracer, TELEMETRY.metrics)
            channel.send(done)
    finally:
        heartbeat.stop()
        channel.close()
    log(f"[{name}] done ({executed} cell(s) executed)")
    return executed


def serve_socket(
    host: str,
    port: int,
    name: Optional[str] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    log=None,
    batch_results: int = 1,
) -> int:
    """Connect to a coordinator's TCP endpoint and serve until shutdown."""
    sock = socket.create_connection((host, port))
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not fatal; some stacks refuse the option
    channel = Channel.over_socket(sock, name=f"coordinator@{host}:{port}")
    try:
        return serve_channel(
            channel,
            name=name,
            heartbeat_s=heartbeat_s,
            log=log,
            batch_results=batch_results,
        )
    finally:
        sock.close()


def serve_stdio(
    name: Optional[str] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    log=None,
    batch_results: int = 1,
) -> int:
    """Serve over this process's stdin/stdout (the ``local`` transport).

    The original stdout fd is duplicated for the channel and fd 1 is then
    redirected to stderr, so stray ``print``s from scenario code land in
    the worker's log instead of corrupting the frame stream.
    """
    wire_in = os.fdopen(os.dup(sys.stdin.fileno()), "rb", buffering=0)
    wire_out = os.fdopen(os.dup(sys.stdout.fileno()), "wb", buffering=0)
    sys.stdout.flush()
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr
    channel = Channel(wire_in, wire_out, name="coordinator@stdio")
    return serve_channel(
        channel,
        name=name,
        heartbeat_s=heartbeat_s,
        log=log,
        batch_results=batch_results,
    )
