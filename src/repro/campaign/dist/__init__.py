"""Distributed campaign execution: sharded workers over socket/stdio.

The single-host executor (:mod:`repro.campaign.executor`) fans cache misses
out over a ``multiprocessing`` pool; this package lifts the same plan onto
a coordinator/worker topology that also spans hosts:

* :mod:`repro.campaign.dist.protocol` — length-prefixed JSON frames over a
  byte stream (a TCP socket or a subprocess's stdio pipes) and the message
  vocabulary (hello / lease / result / shard-done / heartbeat / shutdown);
* :mod:`repro.campaign.dist.shard` — :class:`ShardPlanner` partitions a
  cost-annotated plan into balanced shards (LPT over the PR-4 estimates);
* :mod:`repro.campaign.dist.worker` — the worker loop: lease a shard,
  execute cell by cell with the executor's single-cell runner, stream each
  result back as it completes, heartbeat while busy;
* :mod:`repro.campaign.dist.coordinator` — leases shards, merges streamed
  results into the artifact store incrementally (journaled, atomic index
  updates, deduped by spec hash) and re-leases the shards of workers whose
  heartbeats stop, so a SIGKILLed worker costs only its in-flight cells
  and a killed campaign resumes from whatever the store already holds.
"""

from repro.campaign.dist.coordinator import Coordinator, DistOptions, run_distributed
from repro.campaign.dist.protocol import Channel, ProtocolError
from repro.campaign.dist.shard import Shard, ShardPlanner
from repro.campaign.dist.worker import serve_channel, serve_socket, serve_stdio

__all__ = [
    "Channel",
    "Coordinator",
    "DistOptions",
    "ProtocolError",
    "Shard",
    "ShardPlanner",
    "run_distributed",
    "serve_channel",
    "serve_socket",
    "serve_stdio",
]
