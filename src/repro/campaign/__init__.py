"""Campaign engine: registered scenarios, sweep planning, parallel execution.

The campaign subsystem turns the per-figure experiment scripts into a
system: scenarios are named, parameterized specs registered in a global
registry (:mod:`repro.campaign.registry`); a sweep planner expands parameter
grids into content-hashed :class:`~repro.campaign.plan.RunSpec`s
(:mod:`repro.campaign.plan`); a parallel executor fans runs out over
``multiprocessing`` with per-run seeds derived from :mod:`repro.sim.rng`
(:mod:`repro.campaign.executor`); and a result cache + artifact store skips
runs whose spec hash already has a stored result
(:mod:`repro.campaign.store`).  Campaigns too big for one host run on the
distributed coordinator/worker layer (:mod:`repro.campaign.dist`): balanced
shards leased to workers over a length-prefixed JSON socket/stdio
transport, results merged into the store as they stream in, dead workers
re-leased, killed campaigns resumable from the store.
"""

from repro.campaign.plan import (
    AUTO_BACKEND,
    CampaignPlan,
    RunSpec,
    expand_scenario,
    plan_campaign,
    scale_for,
)
from repro.campaign.registry import (
    Scenario,
    get_scenario,
    register,
    register_figure,
    scenario,
    scenario_names,
)
from repro.campaign.router import (
    BackendRouter,
    BudgetError,
    CellCost,
    CostHistory,
    estimate_cell,
    profile_for,
    select_audit_pairs,
)
from repro.campaign.executor import (
    AuditRecord,
    CampaignResult,
    RunRecord,
    execute_plan,
    execute_spec,
    metric_deltas,
    run_audits,
    run_cell,
)
from repro.campaign.store import ArtifactStore
from repro.campaign.dist import (
    Coordinator,
    DistOptions,
    Shard,
    ShardPlanner,
    run_distributed,
)

__all__ = [
    "AUTO_BACKEND",
    "ArtifactStore",
    "AuditRecord",
    "BackendRouter",
    "BudgetError",
    "CampaignPlan",
    "CampaignResult",
    "CellCost",
    "Coordinator",
    "CostHistory",
    "DistOptions",
    "RunRecord",
    "RunSpec",
    "Scenario",
    "Shard",
    "ShardPlanner",
    "ensure_builtin_scenarios",
    "estimate_cell",
    "execute_plan",
    "execute_spec",
    "expand_scenario",
    "get_scenario",
    "metric_deltas",
    "plan_campaign",
    "profile_for",
    "register",
    "register_figure",
    "run_audits",
    "run_cell",
    "run_distributed",
    "scale_for",
    "scenario",
    "scenario_names",
    "select_audit_pairs",
]


def ensure_builtin_scenarios() -> None:
    """Import every module that registers built-in scenarios (idempotent)."""
    from repro.campaign import scenarios

    scenarios.ensure_registered()
