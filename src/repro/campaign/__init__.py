"""Campaign engine: registered scenarios, sweep planning, parallel execution.

The campaign subsystem turns the per-figure experiment scripts into a
system: scenarios are named, parameterized specs registered in a global
registry (:mod:`repro.campaign.registry`); a sweep planner expands parameter
grids into content-hashed :class:`~repro.campaign.plan.RunSpec`s
(:mod:`repro.campaign.plan`); a parallel executor fans runs out over
``multiprocessing`` with per-run seeds derived from :mod:`repro.sim.rng`
(:mod:`repro.campaign.executor`); and a result cache + artifact store skips
runs whose spec hash already has a stored result
(:mod:`repro.campaign.store`).
"""

from repro.campaign.plan import CampaignPlan, RunSpec, expand_scenario, plan_campaign
from repro.campaign.registry import (
    Scenario,
    get_scenario,
    register,
    register_figure,
    scenario,
    scenario_names,
)
from repro.campaign.executor import CampaignResult, RunRecord, execute_plan, execute_spec
from repro.campaign.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "CampaignPlan",
    "CampaignResult",
    "RunRecord",
    "RunSpec",
    "Scenario",
    "ensure_builtin_scenarios",
    "execute_plan",
    "execute_spec",
    "expand_scenario",
    "get_scenario",
    "plan_campaign",
    "register",
    "register_figure",
    "scenario",
    "scenario_names",
]


def ensure_builtin_scenarios() -> None:
    """Import every module that registers built-in scenarios (idempotent)."""
    from repro.campaign import scenarios

    scenarios.ensure_registered()
