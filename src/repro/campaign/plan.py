"""Sweep planning: parameter grids expanded into content-hashed run specs.

A :class:`RunSpec` pins everything a run depends on — scenario name, one
point of the parameter grid, the experiment scale preset and the campaign
master seed — and derives from it (a) a stable SHA-256 content hash used as
the cache key by :class:`repro.campaign.store.ArtifactStore` and (b) the
per-run master seed, via :func:`repro.sim.rng.derive_seed`, so every grid
point draws from an independent but reproducible random universe.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.registry import (
    SCALAR_TYPES,
    Scenario,
    ScenarioError,
    get_scenario,
    scenario_tags,
)
from repro.sim.rng import derive_seed

#: Bump when the RunSpec -> result contract changes; invalidates all caches.
#: Format 2 added the network-model backend to the canonical form, so a
#: cached flit-level result can never be served for a flow-level run.
SPEC_FORMAT = 2

#: Default campaign master seed (the paper year, as used by the harness).
DEFAULT_SEED = 2019

#: Scenarios carrying this tag only run on the flow backend (their runners
#: pin it); the planner records that in the spec so hashes and cache
#: entries are labelled truthfully regardless of the campaign's --backend.
FLOW_ONLY_TAG = "flow-only"


@dataclass(frozen=True)
class RunSpec:
    """One planned run: a scenario at one grid point, scale, seed and backend."""

    scenario: str
    #: Sorted (axis, value) pairs — tuple form keeps the spec hashable.
    params: Tuple[Tuple[str, object], ...] = ()
    scale: str = "smoke"
    seed: int = DEFAULT_SEED
    #: Network-model backend the run executes on (``flit`` or ``flow``).
    backend: str = "flit"

    @staticmethod
    def make(
        scenario: str,
        params: Optional[Mapping[str, object]] = None,
        scale: str = "smoke",
        seed: int = DEFAULT_SEED,
        backend: str = "flit",
    ) -> "RunSpec":
        """Build a spec from a plain params mapping (validated, sorted).

        Scenarios tagged ``flow-only`` (looked up in the registry, tolerant
        of unregistered names) are pinned to ``backend="flow"`` here — their
        runners force that backend, and the spec hash must say so: a flow
        result must never be cached under a flit label.
        """
        items = sorted((params or {}).items())
        for key, value in items:
            if not isinstance(value, SCALAR_TYPES):
                raise TypeError(
                    f"run parameter {key}={value!r} is not a JSON scalar"
                )
        if FLOW_ONLY_TAG in scenario_tags(scenario):
            backend = "flow"
        return RunSpec(
            scenario=scenario,
            params=tuple(items),
            scale=scale,
            seed=seed,
            backend=backend,
        )

    @property
    def params_dict(self) -> Dict[str, object]:
        """The grid point as a plain dict."""
        return dict(self.params)

    def canonical(self) -> Dict[str, object]:
        """The canonical JSON form the content hash is computed over."""
        return {
            "format": SPEC_FORMAT,
            "scenario": self.scenario,
            "params": self.params_dict,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
        }

    def spec_hash(self) -> str:
        """Stable content hash — the cache / artifact key."""
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def run_seed(self) -> int:
        """Master seed for this run, derived from the campaign seed + spec.

        Uses :func:`repro.sim.rng.derive_seed` so two grid points never share
        random streams, yet re-running the same spec — serially or in a
        worker process — reproduces the run exactly.
        """
        return derive_seed(self.seed, f"campaign:{self.spec_hash()}")

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        suffix = "" if self.backend == "flit" else f"@{self.backend}"
        if not self.params:
            return f"{self.scenario}{suffix}"
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{params}]{suffix}"


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, de-duplicated list of runs."""

    name: str
    specs: Tuple[RunSpec, ...] = ()

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def describe(self) -> str:
        """One line per planned run (hash + label)."""
        lines = [f"campaign {self.name!r}: {len(self.specs)} run(s)"]
        for spec in self.specs:
            lines.append(f"  {spec.spec_hash()}  {spec.label()}")
        return "\n".join(lines)


def expand_scenario(
    spec: Scenario,
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    overrides: Optional[Mapping[str, Sequence[object]]] = None,
    backend: str = "flit",
) -> List[RunSpec]:
    """Expand one scenario's grid (optionally overriding axis values).

    The expansion order is deterministic: axes sorted by name, values in the
    order the scenario (or the override) lists them.  Scenarios tagged
    ``flow-only`` expand with ``backend="flow"`` no matter what was
    requested (enforced in :meth:`RunSpec.make`).
    """
    axes: Dict[str, Tuple[object, ...]] = {k: tuple(v) for k, v in spec.axes.items()}
    for axis, values in (overrides or {}).items():
        if axis not in axes:
            raise ScenarioError(
                f"scenario {spec.name!r} has no axis {axis!r} "
                f"(axes: {', '.join(sorted(axes)) or '<none>'})"
            )
        if not values:
            raise ValueError(f"override for axis {axis!r} is empty")
        axes[axis] = tuple(values)
    names = sorted(axes)
    out: List[RunSpec] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        out.append(
            RunSpec.make(
                spec.name,
                params=dict(zip(names, combo)),
                scale=scale,
                seed=seed,
                backend=backend,
            )
        )
    return out


def plan_campaign(
    scenario_names: Sequence[str],
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    overrides: Optional[Mapping[str, Sequence[object]]] = None,
    name: str = "campaign",
    backend: str = "flit",
) -> CampaignPlan:
    """Expand several scenarios into one de-duplicated, ordered plan.

    Scenario order follows the request; within a scenario, grid order.
    Axis overrides are applied to every scenario that has the axis and
    rejected only if *no* requested scenario has it.
    """
    overrides = dict(overrides or {})
    matched: set = set()
    specs: List[RunSpec] = []
    seen: set = set()
    for scenario_name in scenario_names:
        spec = get_scenario(scenario_name)
        applicable = {k: v for k, v in overrides.items() if k in spec.axes}
        matched.update(applicable)
        for run in expand_scenario(
            spec, scale=scale, seed=seed, overrides=applicable, backend=backend
        ):
            key = run.spec_hash()
            if key not in seen:
                seen.add(key)
                specs.append(run)
    unmatched = set(overrides) - matched
    if unmatched:
        raise ScenarioError(
            f"override axes {sorted(unmatched)} match no requested scenario"
        )
    return CampaignPlan(name=name, specs=tuple(specs))
