"""Sweep planning: parameter grids expanded into content-hashed run specs.

A :class:`RunSpec` pins everything a run depends on — scenario name, one
point of the parameter grid, the experiment scale preset, the campaign
master seed and the network-model backend — and derives from it (a) a
stable SHA-256 content hash used as the cache key by
:class:`repro.campaign.store.ArtifactStore` and (b) the per-run master
seed, via :func:`repro.sim.rng.derive_seed`, so every grid point draws
from an independent but reproducible random universe.

Backend routing
---------------

``backend="auto"`` asks the planner to pick the substrate: the cell is
costed under every backend with a registered cost model
(:mod:`repro.model.cost`) and a :class:`~repro.campaign.router.
BackendRouter` resolves it to a concrete backend at plan time, optionally
under a total work budget.  An unresolved ``auto`` spec has **no** content
hash — only concrete, executable specs are cacheable — and a routed spec
records its provenance in ``routed_from``, which enters the canonical form
(SPEC_FORMAT 3) so auto-routed results are cached separately from
explicitly pinned ones.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.registry import (
    SCALAR_TYPES,
    Scenario,
    ScenarioError,
    get_scenario,
    scenario_tags,
)
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.router import BackendRouter, CellCost
    from repro.experiments.harness import ExperimentScale

#: Bump when the RunSpec -> result contract changes; invalidates caches.
#: Format 2 added the network-model backend to the canonical form.  Format 3
#: adds the routing provenance (``routed_from``) for specs the planner
#: resolved from ``backend="auto"`` — and is emitted *only* for those specs:
#: a concrete-backend spec keeps the byte-identical format-2 canonical form,
#: so existing caches stay valid, while an auto-routed spec can never be
#: served a format-2 (explicitly pinned) result.
SPEC_FORMAT = 3

#: Canonical-form version emitted for specs without routing provenance.
LEGACY_SPEC_FORMAT = 2

#: Default campaign master seed (the paper year, as used by the harness).
DEFAULT_SEED = 2019

#: Pseudo-backend asking the planner to choose the substrate per cell.
AUTO_BACKEND = "auto"

#: Scenarios carrying this tag only run on the flow backend (their runners
#: pin it); the planner records that in the spec so hashes and cache
#: entries are labelled truthfully regardless of the campaign's --backend.
FLOW_ONLY_TAG = "flow-only"


@dataclass(frozen=True)
class RunSpec:
    """One planned run: a scenario at one grid point, scale, seed and backend."""

    scenario: str
    #: Sorted (axis, value) pairs — tuple form keeps the spec hashable.
    params: Tuple[Tuple[str, object], ...] = ()
    scale: str = "smoke"
    seed: int = DEFAULT_SEED
    #: Network-model backend the run executes on (``flit``, ``flow``, or the
    #: transient ``auto`` awaiting resolution by a router).
    backend: str = "flit"
    #: Who picked the backend: ``None`` for explicitly pinned specs,
    #: ``"auto"`` when a :class:`~repro.campaign.router.BackendRouter`
    #: resolved it.  Enters the canonical form (and therefore the hash).
    routed_from: Optional[str] = None

    @staticmethod
    def make(
        scenario: str,
        params: Optional[Mapping[str, object]] = None,
        scale: str = "smoke",
        seed: int = DEFAULT_SEED,
        backend: str = "flit",
    ) -> "RunSpec":
        """Build a spec from a plain params mapping (validated, sorted).

        Scenarios tagged ``flow-only`` (looked up in the registry, tolerant
        of unregistered names) are pinned to ``backend="flow"`` here — their
        runners force that backend, and the spec hash must say so: a flow
        result must never be cached under a flit label.  The pin applies to
        ``backend="auto"`` too: a flow-only cell has nothing to route.
        """
        items = sorted((params or {}).items())
        for key, value in items:
            if not isinstance(value, SCALAR_TYPES):
                raise TypeError(
                    f"run parameter {key}={value!r} is not a JSON scalar"
                )
        if FLOW_ONLY_TAG in scenario_tags(scenario):
            backend = "flow"
        return RunSpec(
            scenario=scenario,
            params=tuple(items),
            scale=scale,
            seed=seed,
            backend=backend,
        )

    @property
    def params_dict(self) -> Dict[str, object]:
        """The grid point as a plain dict."""
        return dict(self.params)

    @property
    def is_auto(self) -> bool:
        """Whether the backend is still awaiting plan-time resolution."""
        return self.backend == AUTO_BACKEND

    def resolve(self, backend: str, routed_from: str = AUTO_BACKEND) -> "RunSpec":
        """A concrete copy of an ``auto`` spec, with provenance recorded."""
        if not self.is_auto:
            raise ValueError(
                f"spec {self.label()} already runs on {self.backend!r}"
            )
        return replace(self, backend=backend, routed_from=routed_from)

    def canonical(self) -> Dict[str, object]:
        """The canonical JSON form the content hash is computed over.

        Specs without routing provenance emit the format-2 form unchanged
        (byte-identical hashes, caches carry over); routed specs emit
        format 3 with the extra ``routed_from`` entry.
        """
        form: Dict[str, object] = {
            "format": SPEC_FORMAT if self.routed_from else LEGACY_SPEC_FORMAT,
            "scenario": self.scenario,
            "params": self.params_dict,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
        }
        if self.routed_from:
            form["routed_from"] = self.routed_from
        return form

    def spec_hash(self) -> str:
        """Stable content hash — the cache / artifact key.

        Only concrete specs hash: an unresolved ``auto`` spec does not name
        an executable run, and handing out a hash for one would let cache
        entries alias across whatever backend it later resolves to.
        """
        if self.is_auto:
            raise ValueError(
                f"spec {self.label()} has backend 'auto' — resolve it to a "
                "concrete backend (plan with a BackendRouter) before hashing"
            )
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def to_wire(self) -> Dict[str, object]:
        """Transport form for the distributed executor's JSON frames.

        Unlike :meth:`canonical` (which exists to be hashed and therefore
        omits/normalizes fields), the wire form round-trips the spec
        exactly: ``from_wire(to_wire(spec)) == spec``, so a worker on
        another host executes and hashes the identical spec the
        coordinator planned.
        """
        form: Dict[str, object] = {
            "scenario": self.scenario,
            "params": self.params_dict,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
        }
        if self.routed_from is not None:
            form["routed_from"] = self.routed_from
        return form

    @staticmethod
    def from_wire(form: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from its wire form (validating the params).

        Deliberately *not* :meth:`make`: the flow-only pin and any routing
        already happened on the coordinator, and re-applying policy here
        could change the spec (and its hash) between hosts.
        """
        params = form.get("params") or {}
        if not isinstance(params, Mapping):
            raise TypeError(f"wire spec params must be a mapping, got {params!r}")
        items = sorted(params.items())
        for key, value in items:
            if not isinstance(value, SCALAR_TYPES):
                raise TypeError(
                    f"wire spec parameter {key}={value!r} is not a JSON scalar"
                )
        routed_from = form.get("routed_from")
        return RunSpec(
            scenario=str(form["scenario"]),
            params=tuple(items),
            scale=str(form["scale"]),
            seed=int(form["seed"]),  # type: ignore[arg-type]
            backend=str(form["backend"]),
            routed_from=str(routed_from) if routed_from is not None else None,
        )

    def run_seed(self) -> int:
        """Master seed for this run, derived from the campaign seed + spec.

        Uses :func:`repro.sim.rng.derive_seed` so two grid points never share
        random streams, yet re-running the same spec — serially or in a
        worker process — reproduces the run exactly.
        """
        return derive_seed(self.seed, f"campaign:{self.spec_hash()}")

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        if self.backend == "flit" and not self.routed_from:
            suffix = ""
        elif self.routed_from:
            suffix = f"@{self.backend}({self.routed_from})"
        else:
            suffix = f"@{self.backend}"
        if not self.params:
            return f"{self.scenario}{suffix}"
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{params}]{suffix}"


def scale_for(spec: RunSpec, seeded: bool = True) -> "ExperimentScale":
    """Resolve the :class:`ExperimentScale` a spec runs (or is costed) at.

    This is the one place a spec's ``scale`` string becomes a preset — the
    executor and the planner's cost estimation must agree on it or the
    estimates describe a different machine than the run uses.

    ``seeded=True`` (execution) threads the derived run seed and the
    backend into the scale, so every network built through the harness
    resolves on the requested substrate.  ``seeded=False`` (planning)
    resolves the preset alone — valid for unresolved ``auto`` specs, which
    have no hash and therefore no run seed yet.
    """
    from repro.experiments.harness import ExperimentScale

    scale = ExperimentScale.preset(spec.scale)
    if seeded:
        scale = scale.with_seed(spec.run_seed()).with_backend(spec.backend)
    return scale


def _format_work(work: float) -> str:
    """Work units for humans: compact scientific-ish notation."""
    return f"{work:,.0f}" if work < 1e6 else f"{work:.3g}"


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, de-duplicated list of runs, optionally cost-annotated."""

    name: str
    specs: Tuple[RunSpec, ...] = ()
    #: Per-spec routing/cost annotation (parallel to ``specs``) when the
    #: plan went through a :class:`~repro.campaign.router.BackendRouter`;
    #: empty for blind (fixed-backend) plans.
    costs: Tuple["CellCost", ...] = ()
    #: Total-work budget the routing honoured, if any.
    budget: Optional[float] = None
    #: Campaign master seed (drives the audit sample, among other things).
    seed: int = DEFAULT_SEED

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def total_work(self) -> Optional[float]:
        """Estimated total work of the plan, if cost-annotated."""
        if not self.costs:
            return None
        return sum(cell.work for cell in self.costs)

    def describe(self) -> str:
        """One line per planned run (hash + label), plus the budget report."""
        lines = [f"campaign {self.name!r}: {len(self.specs)} run(s)"]
        if not self.costs:
            for spec in self.specs:
                lines.append(f"  {spec.spec_hash()}  {spec.label()}")
            return "\n".join(lines)
        for spec, cell in zip(self.specs, self.costs):
            lines.append(
                f"  {spec.spec_hash()}  {spec.label()}  "
                f"~{_format_work(cell.work)} units on {cell.chosen} ({cell.reason})"
            )
        per_backend: Dict[str, Tuple[int, float]] = {}
        for cell in self.costs:
            count, work = per_backend.get(cell.chosen, (0, 0.0))
            per_backend[cell.chosen] = (count + 1, work + cell.work)
        breakdown = ", ".join(
            f"{backend}: {count} cell(s) ~{_format_work(work)}"
            for backend, (count, work) in sorted(per_backend.items())
        )
        total = self.total_work or 0.0
        lines.append(f"  estimated work: {_format_work(total)} unit(s) — {breakdown}")
        if self.budget is not None:
            used = 100.0 * total / self.budget if self.budget else 0.0
            lines.append(
                f"  budget: {_format_work(self.budget)} unit(s) — "
                f"within budget ({used:.0f}% allocated)"
            )
        return "\n".join(lines)


def _expand_raw(
    spec: Scenario,
    scale: str,
    seed: int,
    overrides: Optional[Mapping[str, Sequence[object]]],
    backend: str,
) -> List[RunSpec]:
    """Grid expansion alone — specs may still carry ``backend="auto"``."""
    axes: Dict[str, Tuple[object, ...]] = {k: tuple(v) for k, v in spec.axes.items()}
    for axis, values in (overrides or {}).items():
        if axis not in axes:
            raise ScenarioError(
                f"scenario {spec.name!r} has no axis {axis!r} "
                f"(axes: {', '.join(sorted(axes)) or '<none>'})"
            )
        if not values:
            raise ValueError(f"override for axis {axis!r} is empty")
        axes[axis] = tuple(values)
    names = sorted(axes)
    out: List[RunSpec] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        out.append(
            RunSpec.make(
                spec.name,
                params=dict(zip(names, combo)),
                scale=scale,
                seed=seed,
                backend=backend,
            )
        )
    return out


def expand_scenario(
    spec: Scenario,
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    overrides: Optional[Mapping[str, Sequence[object]]] = None,
    backend: str = "flit",
    router: Optional["BackendRouter"] = None,
) -> List[RunSpec]:
    """Expand one scenario's grid (optionally overriding axis values).

    The expansion order is deterministic: axes sorted by name, values in the
    order the scenario (or the override) lists them.  Scenarios tagged
    ``flow-only`` expand with ``backend="flow"`` no matter what was
    requested (enforced in :meth:`RunSpec.make`).

    With ``backend="auto"`` (or an explicit ``router``) every cell is
    resolved to a concrete backend before it is returned; a default
    :class:`~repro.campaign.router.BackendRouter` is used when none is
    given.  Note the budget, if the router carries one, then applies to
    this scenario alone — use :func:`plan_campaign` for a shared budget
    across scenarios.
    """
    raw = _expand_raw(spec, scale, seed, overrides, backend)
    if backend == AUTO_BACKEND or router is not None:
        from repro.campaign.router import BackendRouter

        cells = (router or BackendRouter()).route(raw)
        return [cell.spec for cell in cells]
    return raw


def plan_campaign(
    scenario_names: Sequence[str],
    scale: str = "smoke",
    seed: int = DEFAULT_SEED,
    overrides: Optional[Mapping[str, Sequence[object]]] = None,
    name: str = "campaign",
    backend: str = "flit",
    router: Optional["BackendRouter"] = None,
) -> CampaignPlan:
    """Expand several scenarios into one de-duplicated, ordered plan.

    Scenario order follows the request; within a scenario, grid order.
    Axis overrides are applied to every scenario that has the axis and
    rejected only if *no* requested scenario has it.

    With ``backend="auto"`` (or an explicit ``router``) the whole plan is
    routed in one pass, so the router's budget constrains the campaign's
    *total* estimated work, and the returned plan carries per-cell cost
    annotations (:attr:`CampaignPlan.costs`).
    """
    overrides = dict(overrides or {})
    matched: set = set()
    specs: List[RunSpec] = []
    seen: set = set()
    for scenario_name in scenario_names:
        spec = get_scenario(scenario_name)
        applicable = {k: v for k, v in overrides.items() if k in spec.axes}
        matched.update(applicable)
        for run in _expand_raw(spec, scale, seed, applicable, backend):
            # De-duplicate on the frozen spec itself: unresolved auto specs
            # have no hash yet, and spec equality is exactly as strict.
            if run not in seen:
                seen.add(run)
                specs.append(run)
    unmatched = set(overrides) - matched
    if unmatched:
        raise ScenarioError(
            f"override axes {sorted(unmatched)} match no requested scenario"
        )
    if backend == AUTO_BACKEND or router is not None:
        from repro.campaign.router import BackendRouter

        active = router or BackendRouter()
        cells = active.route(specs)
        return CampaignPlan(
            name=name,
            specs=tuple(cell.spec for cell in cells),
            costs=tuple(cells),
            budget=active.budget,
            seed=seed,
        )
    return CampaignPlan(name=name, specs=tuple(specs), seed=seed)
