"""Built-in scenarios: figure wrappers plus fine-grained sweep grids.

Importing this module populates the registry with

* every per-figure experiment (registered from the ``figure*.py`` modules
  themselves via :func:`repro.campaign.registry.register_figure`), and
* generic parameterized scenarios whose grids the executor can fan out one
  cell at a time — the shape the paper's Figures 3 and 7 sweeps take when
  they are expressed as campaigns instead of bespoke serial loops.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.allocation.policies import (
    AllocationPolicy,
    allocate_inter_blade_pair,
    allocate_inter_chassis_pair,
    allocate_inter_group_pair,
    allocate_intra_blade_pair,
    allocate_scattered,
)
from repro.analysis.interference import format_interference, interference_matrix
from repro.analysis.reporting import BOXPLOT_COLUMNS, Table, boxplot_row
from repro.analysis.stats import summarize
from repro.campaign.registry import scenario
from repro.cluster import ClusterScheduler, JobTrace
from repro.config import SimulationConfig, TopologyConfig
from repro.core.policy import StaticRoutingPolicy
from repro.experiments.harness import ExperimentScale, build_network, compare_policies
from repro.model.base import NetworkModel, build_network_model
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.routing.modes import RoutingMode
from repro.workloads.base import Workload
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    PingPongBenchmark,
)

# Import for the registration side effect: each figure module registers
# itself as a zero-axis scenario.
from repro.experiments import (  # noqa: F401  (imported for side effects)
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    model_validation,
    table1,
)


def ensure_registered() -> None:
    """No-op: importing this module performs every registration."""


#: Placement name -> pair-allocation builder (the Figure 3 vocabulary).
PLACEMENTS: Dict[str, Callable] = {
    "inter-nodes": allocate_intra_blade_pair,
    "inter-blades": allocate_inter_blade_pair,
    "inter-chassis": allocate_inter_chassis_pair,
    "inter-groups": allocate_inter_group_pair,
}


def _pair_allocation(placement: str, scale: ExperimentScale):
    try:
        builder = PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown placement {placement!r} (known: {', '.join(sorted(PLACEMENTS))})"
        ) from None
    return builder(scale.topology())


def _pingpong_cost(scale: ExperimentScale, *, placement, message_kib, noise) -> Dict:
    """Traffic volume of one ping-pong cell, for backend routing."""
    messages = 2.0 * (scale.pingpong_repetitions + 1)
    if noise != "none":
        messages += 16.0 * scale.pingpong_repetitions  # <=16 noise nodes
    return {
        "messages": messages,
        "message_bytes": scale.scaled_size(int(message_kib) * 1024),
        "concurrent_flows": 8.0,
    }


@scenario(
    name="pingpong-placement",
    description="ping-pong latency/dispersion vs. placement, size and noise",
    axes={
        "placement": tuple(PLACEMENTS),
        "message_kib": (4, 16),
        "noise": ("none", "light"),
    },
    tags=("sweep", "microbench"),
    cost_hints=_pingpong_cost,
)
def run_pingpong_placement(
    scale: ExperimentScale, *, placement: str, message_kib: int, noise: str
) -> Dict:
    """One grid cell of the Figure-3-style allocation sweep."""
    allocation = _pair_allocation(placement, scale)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    network = build_network(scale)
    background = BackgroundTraffic.for_level(
        network,
        list(allocation),
        NoiseLevel(noise),
        max_nodes=16,
        name=f"pp-{placement}",
    )
    if background is not None:
        background.start()
    job = MpiJob(network, list(allocation), name=f"pp-{placement}")
    workload = PingPongBenchmark(
        size_bytes=message_bytes,
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    result = workload.run(job)
    if background is not None:
        background.stop()
    stats = summarize(result.iteration_times)
    table = Table(
        title=f"ping-pong {message_bytes} B, {placement}, noise={noise}",
        columns=BOXPLOT_COLUMNS,
    )
    table.add_row(*boxplot_row(placement, result.iteration_times))
    return {
        "metrics": {"median": stats.median, "qcd": stats.qcd, "mean": stats.mean},
        "data": {
            "message_bytes": message_bytes,
            "iteration_times": list(result.iteration_times),
        },
        "report": table.render(),
    }


def _routing_mode_cost(scale: ExperimentScale, *, placement, mode, message_kib) -> Dict:
    """Traffic volume of one routing-mode cell — a noisy ping-pong.

    The cell is the same shape as ``pingpong-placement`` with its
    background traffic always on, so it shares that volume model.
    """
    return _pingpong_cost(
        scale, placement=placement, message_kib=message_kib, noise="light"
    )


@scenario(
    name="routing-mode-pingpong",
    description="static routing modes vs. placement on a large ping-pong",
    axes={
        "placement": ("intra-group", "inter-groups"),
        "mode": tuple(mode.value for mode in RoutingMode),
        "message_kib": (32,),
    },
    tags=("sweep", "routing"),
    cost_hints=_routing_mode_cost,
)
def run_routing_mode(
    scale: ExperimentScale, *, placement: str, mode: str, message_kib: int
) -> Dict:
    """One grid cell of the Figure-7-style routing sweep."""
    if placement == "intra-group":
        allocation = allocate_inter_chassis_pair(scale.topology())
    elif placement == "inter-groups":
        allocation = allocate_inter_group_pair(scale.topology())
    else:
        raise ValueError(f"unknown placement {placement!r}")
    routing_mode = RoutingMode(mode)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    network = build_network(scale)
    background = BackgroundTraffic.for_level(
        network,
        list(allocation),
        scale.noise_level,
        max_nodes=16,
        name=f"rm-{placement}",
    )
    if background is not None:
        background.start()
    job = MpiJob(
        network,
        list(allocation),
        policy_factory=lambda: StaticRoutingPolicy(routing_mode),
        name=f"rm-{placement}-{mode}",
    )
    sender = network.nic(allocation[0])
    before = sender.counters.snapshot()
    workload = PingPongBenchmark(
        size_bytes=message_bytes,
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    result = workload.run(job)
    delta = sender.counters.snapshot().delta(before)
    if background is not None:
        background.stop()
    stats = summarize(result.iteration_times)
    return {
        "metrics": {
            "median": stats.median,
            "qcd": stats.qcd,
            "stall_ratio": delta.stall_ratio,
            "avg_packet_latency": delta.avg_packet_latency,
        },
        "data": {
            "message_bytes": message_bytes,
            "iteration_times": list(result.iteration_times),
        },
        "report": (
            f"{placement} / {mode} / {message_bytes} B: "
            f"median {stats.median:.0f} cycles, QCD {stats.qcd:.4f}, "
            f"s {delta.stall_ratio:.4f}, L {delta.avg_packet_latency:.1f}"
        ),
    }


def _workload_factory(
    name: str, scale: ExperimentScale
) -> Callable[[], Workload]:
    if name == "pingpong":
        return lambda: PingPongBenchmark(
            size_bytes=scale.scaled_size(16 * 1024),
            iterations=scale.iterations,
            pingpongs_per_iteration=4,
        )
    if name == "allreduce":
        return lambda: AllreduceBenchmark(
            elements=max(8, int(512 * scale.message_scale)),
            iterations=scale.iterations,
        )
    if name == "alltoall":
        return lambda: AlltoallBenchmark(
            size_bytes=scale.scaled_size(1024), iterations=scale.iterations
        )
    if name == "barrier":
        return lambda: BarrierBenchmark(
            barriers_per_iteration=8, iterations=scale.iterations
        )
    raise ValueError(f"unknown workload {name!r}")


def _policy_comparison_cost(scale: ExperimentScale, *, workload, noise) -> Dict:
    """Traffic volume of one policy-comparison cell (three policy runs)."""
    ranks = max(2, scale.small_job_nodes)
    per_policy = scale.iterations * ranks * 8.0  # collective rounds per run
    noise_messages = 0.0 if noise == "none" else 16.0 * scale.iterations * 3
    return {
        "messages": 3.0 * per_policy + noise_messages,
        "message_bytes": scale.scaled_size(4 * 1024),
        "concurrent_flows": 2.0 * ranks,
    }


@scenario(
    name="policy-comparison",
    description="Default vs. HighBias vs. AppAware on a scattered allocation",
    axes={
        "workload": ("pingpong", "allreduce", "alltoall", "barrier"),
        "noise": ("light",),
    },
    tags=("sweep", "policy"),
    cost_hints=_policy_comparison_cost,
)
def run_policy_comparison(scale: ExperimentScale, *, workload: str, noise: str) -> Dict:
    """One (workload, noise) cell of a Figure-8-style policy comparison."""
    topo = scale.topology()
    rng = random.Random(scale.seed)
    allocation = allocate_scattered(
        topo, scale.small_job_nodes, rng, name=f"pc-{workload}"
    )
    comparison = compare_policies(
        scale,
        allocation,
        _workload_factory(workload, scale),
        noise_level=NoiseLevel(noise),
    )
    normalized = comparison.normalized_medians()
    fraction = comparison.app_aware_fraction_default()
    metrics = {f"normalized.{name}": value for name, value in normalized.items()}
    if fraction is not None:
        metrics["app_aware_default_fraction"] = fraction
    table = Table(
        title=f"policy comparison — {workload}, noise={noise}",
        columns=["policy", "normalized median"],
    )
    for name, value in normalized.items():
        table.add_row(name, value)
    return {
        "metrics": metrics,
        "data": {"best": comparison.best_policy(), "allocation": allocation.name},
        "report": table.render() + f"\nbest: {comparison.best_policy()}",
    }


# -- large-topology scenarios (flow backend only) -----------------------------------
#
# These register system sizes the paper measured on (1000+ nodes of Piz
# Daint) that the pure-Python flit simulator cannot reach in reasonable
# time.  Their runners pin the flow backend, and the planner honours the
# "flow-only" tag by expanding their RunSpecs with backend="flow" no
# matter what --backend the campaign requested, so spec hashes and cache
# entries are labelled truthfully.  `repro campaign list --tag flow-only`
# makes the restriction discoverable.


def _large_dragonfly(seed: int) -> SimulationConfig:
    """An 11-group, 1056-node Dragonfly — Piz-Daint-like scale."""
    return SimulationConfig(
        topology=TopologyConfig(
            num_groups=11,
            chassis_per_group=6,
            blades_per_chassis=4,
            nodes_per_router=4,
        ),
        seed=seed,
        backend="flow",
    )


def _drive_until(network: NetworkModel, done: Callable[[], bool], max_events: int = 50_000_000) -> None:
    """Step the simulator until ``done()`` (noise traffic may never drain)."""
    executed = 0
    while not done():
        if not network.sim.step():
            raise RuntimeError("simulation ran out of events before completion")
        executed += 1
        if executed > max_events:
            raise RuntimeError(f"exceeded {max_events} events")


def _bisection_stress_cost(scale: ExperimentScale, *, mode, message_kib, noise) -> Dict:
    """1056-node machine; waves of 64 pairs bound the concurrent flows."""
    pairs = max(32, 528 // 8) if scale.name == "smoke" else 528
    noise_messages = 0.0 if noise == "none" else 64.0 * 4
    return {
        "nodes": 1056,
        "messages": 2.0 * pairs + noise_messages,
        "message_bytes": scale.scaled_size(int(message_kib) * 1024),
        "concurrent_flows": 2.0 * 64 * 8,  # one wave, spread over <=8 paths
    }


@scenario(
    name="bisection-stress-large",
    description="1056-node bisection exchange on the flow backend "
    "(infeasible at flit granularity)",
    axes={
        "mode": ("ADAPTIVE_0", "ADAPTIVE_3", "MIN_HASH"),
        "message_kib": (64,),
        "noise": ("none", "moderate"),
    },
    tags=("sweep", "flow-only", "large"),
    cost_hints=_bisection_stress_cost,
)
def run_bisection_stress_large(
    scale: ExperimentScale, *, mode: str, message_kib: int, noise: str
) -> Dict:
    """Every node exchanges with its bisection partner, in waves.

    The allocation spans all 1056 nodes; pairs are matched across the
    group bisection so every message crosses optical links.  Waves of 64
    pairs keep the number of concurrent fluid flows bounded.
    """
    config = _large_dragonfly(scale.seed)
    network = build_network_model(config)
    routing_mode = RoutingMode(mode)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    half = network.num_nodes // 2
    pairs: List[Tuple[int, int]] = [(n, half + n) for n in range(half)]
    rng = random.Random(scale.seed)
    rng.shuffle(pairs)
    # Smoke scale exercises a slice of the machine; paper scale all of it.
    if scale.name == "smoke":
        pairs = pairs[: max(32, len(pairs) // 8)]

    background = BackgroundTraffic.for_level(
        network,
        [node for pair in pairs for node in pair],
        NoiseLevel(noise),
        max_nodes=64,
        name="bisection-noise",
    )
    if background is not None:
        background.start()

    wave_size = 64
    times: List[int] = []
    state = {"pending": 0, "next": 0}

    def _on_acked(message) -> None:
        state["pending"] -= 1
        times.append(network.sim.now - message.submit_time)
        if state["pending"] == 0 and state["next"] < len(pairs):
            _send_wave()

    def _send_wave() -> None:
        wave = pairs[state["next"] : state["next"] + wave_size]
        state["next"] += len(wave)
        state["pending"] += 2 * len(wave)
        for a, b in wave:
            network.send(a, b, message_bytes, routing_mode=routing_mode, on_acked=_on_acked)
            network.send(b, a, message_bytes, routing_mode=routing_mode, on_acked=_on_acked)

    _send_wave()
    _drive_until(network, lambda: state["pending"] == 0 and state["next"] >= len(pairs))
    if background is not None:
        background.stop()

    stats = summarize(times)
    flits = stalled = latency = responses = 0.0
    for a, b in pairs:
        for node in (a, b):
            counters = network.nic(node).counters
            flits += counters.request_flits
            stalled += counters.request_flits_stalled_cycles
            latency += counters.request_packets_cum_latency
            responses += counters.responses_received
    stall_ratio = stalled / flits if flits else 0.0
    avg_latency = latency / responses if responses else 0.0
    return {
        "metrics": {
            "median": stats.median,
            "p95": stats.whisker_high,
            "qcd": stats.qcd,
            "stall_ratio": stall_ratio,
            "avg_packet_latency": avg_latency,
        },
        "data": {
            "nodes": network.num_nodes,
            "pairs": len(pairs),
            "message_bytes": message_bytes,
            "backend": network.backend_name,
        },
        "report": (
            f"bisection {len(pairs)} pair(s) on {network.num_nodes} nodes, "
            f"{mode}/{noise}: median {stats.median:.0f} cycles, "
            f"s {stall_ratio:.3f}, L {avg_latency:.1f}"
        ),
    }


def _bisection_full_cost(scale: ExperimentScale, *, mode, message_kib, noise) -> Dict:
    """All 528 pairs at once — thousands of concurrent fluid flows."""
    noise_messages = 0.0 if noise == "none" else 64.0 * 4
    return {
        "nodes": 1056,
        "messages": 2.0 * 528 + noise_messages,
        "message_bytes": scale.scaled_size(int(message_kib) * 1024),
        "concurrent_flows": 2.0 * 528 * 8,
    }


@scenario(
    name="bisection-full",
    description="528-pair no-wave full-bisection exchange on 1056 nodes "
    "(needs the vectorized flow solver's concurrency ceiling)",
    axes={
        "mode": ("ADAPTIVE_0", "ADAPTIVE_3", "MIN_HASH"),
        "message_kib": (64,),
        "noise": ("none", "moderate"),
    },
    tags=("sweep", "flow-only", "large"),
    cost_hints=_bisection_full_cost,
)
def run_bisection_full(
    scale: ExperimentScale, *, mode: str, message_kib: int, noise: str
) -> Dict:
    """Every bisection pair exchanges simultaneously — no waves.

    The stress shape `bisection-stress-large` throttles into waves of 64
    pairs to keep the concurrent flow count near what the pure-Python
    solver tolerated.  Here all 528 pairs (1056 messages, each spread over
    several paths — thousands of concurrent fluid flows) are submitted in
    the same cycle, which is the paper's actual full-machine bisection
    pattern and the workload the vectorized incremental solver exists for.
    """
    config = _large_dragonfly(scale.seed)
    network = build_network_model(config)
    routing_mode = RoutingMode(mode)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    half = network.num_nodes // 2
    pairs: List[Tuple[int, int]] = [(n, half + n) for n in range(half)]

    background = BackgroundTraffic.for_level(
        network,
        [node for pair in pairs for node in pair],
        NoiseLevel(noise),
        max_nodes=64,
        name="bisection-full-noise",
    )
    if background is not None:
        background.start()

    times: List[int] = []
    state = {"pending": 2 * len(pairs)}

    def _on_acked(message) -> None:
        state["pending"] -= 1
        times.append(network.sim.now - message.submit_time)

    for a, b in pairs:
        network.send(a, b, message_bytes, routing_mode=routing_mode, on_acked=_on_acked)
        network.send(b, a, message_bytes, routing_mode=routing_mode, on_acked=_on_acked)
    peak_flows = network.active_flows
    _drive_until(network, lambda: state["pending"] == 0)
    if background is not None:
        background.stop()

    stats = summarize(times)
    flits = stalled = latency = responses = 0.0
    for a, b in pairs:
        for node in (a, b):
            counters = network.nic(node).counters
            flits += counters.request_flits
            stalled += counters.request_flits_stalled_cycles
            latency += counters.request_packets_cum_latency
            responses += counters.responses_received
    stall_ratio = stalled / flits if flits else 0.0
    avg_latency = latency / responses if responses else 0.0
    solver_stats = getattr(network, "solver_stats", {})
    return {
        "metrics": {
            "median": stats.median,
            "p95": stats.whisker_high,
            "qcd": stats.qcd,
            "stall_ratio": stall_ratio,
            "avg_packet_latency": avg_latency,
            "peak_flows": float(peak_flows),
        },
        "data": {
            "nodes": network.num_nodes,
            "pairs": len(pairs),
            "message_bytes": message_bytes,
            "backend": network.backend_name,
            "solver": getattr(network, "solver_kind", None),
            "solver_stats": dict(solver_stats),
        },
        "report": (
            f"full bisection, {len(pairs)} pairs x2 on {network.num_nodes} nodes "
            f"({peak_flows} concurrent flows), {mode}/{noise}: "
            f"median {stats.median:.0f} cycles, s {stall_ratio:.3f}, "
            f"L {avg_latency:.1f}"
        ),
    }


def _cluster_trace_jobs(scale: ExperimentScale, jobs: int) -> int:
    """Smoke scale replays a slice of the trace; paper scale all of it."""
    return max(16, int(jobs) // 8) if scale.name == "smoke" else int(jobs)


def _cluster_trace_cost(scale: ExperimentScale, *, jobs, policy, mode, load) -> Dict:
    """1056-node machine; volume scales with jobs resident at once."""
    n_jobs = _cluster_trace_jobs(scale, jobs)
    # Each job runs a short collective/microbench plus its isolated
    # baseline; heavy load keeps more flows concurrently resident.
    return {
        "nodes": 1056,
        "messages": 2.0 * n_jobs * 48.0,
        "message_bytes": 4096.0,
        "concurrent_flows": 512.0 if load == "heavy" else 128.0,
    }


@scenario(
    name="cluster-trace",
    description="multi-tenant trace replay on 1056 nodes: per-job slowdown, "
    "fairness and workload interference (flow backend)",
    axes={
        "jobs": (200,),
        "policy": ("contiguous", "round_robin_groups", "scattered"),
        "mode": ("ADAPTIVE_3", "MIN_HASH"),
        "load": ("light", "heavy"),
    },
    tags=("sweep", "flow-only", "large", "cluster"),
    cost_hints=_cluster_trace_cost,
)
def run_cluster_trace(
    scale: ExperimentScale, *, jobs: int, policy: str, mode: str, load: str
) -> Dict:
    """One cell of the multi-tenant replay sweep.

    A seeded synthetic trace (hundreds of arrivals) replays through the
    FIFO :class:`~repro.cluster.scheduler.ClusterScheduler` on one shared
    1056-node flow network; every job's slowdown is measured against its
    memoized isolated baseline, and the per-job rows feed the
    interference-matrix report.
    """
    config = _large_dragonfly(scale.seed)
    network = build_network_model(config)
    n_jobs = _cluster_trace_jobs(scale, jobs)
    trace = JobTrace.synthetic(scale.seed, n_jobs, load=load, max_nodes=32)
    scheduler = ClusterScheduler(
        network,
        trace,
        allocation_policy=AllocationPolicy(policy),
        routing_mode=RoutingMode(mode),
        name=f"ct-{policy}-{mode}-{load}",
        baseline_factory=lambda: build_network_model(config),
    )
    result = scheduler.replay()
    rows = result.job_rows()
    matrix = interference_matrix(rows)
    return {
        "metrics": result.metrics(),
        "data": {
            "jobs": rows,
            "trace": trace.describe(),
            "nodes": network.num_nodes,
            "backend": network.backend_name,
            "interference": matrix,
        },
        "report": (
            result.slowdown_table()
            + "\n\n"
            + format_interference(matrix)
        ),
    }


def _noise_sweep_cost(scale: ExperimentScale, *, noise, noise_nodes, workload) -> Dict:
    """1056-node machine; volume scales with ranks and noise nodes."""
    ranks = 16 if scale.name == "smoke" else 64
    noise_messages = 0.0 if noise == "none" else float(noise_nodes) * 4
    return {
        "nodes": 1056,
        "messages": scale.iterations * ranks * 8.0 + noise_messages,
        "concurrent_flows": 8.0 * ranks,
    }


@scenario(
    name="noise-sweep-large",
    description="wide noise sweep around a scattered job on a 1056-node "
    "machine (flow backend)",
    axes={
        "noise": ("none", "light", "moderate", "heavy"),
        "noise_nodes": (64, 256),
        "workload": ("pingpong", "allreduce"),
    },
    tags=("sweep", "flow-only", "large", "noise"),
    cost_hints=_noise_sweep_cost,
)
def run_noise_sweep_large(
    scale: ExperimentScale, *, noise: str, noise_nodes: int, workload: str
) -> Dict:
    """A 64-rank job measured under machine-wide background traffic."""
    config = _large_dragonfly(scale.seed)
    network = build_network_model(config)
    rng = random.Random(scale.seed)
    ranks = 16 if scale.name == "smoke" else 64
    allocation = allocate_scattered(
        config.topology, ranks, rng, name=f"nsl-{workload}"
    )
    level = NoiseLevel(noise)
    background = BackgroundTraffic.for_level(
        network,
        list(allocation),
        level,
        max_nodes=int(noise_nodes),
        fraction_of_free_nodes=0.9,
        name="wide-noise",
    )
    if background is not None:
        background.start()
    job = MpiJob(network, list(allocation), name=f"nsl-{workload}-{noise}")
    bench = _workload_factory(workload, scale)()
    result = bench.run(job)
    if background is not None:
        background.stop()
    stats = summarize(result.iteration_times)
    return {
        "metrics": {
            "median": stats.median,
            "qcd": stats.qcd,
            "noise_messages": float(background.messages_sent if background else 0),
        },
        "data": {
            "nodes": network.num_nodes,
            "ranks": ranks,
            "noise_nodes": int(noise_nodes) if background else 0,
            "backend": network.backend_name,
            "iteration_times": list(result.iteration_times),
        },
        "report": (
            f"{workload} x{ranks} ranks on {network.num_nodes} nodes, "
            f"noise={noise}({noise_nodes}): median {stats.median:.0f} cycles, "
            f"QCD {stats.qcd:.4f}"
        ),
    }
