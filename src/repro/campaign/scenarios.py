"""Built-in scenarios: figure wrappers plus fine-grained sweep grids.

Importing this module populates the registry with

* every per-figure experiment (registered from the ``figure*.py`` modules
  themselves via :func:`repro.campaign.registry.register_figure`), and
* generic parameterized scenarios whose grids the executor can fan out one
  cell at a time — the shape the paper's Figures 3 and 7 sweeps take when
  they are expressed as campaigns instead of bespoke serial loops.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.allocation.policies import (
    allocate_inter_blade_pair,
    allocate_inter_chassis_pair,
    allocate_inter_group_pair,
    allocate_intra_blade_pair,
    allocate_scattered,
)
from repro.analysis.reporting import BOXPLOT_COLUMNS, Table, boxplot_row
from repro.analysis.stats import summarize
from repro.campaign.registry import scenario
from repro.core.policy import StaticRoutingPolicy
from repro.experiments.harness import ExperimentScale, build_network, compare_policies
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.routing.modes import RoutingMode
from repro.workloads.base import Workload
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    PingPongBenchmark,
)

# Import for the registration side effect: each figure module registers
# itself as a zero-axis scenario.
from repro.experiments import (  # noqa: F401  (imported for side effects)
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    model_validation,
    table1,
)


def ensure_registered() -> None:
    """No-op: importing this module performs every registration."""


#: Placement name -> pair-allocation builder (the Figure 3 vocabulary).
PLACEMENTS: Dict[str, Callable] = {
    "inter-nodes": allocate_intra_blade_pair,
    "inter-blades": allocate_inter_blade_pair,
    "inter-chassis": allocate_inter_chassis_pair,
    "inter-groups": allocate_inter_group_pair,
}


def _pair_allocation(placement: str, scale: ExperimentScale):
    try:
        builder = PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown placement {placement!r} (known: {', '.join(sorted(PLACEMENTS))})"
        ) from None
    return builder(scale.topology())


@scenario(
    name="pingpong-placement",
    description="ping-pong latency/dispersion vs. placement, size and noise",
    axes={
        "placement": tuple(PLACEMENTS),
        "message_kib": (4, 16),
        "noise": ("none", "light"),
    },
    tags=("sweep", "microbench"),
)
def run_pingpong_placement(
    scale: ExperimentScale, *, placement: str, message_kib: int, noise: str
) -> Dict:
    """One grid cell of the Figure-3-style allocation sweep."""
    allocation = _pair_allocation(placement, scale)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    network = build_network(scale)
    background = BackgroundTraffic.for_level(
        network,
        list(allocation),
        NoiseLevel(noise),
        max_nodes=16,
        name=f"pp-{placement}",
    )
    if background is not None:
        background.start()
    job = MpiJob(network, list(allocation), name=f"pp-{placement}")
    workload = PingPongBenchmark(
        size_bytes=message_bytes,
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    result = workload.run(job)
    if background is not None:
        background.stop()
    stats = summarize(result.iteration_times)
    table = Table(
        title=f"ping-pong {message_bytes} B, {placement}, noise={noise}",
        columns=BOXPLOT_COLUMNS,
    )
    table.add_row(*boxplot_row(placement, result.iteration_times))
    return {
        "metrics": {"median": stats.median, "qcd": stats.qcd, "mean": stats.mean},
        "data": {
            "message_bytes": message_bytes,
            "iteration_times": list(result.iteration_times),
        },
        "report": table.render(),
    }


@scenario(
    name="routing-mode-pingpong",
    description="static routing modes vs. placement on a large ping-pong",
    axes={
        "placement": ("intra-group", "inter-groups"),
        "mode": tuple(mode.value for mode in RoutingMode),
        "message_kib": (32,),
    },
    tags=("sweep", "routing"),
)
def run_routing_mode(
    scale: ExperimentScale, *, placement: str, mode: str, message_kib: int
) -> Dict:
    """One grid cell of the Figure-7-style routing sweep."""
    if placement == "intra-group":
        allocation = allocate_inter_chassis_pair(scale.topology())
    elif placement == "inter-groups":
        allocation = allocate_inter_group_pair(scale.topology())
    else:
        raise ValueError(f"unknown placement {placement!r}")
    routing_mode = RoutingMode(mode)
    message_bytes = scale.scaled_size(int(message_kib) * 1024)
    network = build_network(scale)
    background = BackgroundTraffic.for_level(
        network,
        list(allocation),
        scale.noise_level,
        max_nodes=16,
        name=f"rm-{placement}",
    )
    if background is not None:
        background.start()
    job = MpiJob(
        network,
        list(allocation),
        policy_factory=lambda: StaticRoutingPolicy(routing_mode),
        name=f"rm-{placement}-{mode}",
    )
    sender = network.nic(allocation[0])
    before = sender.counters.snapshot()
    workload = PingPongBenchmark(
        size_bytes=message_bytes,
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    result = workload.run(job)
    delta = sender.counters.snapshot().delta(before)
    if background is not None:
        background.stop()
    stats = summarize(result.iteration_times)
    return {
        "metrics": {
            "median": stats.median,
            "qcd": stats.qcd,
            "stall_ratio": delta.stall_ratio,
            "avg_packet_latency": delta.avg_packet_latency,
        },
        "data": {
            "message_bytes": message_bytes,
            "iteration_times": list(result.iteration_times),
        },
        "report": (
            f"{placement} / {mode} / {message_bytes} B: "
            f"median {stats.median:.0f} cycles, QCD {stats.qcd:.4f}, "
            f"s {delta.stall_ratio:.4f}, L {delta.avg_packet_latency:.1f}"
        ),
    }


def _workload_factory(
    name: str, scale: ExperimentScale
) -> Callable[[], Workload]:
    if name == "pingpong":
        return lambda: PingPongBenchmark(
            size_bytes=scale.scaled_size(16 * 1024),
            iterations=scale.iterations,
            pingpongs_per_iteration=4,
        )
    if name == "allreduce":
        return lambda: AllreduceBenchmark(
            elements=max(8, int(512 * scale.message_scale)),
            iterations=scale.iterations,
        )
    if name == "alltoall":
        return lambda: AlltoallBenchmark(
            size_bytes=scale.scaled_size(1024), iterations=scale.iterations
        )
    if name == "barrier":
        return lambda: BarrierBenchmark(
            barriers_per_iteration=8, iterations=scale.iterations
        )
    raise ValueError(f"unknown workload {name!r}")


@scenario(
    name="policy-comparison",
    description="Default vs. HighBias vs. AppAware on a scattered allocation",
    axes={
        "workload": ("pingpong", "allreduce", "alltoall", "barrier"),
        "noise": ("light",),
    },
    tags=("sweep", "policy"),
)
def run_policy_comparison(scale: ExperimentScale, *, workload: str, noise: str) -> Dict:
    """One (workload, noise) cell of a Figure-8-style policy comparison."""
    topo = scale.topology()
    rng = random.Random(scale.seed)
    allocation = allocate_scattered(
        topo, scale.small_job_nodes, rng, name=f"pc-{workload}"
    )
    comparison = compare_policies(
        scale,
        allocation,
        _workload_factory(workload, scale),
        noise_level=NoiseLevel(noise),
    )
    normalized = comparison.normalized_medians()
    fraction = comparison.app_aware_fraction_default()
    metrics = {f"normalized.{name}": value for name, value in normalized.items()}
    if fraction is not None:
        metrics["app_aware_default_fraction"] = fraction
    table = Table(
        title=f"policy comparison — {workload}, noise={noise}",
        columns=["policy", "normalized median"],
    )
    for name, value in normalized.items():
        table.add_row(name, value)
    return {
        "metrics": metrics,
        "data": {"best": comparison.best_policy(), "allocation": allocation.name},
        "report": table.render() + f"\nbest: {comparison.best_policy()}",
    }
