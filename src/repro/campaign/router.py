"""Backend routing: cost-aware resolution of ``auto`` cells + audit sampling.

The planner expands grids into :class:`~repro.campaign.plan.RunSpec`s; this
module decides *where each cell runs*.  A :class:`BackendRouter` is the
policy object :func:`~repro.campaign.plan.plan_campaign` consumes:

1. every cell is profiled (:func:`profile_for` — machine size and traffic
   volume from the scale preset, refined by the scenario's ``cost_hints``)
   and costed under each backend with a registered cost model
   (:mod:`repro.model.cost`);
2. ``auto`` cells default to the highest-fidelity backend (``flit``), and
   are demoted to the cheapest backend — greedily, biggest savings first —
   until the plan's total estimated work fits the router's budget;
3. cells the router resolved carry ``routed_from="auto"``, which enters
   the spec hash (SPEC_FORMAT 3) so auto-routed results never alias
   explicitly pinned cache entries.

The module also owns the **audit sample**: a deterministic, seeded subset
of flow-routed cells paired with their flit twins, which the executor
re-runs on the high-fidelity backend to measure flow-vs-flit deltas
(:func:`select_audit_pairs`).
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.plan import (
    AUTO_BACKEND,
    FLOW_ONLY_TAG,
    CampaignPlan,
    RunSpec,
    scale_for,
)
from repro.campaign.registry import scenario_cost_hints, scenario_tags
from repro.model.base import BackendError, available_cost_models, cost_model_for
from repro.model.cost import CostEstimate, WorkloadProfile
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.store import ArtifactStore

#: Backends ordered most-faithful first; ``auto`` resolution prefers the
#: leftmost backend whose cost model is registered.
FIDELITY_ORDER: Tuple[str, ...] = ("flit", "flow")

#: Work units one second of recorded wall-clock converts to when a cell's
#: cost is seeded from store history.  Chosen so one second is the same
#: order of magnitude as the static proxies assign a one-second smoke cell
#: (~1e4 units), which keeps ``--budget`` values meaningful whether a plan
#: is costed from proxies, from history, or from a mix of both.
HISTORY_UNITS_PER_SECOND = 10_000.0

#: ``routed_from`` marker of flit audit twins.  An audit twin is *not* a
#: plain flit run — it executes in the audited flow cell's RNG universe —
#: so its hash must never alias an ordinary flit cache entry.
AUDIT_PROVENANCE = "audit"


class BudgetError(ValueError):
    """The plan cannot fit the requested work budget on any routing."""


@dataclass(frozen=True)
class CellCost:
    """Routing outcome of one cell: the concrete spec plus its estimates."""

    #: The resolved (concrete-backend) spec.
    spec: RunSpec
    #: Backend the cell was routed to (== ``spec.backend``).
    chosen: str
    #: Why: ``explicit`` (caller pinned it), ``pinned`` (flow-only tag),
    #: ``fidelity`` (auto default), ``cell-cap`` or ``budget`` (demoted).
    reason: str
    #: Per-backend estimates the decision was made over.
    estimates: Mapping[str, CostEstimate]

    @property
    def work(self) -> float:
        """Estimated work of the cell on its chosen backend."""
        return self.estimates[self.chosen].work


def _flits_per_message(scale, message_bytes: float) -> float:
    """Request flits per message under the scale's NIC packetization."""
    packet_bytes = max(1, scale.packet_payload_bytes)
    flit_bytes = max(1, scale.flit_payload_bytes)
    packets = max(1.0, math.ceil(message_bytes / packet_bytes))
    payload_flits = max(1, math.ceil(packet_bytes / flit_bytes))
    return packets * (1.0 + payload_flits)  # + 1 header flit per packet


def _default_messages(scale) -> float:
    """Generic traffic-volume heuristic for scenarios without cost hints.

    Sized after the built-in sweeps: a ping-pong style exchange plus a few
    messages per rank per iteration of a small collective job.  Scenarios
    whose volume matters for routing should register ``cost_hints``.
    """
    pingpong = 2.0 * (scale.pingpong_repetitions + 1)
    collective = scale.iterations * max(2, scale.small_job_nodes) * 4.0
    return pingpong + collective


def profile_for(spec: RunSpec) -> WorkloadProfile:
    """Build the cost-model profile for one cell.

    The machine comes from the spec's scale preset
    (:func:`~repro.campaign.plan.scale_for`, unseeded — valid for ``auto``
    specs); the traffic volume from the scenario's ``cost_hints`` callable
    when registered, else from :func:`_default_messages`.  Hints may also
    override ``nodes`` for scenarios that build their own (larger)
    topology than the preset's.
    """
    scale = scale_for(spec, seeded=False)
    topo = scale.topology()
    hints_fn = scenario_cost_hints(spec.scenario)
    hints: Dict[str, float] = {}
    if hints_fn is not None:
        hints = dict(hints_fn(scale, **spec.params_dict))
    nodes = int(hints.get("nodes", topo.num_nodes))
    if nodes != topo.num_nodes:
        routers = max(1, nodes // max(1, topo.nodes_per_router))
    else:
        routers = topo.num_routers
    links_per_router = max(
        1,
        (topo.blades_per_chassis - 1)
        + (topo.chassis_per_group - 1)
        + topo.global_links_per_router,
    )
    links = routers * links_per_router + 2 * nodes  # fabric + host links
    messages = float(hints.get("messages", _default_messages(scale)))
    message_bytes = float(
        hints.get("message_bytes", scale.scaled_size(16 * 1024))
    )
    avg_hops = 3.0 + (2.0 if topo.num_groups > 1 else 0.0)
    concurrent = float(hints.get("concurrent_flows", min(messages, 64.0)))
    return WorkloadProfile(
        nodes=nodes,
        routers=routers,
        links=links,
        messages=messages,
        flits_per_message=_flits_per_message(scale, message_bytes),
        avg_hops=avg_hops,
        concurrent_flows=concurrent,
    )


@dataclass(frozen=True)
class CostHistory:
    """Recorded wall-clock history of prior runs, for empirical cost seeding.

    The static cost models are planning proxies; once the store holds real
    ``elapsed_s`` measurements for a scenario on a backend at a scale, those
    measurements *are* the cost — wall-clock seconds are directly comparable
    across backends, which is exactly the property the proxies approximate.
    A (scenario, scale, backend) group needs at least ``min_runs`` recorded
    runs before it overrides the proxy: below that, one unlucky cell (cold
    caches, a loaded machine) would swing the routing.
    """

    #: (scenario, scale, backend) -> recorded elapsed_s samples.
    samples: Mapping[Tuple[str, str, str], Tuple[float, ...]] = field(
        default_factory=dict
    )
    #: Minimum recorded runs before history overrides the static proxy.
    min_runs: int = 3

    @staticmethod
    def from_store(
        store: Optional["ArtifactStore"], min_runs: int = 3
    ) -> "CostHistory":
        """Collect timing samples from a store's index (``None``-safe).

        Telemetry-derived ``sim_s`` (simulate phase only) is preferred over
        ``elapsed_s`` when present: it excludes report/audit/store overhead,
        so backend cost estimates track simulation work, not artifact I/O.
        """
        grouped: Dict[Tuple[str, str, str], List[float]] = {}
        if store is not None:
            for entry in store.index().values():
                elapsed = entry.get("sim_s")
                if not isinstance(elapsed, (int, float)) or elapsed < 0:
                    elapsed = entry.get("elapsed_s")
                if not isinstance(elapsed, (int, float)) or elapsed < 0:
                    continue
                key = (
                    str(entry.get("scenario", "")),
                    str(entry.get("scale", "")),
                    str(entry.get("backend", "")),
                )
                grouped.setdefault(key, []).append(float(elapsed))
        return CostHistory(
            samples={key: tuple(values) for key, values in grouped.items()},
            min_runs=min_runs,
        )

    def work_for(self, scenario: str, scale: str, backend: str) -> Optional[float]:
        """Empirical work estimate, or ``None`` below the evidence bar."""
        values = self.samples.get((scenario, scale, backend), ())
        if len(values) < self.min_runs:
            return None
        return statistics.median(values) * HISTORY_UNITS_PER_SECOND

    def runs_for(self, scenario: str, scale: str, backend: str) -> int:
        """How many recorded runs back the (scenario, scale, backend) group."""
        return len(self.samples.get((scenario, scale, backend), ()))


def _auto_candidates() -> Tuple[str, ...]:
    """Backends an ``auto`` cell may resolve to, most-faithful first."""
    modelled = set(available_cost_models())
    ordered = tuple(name for name in FIDELITY_ORDER if name in modelled)
    if not ordered:
        raise BackendError(
            "backend='auto' needs at least one backend with a registered "
            f"cost model (have: {', '.join(sorted(modelled)) or '<none>'})"
        )
    return ordered


def estimate_cell(
    spec: RunSpec,
    backends: Optional[Sequence[str]] = None,
    history: Optional[CostHistory] = None,
) -> Dict[str, CostEstimate]:
    """Cost one cell under the given (or its applicable) backends.

    A concrete spec is estimated on its own backend; an ``auto`` spec on
    every auto candidate.  Backends without a cost model are annotated
    with zero work (they cannot be auto-routed to, but an explicitly
    pinned cell on such a backend must still plan).

    With a :class:`CostHistory`, a backend whose (scenario, scale) group
    has enough recorded runs gets its estimate seeded from the measured
    wall-clock median instead of the static proxy; the estimate's detail
    then carries ``history_runs`` and ``history_median_s``.
    """
    profile = profile_for(spec)
    if backends is None:
        backends = _auto_candidates() if spec.is_auto else (spec.backend,)
    estimates: Dict[str, CostEstimate] = {}
    for name in backends:
        try:
            model = cost_model_for(name)
        except BackendError:
            estimates[name] = CostEstimate(
                backend=name, work=0.0, detail={"unmodelled": 1.0}
            )
        else:
            estimates[name] = model.estimate_cost(profile)
        if history is None:
            continue
        empirical = history.work_for(spec.scenario, spec.scale, name)
        if empirical is None:
            continue
        detail = dict(estimates[name].detail)
        # Measured runs make the backend "modelled" even without a proxy.
        detail.pop("unmodelled", None)
        detail["history_runs"] = float(history.runs_for(spec.scenario, spec.scale, name))
        detail["history_median_s"] = empirical / HISTORY_UNITS_PER_SECOND
        estimates[name] = CostEstimate(backend=name, work=empirical, detail=detail)
    return estimates


@dataclass(frozen=True)
class BackendRouter:
    """Plan-time policy resolving ``auto`` cells to concrete backends.

    ``prefer`` is the fidelity default (an auto cell runs there unless a
    cap forces it elsewhere); ``cell_cap`` caps any single cell's work;
    ``budget`` caps the plan's total work.  Audit re-runs are *not* a
    routing concern: pass ``audit_fraction`` to
    :func:`~repro.campaign.executor.execute_plan` (or ``--audit-fraction``
    on the CLI), which samples the routed plan via
    :func:`select_audit_pairs`.
    """

    prefer: str = "flit"
    budget: Optional[float] = None
    cell_cap: Optional[float] = None
    #: Recorded-run history seeding the estimates (PR-4 follow-on): cells
    #: whose (scenario, scale, backend) group has ``history.min_runs``
    #: prior runs in the store are costed from measured wall-clock medians
    #: instead of the static proxies.
    history: Optional[CostHistory] = None

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.cell_cap is not None and self.cell_cap <= 0:
            raise ValueError("cell_cap must be positive")

    def route(self, specs: Sequence[RunSpec]) -> List[CellCost]:
        """Resolve every spec to a concrete backend, honouring the caps.

        Explicitly pinned cells are cost-annotated but never moved; their
        estimated work still counts against the budget.  Raises
        :class:`BudgetError` when even the cheapest routing of every
        ``auto`` cell exceeds the budget.
        """
        chosen: List[str] = []
        reasons: List[str] = []
        estimates: List[Dict[str, CostEstimate]] = []
        for spec in specs:
            cell_estimates = estimate_cell(spec, history=self.history)
            estimates.append(cell_estimates)
            if not spec.is_auto:
                # A budget over a cell we cannot cost would be a silent lie:
                # the cell counts as free and "within budget" means nothing.
                if self.budget is not None and cell_estimates[spec.backend].detail.get(
                    "unmodelled"
                ):
                    raise BackendError(
                        f"cell {spec.label()} is pinned to backend "
                        f"{spec.backend!r}, which has no registered cost model "
                        "— a --budget cannot be enforced over it"
                    )
                chosen.append(spec.backend)
                reasons.append(
                    "pinned"
                    if FLOW_ONLY_TAG in scenario_tags(spec.scenario)
                    else "explicit"
                )
                continue
            candidates = list(cell_estimates)
            pick = self.prefer if self.prefer in candidates else candidates[0]
            reason = "fidelity"
            if self.cell_cap is not None and cell_estimates[pick].work > self.cell_cap:
                pick = min(candidates, key=lambda name: cell_estimates[name].work)
                reason = "cell-cap"
            chosen.append(pick)
            reasons.append(reason)

        if self.budget is not None:
            total = sum(estimates[i][chosen[i]].work for i in range(len(specs)))
            if total > self.budget:
                # Demote auto cells to their cheapest backend, biggest
                # savings first, until the plan fits.
                demotable = []
                for i, spec in enumerate(specs):
                    if not spec.is_auto:
                        continue
                    cheapest = min(
                        estimates[i], key=lambda name: estimates[i][name].work
                    )
                    savings = estimates[i][chosen[i]].work - estimates[i][cheapest].work
                    if savings > 0:
                        demotable.append((savings, i, cheapest))
                demotable.sort(key=lambda item: (-item[0], item[1]))
                for savings, i, cheapest in demotable:
                    if total <= self.budget:
                        break
                    total -= savings
                    chosen[i] = cheapest
                    reasons[i] = "budget"
                if total > self.budget:
                    raise BudgetError(
                        f"plan needs ~{total:.3g} work unit(s) even on the "
                        f"cheapest routing, over the budget of {self.budget:.3g} "
                        "— raise --budget, shrink the grid, or drop scenarios"
                    )

        cells: List[CellCost] = []
        for i, spec in enumerate(specs):
            resolved = spec.resolve(chosen[i]) if spec.is_auto else spec
            cells.append(
                CellCost(
                    spec=resolved,
                    chosen=chosen[i],
                    reason=reasons[i],
                    estimates=dict(estimates[i]),
                )
            )
        return cells


def select_audit_pairs(
    plan: CampaignPlan, fraction: float
) -> List[Tuple[RunSpec, RunSpec]]:
    """Deterministic, seeded audit sample: flow-routed cells + flit twins.

    Eligible cells run on the flow backend and belong to scenarios the
    flit backend can execute (``flow-only`` scenarios are excluded — there
    is no twin to audit against).  The sample size is
    ``ceil(fraction x eligible)``, so any positive fraction audits at
    least one cell; the draw is seeded from the campaign master seed via
    :func:`repro.sim.rng.derive_seed`, so the same plan always audits the
    same cells.  Pairs come back in plan order.

    The flit twin carries ``routed_from="audit"``: the executor runs it in
    the *flow cell's* RNG universe (same derived run seed, so allocation
    and noise draws are identical and the recorded deltas isolate model
    error from seed variance), which means its result is not a faithful
    plain flit run — the distinct provenance hash keeps it out of the
    ordinary flit cache.  Audit results are cached by the flow spec's hash
    instead (:meth:`~repro.campaign.store.ArtifactStore.save_audit`).
    """
    if fraction <= 0.0:
        return []
    eligible = [
        (index, spec)
        for index, spec in enumerate(plan)
        if spec.backend == "flow"
        and FLOW_ONLY_TAG not in scenario_tags(spec.scenario)
    ]
    if not eligible:
        return []
    count = min(len(eligible), math.ceil(fraction * len(eligible)))
    rng = random.Random(derive_seed(plan.seed, "campaign:audit"))
    sampled = sorted(rng.sample(range(len(eligible)), count))
    pairs: List[Tuple[RunSpec, RunSpec]] = []
    for pick in sampled:
        _, spec = eligible[pick]
        twin = replace(spec, backend="flit", routed_from=AUDIT_PROVENANCE)
        pairs.append((spec, twin))
    return pairs
