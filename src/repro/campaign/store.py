"""Result cache + artifact store for campaign runs.

Layout under the store root::

    index.json            # spec hash -> run metadata (scenario, params, ...)
    results/<hash>.json   # canonical JSON payload (byte-stable per spec)
    reports/<hash>.txt    # human-readable report text
    audits.json           # flow-spec hash -> audit metadata (flit twin, deltas)
    audits/<hash>.json    # flow-vs-flit audit payload, keyed by the flow hash
    probes/<hash>.json    # network-probe sidecar (link series, sampled decisions)

Result JSON is written with sorted keys and a fixed indent, so the same
:class:`~repro.campaign.plan.RunSpec` always produces byte-identical
artifacts — the determinism tests rely on this, and it makes the store
safely shareable/diffable across machines.

Concurrent writers and the journal
----------------------------------

Index writes are atomic (write a temp file, ``os.replace`` it) and merge
with the on-disk state first, so two processes saving disjoint runs into a
shared store can't truncate or clobber each other's entries.  The
distributed coordinator additionally saves with ``defer_index=True``:
result files land immediately but the index update is an O(1) append to
``journal.jsonl`` instead of a full index rewrite per streamed result.
Opening a store replays any pending journal (a crashed coordinator loses
nothing that reached disk), and :meth:`ArtifactStore.flush_journal` folds
the journal into ``index.json`` and removes it.
"""

from __future__ import annotations

import csv
import json
import os
import pathlib
import time
from typing import Dict, Iterator, List, Mapping, Optional

from repro.analysis.stats import percentile
from repro.campaign.plan import RunSpec


def canonical_json(payload: Mapping) -> str:
    """The byte-stable serialization used for all result artifacts."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def max_abs_rel_delta(deltas: Mapping[str, Mapping[str, float]]) -> Optional[float]:
    """Largest ``|rel|`` across audit delta entries, or ``None`` if no entry
    has one (all flit values zero, or no shared metrics at all).

    The single definition shared by :class:`ArtifactStore.save_audit` and
    :meth:`repro.campaign.executor.AuditRecord.max_abs_rel`, so the CLI run
    line and the status table can never disagree about the same audit.
    """
    rels = [
        abs(entry["rel"])
        for entry in deltas.values()
        if isinstance(entry, Mapping) and "rel" in entry
    ]
    return max(rels) if rels else None


class ArtifactStore:
    """Content-addressed store of campaign run results."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.reports_dir = self.root / "reports"
        self.audits_dir = self.root / "audits"
        self.probes_dir = self.root / "probes"
        self.index_path = self.root / "index.json"
        self.audits_index_path = self.root / "audits.json"
        self.journal_path = self.root / "journal.jsonl"
        # Directories are created lazily on first save() so that read-only
        # commands (status, dry-run) don't create stores as a side effect.
        self._index: Dict[str, Dict] = self._load_json(self.index_path)
        self._audits: Dict[str, Dict] = self._load_json(self.audits_index_path)
        #: Whether this store object journaled entries not yet flushed.
        self._journal_dirty = False
        # Crash recovery: deferred-index saves whose coordinator never
        # flushed are replayed (in memory — the next flush persists them).
        for spec_hash, entry in self._read_journal():
            self._index[spec_hash] = entry

    # -- index ---------------------------------------------------------------

    @staticmethod
    def _load_json(path: pathlib.Path) -> Dict[str, Dict]:
        if path.exists():
            return json.loads(path.read_text(encoding="utf-8"))
        return {}

    def _merge_write(self, path: pathlib.Path, current: Dict[str, Dict]) -> Dict[str, Dict]:
        # Merge with the on-disk index first so two processes sharing a store
        # (each saving disjoint runs) don't clobber each other's entries;
        # then write-then-rename so a crash mid-write can't truncate it.
        on_disk = self._load_json(path)
        on_disk.update(current)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(on_disk), encoding="utf-8")
        os.replace(tmp, path)
        return on_disk

    def _write_index(self) -> None:
        self._index = self._merge_write(self.index_path, self._index)

    def index(self) -> Dict[str, Dict]:
        """A copy of the index (hash -> metadata)."""
        return {k: dict(v) for k, v in self._index.items()}

    def __len__(self) -> int:
        return len(self._index)

    # -- cache protocol --------------------------------------------------------

    def result_path(self, spec: RunSpec) -> pathlib.Path:
        """Where the result JSON for a spec lives."""
        return self.results_dir / f"{spec.spec_hash()}.json"

    def report_path(self, spec: RunSpec) -> pathlib.Path:
        """Where the report text for a spec lives."""
        return self.reports_dir / f"{spec.spec_hash()}.txt"

    def has(self, spec: RunSpec) -> bool:
        """Whether a stored result exists for this exact spec."""
        return spec.spec_hash() in self._index and self.result_path(spec).exists()

    def load(self, spec: RunSpec) -> Dict:
        """Load the stored payload for a spec (KeyError if absent)."""
        if not self.has(spec):
            raise KeyError(f"no stored result for {spec.label()} ({spec.spec_hash()})")
        return json.loads(self.result_path(spec).read_text(encoding="utf-8"))

    def save(
        self,
        spec: RunSpec,
        payload: Mapping,
        report: str = "",
        elapsed: Optional[float] = None,
        defer_index: bool = False,
        telemetry: Optional[Mapping] = None,
        probes: Optional[Mapping] = None,
    ) -> pathlib.Path:
        """Persist one run's payload (and report text) and update the index.

        ``defer_index=True`` (streaming writers, e.g. the distributed
        coordinator) appends the index entry to the journal instead of
        rewriting ``index.json`` — an O(1) disk operation per result; call
        :meth:`flush_journal` when the stream ends.

        ``telemetry`` (a snapshot from :mod:`repro.telemetry`) is recorded
        in the index entry next to ``elapsed_s`` — never in the result
        payload, which must stay byte-identical per spec.  The store adds
        its own artifact-write time as the ``store`` phase and surfaces the
        snapshot's simulate-only time as ``sim_s``.

        ``probes`` (a snapshot from :mod:`repro.telemetry.probes`) lands as
        a per-cell sidecar under ``probes/<hash>.json`` with a small summary
        in the index entry — like telemetry, it is never part of the result
        payload.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.reports_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(spec)
        store_t0 = time.perf_counter()
        path.write_text(canonical_json(payload), encoding="utf-8")
        if report:
            self.report_path(spec).write_text(report + "\n", encoding="utf-8")
        store_s = time.perf_counter() - store_t0
        entry: Dict[str, object] = {
            "scenario": spec.scenario,
            "params": spec.params_dict,
            "scale": spec.scale,
            "seed": spec.seed,
            "backend": spec.backend,
            "result": str(path.relative_to(self.root)),
        }
        if spec.routed_from:
            entry["routed_from"] = spec.routed_from
        if report:
            entry["report"] = str(self.report_path(spec).relative_to(self.root))
        if elapsed is not None:
            entry["elapsed_s"] = round(elapsed, 3)
        if isinstance(payload, Mapping) and isinstance(payload.get("metrics"), Mapping):
            entry["metrics"] = dict(payload["metrics"])
        if telemetry is not None:
            snapshot = dict(telemetry)
            phases = dict(snapshot.get("phases") or {})
            phases["store"] = round(phases.get("store", 0.0) + store_s, 6)
            snapshot["phases"] = phases
            entry["telemetry"] = snapshot
            sim_s = snapshot.get("sim_s")
            if isinstance(sim_s, (int, float)):
                entry["sim_s"] = round(float(sim_s), 6)
        if probes is not None:
            self.probes_dir.mkdir(parents=True, exist_ok=True)
            probe_path = self.probe_path(spec)
            probe_path.write_text(canonical_json(probes), encoding="utf-8")
            entry["probes"] = str(probe_path.relative_to(self.root))
            entry["probe_summary"] = {
                "backend": probes.get("backend", ""),
                "series": len(probes.get("series") or []),
                "decisions_sampled": probes.get("decisions_sampled", 0),
                "flips": probes.get("flips", 0),
            }
        self._index[spec.spec_hash()] = entry
        if defer_index:
            self._append_journal(spec.spec_hash(), entry)
        else:
            self._write_index()
        return path

    # -- journal ----------------------------------------------------------------

    def _append_journal(self, spec_hash: str, entry: Mapping) -> None:
        line = json.dumps(
            {"hash": spec_hash, "entry": entry}, sort_keys=True, separators=(",", ":")
        )
        # One write syscall per line; concurrent appenders interleave whole
        # lines on POSIX O_APPEND semantics.
        with self.journal_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._journal_dirty = True

    def _read_journal(self):
        if not self.journal_path.exists():
            return
        for line in self.journal_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                item = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn final line from a crashed writer
            if isinstance(item, dict) and "hash" in item and "entry" in item:
                yield str(item["hash"]), dict(item["entry"])

    def flush_journal(self) -> None:
        """Fold pending journal entries into ``index.json`` and drop the journal.

        Re-reads the journal from disk first, so entries appended by *other*
        writers sharing the store are folded in too, not silently dropped.
        The index is also rewritten when *this* store journaled entries but
        the journal file is gone — a concurrent writer's flush unlinked it —
        since those entries may exist only in our in-memory index.  A store
        that never journaled anything is left untouched (no directories are
        created for stores that never saw a deferred save).
        """
        if not self.journal_path.exists() and not self._journal_dirty:
            return
        for spec_hash, entry in self._read_journal():
            self._index.setdefault(spec_hash, entry)
        self._write_index()
        self._journal_dirty = False
        try:
            self.journal_path.unlink()
        except FileNotFoundError:
            pass

    # -- probes -----------------------------------------------------------------

    def probe_path(self, spec: RunSpec) -> pathlib.Path:
        """Where the probe sidecar for a spec lives."""
        return self.probes_dir / f"{spec.spec_hash()}.json"

    def has_probes(self, spec: RunSpec) -> bool:
        """Whether a probe sidecar exists for this exact spec."""
        return self.probe_path(spec).exists()

    def load_probes(self, spec: RunSpec) -> Dict:
        """Load the probe sidecar for a spec (KeyError if absent)."""
        if not self.has_probes(spec):
            raise KeyError(f"no stored probes for {spec.label()} ({spec.spec_hash()})")
        return json.loads(self.probe_path(spec).read_text(encoding="utf-8"))

    def iter_probe_snapshots(self) -> Iterator[Dict[str, object]]:
        """Yield ``(index entry + snapshot)`` dicts for every probe sidecar.

        Each yielded dict is the probe snapshot augmented with ``hash``,
        ``scenario``, ``params`` and ``backend`` from the index, so
        analysis code can attribute series to cells without re-deriving
        spec hashes.  Sidecars whose index entry vanished (foreign file)
        are skipped.
        """
        for spec_hash in sorted(self._index):
            entry = self._index[spec_hash]
            rel = entry.get("probes")
            if not rel:
                continue
            path = self.root / str(rel)
            if not path.exists():
                continue
            try:
                snapshot = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            snapshot["hash"] = spec_hash
            snapshot["scenario"] = entry.get("scenario", "?")
            snapshot["params"] = entry.get("params", {})
            snapshot["cell_backend"] = entry.get("backend", "")
            yield snapshot

    # -- audits -----------------------------------------------------------------

    def audit_path(self, spec: RunSpec) -> pathlib.Path:
        """Where the audit payload for a (flow) spec lives."""
        return self.audits_dir / f"{spec.spec_hash()}.json"

    def has_audit(self, spec: RunSpec) -> bool:
        """Whether a flow-vs-flit audit exists for this exact (flow) spec."""
        return spec.spec_hash() in self._audits and self.audit_path(spec).exists()

    def save_audit(
        self,
        flow_spec: RunSpec,
        flit_spec: RunSpec,
        deltas: Mapping[str, Mapping[str, float]],
    ) -> pathlib.Path:
        """Persist one flow-vs-flit audit, keyed by the flow spec's hash.

        The payload records both canonical spec forms and the per-metric
        deltas (see :func:`repro.campaign.executor.metric_deltas`); the
        ``audits.json`` index keeps the summary used by ``status``.
        """
        self.audits_dir.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {
            "flow_spec": flow_spec.canonical(),
            "flit_spec": flit_spec.canonical(),
            "flow_hash": flow_spec.spec_hash(),
            "flit_hash": flit_spec.spec_hash(),
            "metrics": {k: dict(v) for k, v in deltas.items()},
        }
        path = self.audit_path(flow_spec)
        path.write_text(canonical_json(payload), encoding="utf-8")
        max_rel = max_abs_rel_delta(deltas)
        entry: Dict[str, object] = {
            "scenario": flow_spec.scenario,
            "params": flow_spec.params_dict,
            "flit_hash": flit_spec.spec_hash(),
            "metrics_compared": len(deltas),
            "audit": str(path.relative_to(self.root)),
        }
        if max_rel is not None:
            entry["max_abs_rel_delta"] = round(max_rel, 6)
        self._audits[flow_spec.spec_hash()] = entry
        self._audits = self._merge_write(self.audits_index_path, self._audits)
        return path

    def load_audit(self, spec: RunSpec) -> Dict:
        """Load the stored audit payload for a (flow) spec (KeyError if absent)."""
        if not self.has_audit(spec):
            raise KeyError(
                f"no stored audit for {spec.label()} ({spec.spec_hash()})"
            )
        return json.loads(self.audit_path(spec).read_text(encoding="utf-8"))

    def audit_index(self) -> Dict[str, Dict]:
        """A copy of the audit index (flow hash -> audit metadata)."""
        return {k: dict(v) for k, v in self._audits.items()}

    def audit_rows(self) -> List[Dict[str, object]]:
        """One row per stored audit, for the status table."""
        rows: List[Dict[str, object]] = []
        for flow_hash in sorted(self._audits):
            entry = self._audits[flow_hash]
            rows.append(
                {
                    "flow_hash": flow_hash,
                    "flit_hash": entry.get("flit_hash", "?"),
                    "scenario": entry.get("scenario", "?"),
                    "params": json.dumps(entry.get("params", {}), sort_keys=True),
                    "metrics_compared": entry.get("metrics_compared", 0),
                    "max_abs_rel_delta": entry.get("max_abs_rel_delta", ""),
                }
            )
        return rows

    # -- reporting --------------------------------------------------------------

    def iter_status_rows(self) -> Iterator[Dict[str, object]]:
        """Yield one row per stored run, lazily, in stable hash order.

        The streaming form of :meth:`status_rows`: consumers that write
        rows out as they go (the CSV export) never hold more than one row,
        which is what keeps larger-than-memory campaign exports flat.
        """
        for spec_hash in sorted(self._index):
            entry = self._index[spec_hash]
            row: Dict[str, object] = {
                "hash": spec_hash,
                "scenario": entry.get("scenario", "?"),
                "scale": entry.get("scale", "?"),
                "seed": entry.get("seed", ""),
                "params": json.dumps(entry.get("params", {}), sort_keys=True),
                "backend": entry.get("backend", ""),
                "routed_from": entry.get("routed_from", ""),
                "elapsed_s": entry.get("elapsed_s", ""),
                "sim_s": entry.get("sim_s", ""),
            }
            for name, value in sorted((entry.get("metrics") or {}).items()):
                row[f"metric.{name}"] = value
            yield row

    def status_rows(self) -> List[Dict[str, object]]:
        """One row per stored run, for status tables (materialized)."""
        return list(self.iter_status_rows())

    def csv_columns(self) -> List[str]:
        """The CSV header: base columns plus every metric column in use.

        Computed from the index metadata alone (metric *names*, not rows),
        so the export can stream without a first pass over full rows.
        """
        columns: List[str] = [
            "hash", "scenario", "scale", "seed", "params", "backend",
            "routed_from", "elapsed_s", "sim_s",
        ]
        metric_names = set()
        for entry in self._index.values():
            metric_names.update((entry.get("metrics") or {}).keys())
        columns.extend(f"metric.{name}" for name in sorted(metric_names))
        return columns

    def export_csv(self, path) -> pathlib.Path:
        """Write all stored runs (one row each, metrics flattened) as CSV.

        Rows stream straight from the index to the file one at a time —
        the export never materializes the result set, so store size is
        bounded by disk, not by this process's memory.
        """
        path = pathlib.Path(path)
        columns = self.csv_columns()
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.iter_status_rows():
                writer.writerow(row)
        return path

    def timing_rows(self) -> List[Dict[str, object]]:
        """Per-phase latency aggregates over every stored telemetry snapshot.

        One row per (scenario, backend, phase) with count, p50/p95 (ms) and
        total seconds — the data behind ``repro campaign status --timings``.
        Entries without a ``telemetry`` key (old stores, untraced runs) are
        simply skipped.
        """
        groups: Dict[tuple, List[float]] = {}
        for entry in self._index.values():
            snapshot = entry.get("telemetry")
            if not isinstance(snapshot, Mapping):
                continue
            phases = snapshot.get("phases")
            if not isinstance(phases, Mapping):
                continue
            scenario = str(entry.get("scenario", "?"))
            backend = str(entry.get("backend", ""))
            for phase, duration in phases.items():
                try:
                    duration = float(duration)
                except (TypeError, ValueError):
                    continue
                groups.setdefault((scenario, backend, str(phase)), []).append(duration)
        rows: List[Dict[str, object]] = []
        for (scenario, backend, phase), durations in sorted(groups.items()):
            rows.append(
                {
                    "scenario": scenario,
                    "backend": backend,
                    "phase": phase,
                    "n": len(durations),
                    "p50_ms": round(percentile(durations, 50) * 1000.0, 3),
                    "p95_ms": round(percentile(durations, 95) * 1000.0, 3),
                    "total_s": round(sum(durations), 3),
                }
            )
        return rows

    # -- session telemetry -------------------------------------------------------

    @property
    def telemetry_dir(self) -> pathlib.Path:
        """Where campaign-lifecycle telemetry (dist timelines) lives."""
        return self.root / "telemetry"

    def save_session_telemetry(self, payload: Mapping) -> pathlib.Path:
        """Persist one campaign session's lifecycle telemetry.

        Used by the distributed coordinator for shard timelines, heartbeat
        gaps and revocations — data that belongs to the *session*, not to
        any single cell.  Files are numbered, so repeated sessions against
        the same store accumulate instead of overwriting.
        """
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.telemetry_dir.glob("session-*.json"))
        path = self.telemetry_dir / f"session-{len(existing):04d}.json"
        path.write_text(canonical_json(payload), encoding="utf-8")
        return path

    def load_session_telemetry(self) -> List[Dict]:
        """All stored session telemetry payloads, in session order."""
        if not self.telemetry_dir.exists():
            return []
        payloads: List[Dict] = []
        for path in sorted(self.telemetry_dir.glob("session-*.json")):
            try:
                payloads.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        return payloads

    def summary(self) -> Dict[str, int]:
        """Stored-run counts per scenario."""
        counts: Dict[str, int] = {}
        for entry in self._index.values():
            name = entry.get("scenario", "?")
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def family_rollups(self) -> List[Dict[str, object]]:
        """One aggregate row per scenario family, for ``campaign status``.

        Each row carries the run count plus the distinct scales, backends
        and seed count seen for that family, and total/median wall-clock
        seconds — enough to see at a glance which families dominate a
        store and whether a sweep covered every backend it meant to.
        """
        groups: Dict[str, List[Dict]] = {}
        for entry in self._index.values():
            groups.setdefault(str(entry.get("scenario", "?")), []).append(entry)
        rows: List[Dict[str, object]] = []
        for name in sorted(groups):
            entries = groups[name]
            elapsed = [
                float(e["elapsed_s"])
                for e in entries
                if isinstance(e.get("elapsed_s"), (int, float))
            ]
            rows.append(
                {
                    "scenario": name,
                    "runs": len(entries),
                    "scales": sorted(
                        {str(e["scale"]) for e in entries if e.get("scale")}
                    ),
                    "backends": sorted(
                        {str(e["backend"]) for e in entries if e.get("backend")}
                    ),
                    "seeds": len({e.get("seed") for e in entries}),
                    "elapsed_total_s": round(sum(elapsed), 3) if elapsed else 0.0,
                    "elapsed_p50_s": (
                        round(percentile(elapsed, 50), 3) if elapsed else 0.0
                    ),
                }
            )
        return rows
