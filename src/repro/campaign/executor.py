"""Parallel campaign execution over ``multiprocessing``.

The executor takes a :class:`~repro.campaign.plan.CampaignPlan`, skips every
spec the :class:`~repro.campaign.store.ArtifactStore` already holds, and
fans the cache misses out over a process pool.  Worker processes receive
only the picklable :class:`~repro.campaign.plan.RunSpec`; they re-resolve
the scenario from the registry and re-derive the run's master seed, so the
result of a spec is identical whether it runs inline or in a worker.

The pool uses the ``fork`` start method where available (Linux/macOS), so
children inherit every registered scenario.  Under ``spawn`` (Windows)
children rebuild the registry by importing :mod:`repro.campaign.scenarios`;
scenarios registered anywhere else (e.g. ad hoc in a script) are then not
visible to workers — register them in an imported module, or run with
``workers=1``.  Records are always returned in plan order regardless of
which worker finished first.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.plan import CampaignPlan, RunSpec
from repro.campaign.registry import ScenarioError, get_scenario
from repro.campaign.store import ArtifactStore
from repro.experiments.harness import ExperimentScale


@dataclass
class RunRecord:
    """Outcome of one planned run."""

    spec: RunSpec
    payload: Optional[Dict] = None
    report: str = ""
    cached: bool = False
    elapsed_s: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        """Whether the run produced (or re-used) a result."""
        return self.payload is not None and not self.error


@dataclass
class CampaignResult:
    """All records of one campaign execution, in plan order."""

    plan: CampaignPlan
    records: List[RunRecord] = field(default_factory=list)
    workers: int = 1

    @property
    def executed(self) -> int:
        """Runs actually simulated this invocation."""
        return sum(1 for r in self.records if r.ok and not r.cached)

    @property
    def cached(self) -> int:
        """Runs satisfied from the artifact store."""
        return sum(1 for r in self.records if r.cached)

    @property
    def failed(self) -> int:
        """Runs that raised."""
        return sum(1 for r in self.records if r.error)

    def summary(self) -> str:
        """One-line outcome summary."""
        return (
            f"{len(self.records)} run(s): {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.workers} worker(s))"
        )


def scale_for(spec: RunSpec) -> ExperimentScale:
    """The :class:`ExperimentScale` a spec executes at (seed already derived).

    The spec's backend is threaded into the scale so that every network the
    scenario builds through the harness resolves on the requested substrate.
    """
    return (
        ExperimentScale.preset(spec.scale)
        .with_seed(spec.run_seed())
        .with_backend(spec.backend)
    )


def execute_spec(spec: RunSpec) -> Tuple[Dict, str, float]:
    """Execute one run spec; returns ``(payload, report_text, elapsed_s)``.

    This is the worker entry point: it must stay importable at module level
    (spawn start method) and must derive everything from the spec alone.
    """
    from repro.campaign import ensure_builtin_scenarios

    ensure_builtin_scenarios()
    scenario = get_scenario(spec.scenario)
    start = time.perf_counter()
    payload = scenario.runner(scale_for(spec), **spec.params_dict)
    elapsed = time.perf_counter() - start
    payload = _checked_json(spec, payload)
    return payload, scenario.render_report(payload), elapsed


def _checked_json(spec: RunSpec, payload) -> Dict:
    """Round-trip the payload through JSON so cached == fresh results."""
    if not isinstance(payload, dict):
        raise TypeError(
            f"scenario {spec.scenario!r} returned {type(payload).__name__}, "
            "expected a JSON-safe dict"
        )
    try:
        # allow_nan=False: NaN/Infinity are not valid JSON and would poison
        # the store's "shareable/diffable" artifact contract.
        return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"scenario {spec.scenario!r} returned a non-JSON-safe payload: {exc}"
        ) from exc


ProgressFn = Callable[[int, int, RunRecord], None]


def execute_plan(
    plan: CampaignPlan,
    store: Optional[ArtifactStore] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    force: bool = False,
) -> CampaignResult:
    """Execute a plan, using the store as a cache and artifact sink.

    ``workers > 1`` fans cache misses out over a process pool; results are
    reassembled in plan order either way.  ``force=True`` re-executes specs
    even when the store already holds them.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    result = CampaignResult(plan=plan, workers=workers)
    records: List[Optional[RunRecord]] = [None] * len(plan)
    misses: List[Tuple[int, RunSpec]] = []

    for index, spec in enumerate(plan):
        if store is not None and not force and store.has(spec):
            payload = store.load(spec)
            report = payload.get("report", "") if isinstance(payload, dict) else ""
            records[index] = RunRecord(
                spec=spec,
                payload=payload,
                report=report if isinstance(report, str) else "",
                cached=True,
            )
        else:
            misses.append((index, spec))
    total = len(plan)
    reported = 0
    if progress is not None:
        # Announce cache hits up front, in plan order.
        for record in records:
            if record is not None:
                reported += 1
                progress(reported, total, record)

    def finish(index: int, record: RunRecord) -> None:
        nonlocal reported
        records[index] = record
        if record.ok and not record.cached and store is not None:
            store.save(record.spec, record.payload, record.report, record.elapsed_s)
        if progress is not None:
            reported += 1
            progress(reported, total, record)

    if misses and workers == 1:
        for index, spec in misses:
            finish(index, _run_one(spec))
    elif misses:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(misses))) as pool:
            outcomes = pool.imap(_run_one, [spec for _, spec in misses], chunksize=1)
            for (index, _spec), record in zip(misses, outcomes):
                finish(index, record)

    result.records = [r for r in records if r is not None]
    return result


def _run_one(spec: RunSpec) -> RunRecord:
    """Execute one spec, capturing failures as a record (pool-safe)."""
    try:
        payload, report, elapsed = execute_spec(spec)
    except ScenarioError as exc:
        # Most likely cause in a worker: spawn start method + a scenario
        # registered outside repro.campaign.scenarios (see module docstring).
        return RunRecord(
            spec=spec,
            error=(
                f"{type(exc).__name__}: {exc} — if this scenario is registered "
                "in your own module, workers started via 'spawn' cannot see it; "
                "register it in an imported module or use workers=1"
            ),
        )
    except Exception as exc:  # noqa: BLE001 - failures become part of the result
        return RunRecord(spec=spec, error=f"{type(exc).__name__}: {exc}")
    return RunRecord(spec=spec, payload=payload, report=report, elapsed_s=elapsed)


def _pool_context():
    """Prefer fork (fast, Linux) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")
