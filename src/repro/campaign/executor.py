"""Parallel campaign execution over ``multiprocessing``.

The executor takes a :class:`~repro.campaign.plan.CampaignPlan`, skips every
spec the :class:`~repro.campaign.store.ArtifactStore` already holds, and
fans the cache misses out over a process pool.  Worker processes receive
only the picklable :class:`~repro.campaign.plan.RunSpec`; they re-resolve
the scenario from the registry and re-derive the run's master seed, so the
result of a spec is identical whether it runs inline or in a worker.

The pool uses the ``fork`` start method where available (Linux/macOS), so
children inherit every registered scenario.  Under ``spawn`` (Windows)
children rebuild the registry by importing :mod:`repro.campaign.scenarios`;
scenarios registered anywhere else (e.g. ad hoc in a script) are then not
visible to workers — register them in an imported module, or run with
``workers=1``.  Records are always returned in plan order regardless of
which worker finished first.

After the main pass the executor can run **flit audits**: a deterministic,
seeded sample of the plan's flow-routed cells (``audit_fraction`` > 0,
sampled by :func:`repro.campaign.router.select_audit_pairs`) is re-run on
the flit backend and the flow-vs-flit metric deltas are persisted in the
artifact store — the campaign-level spot-check against the high-fidelity
simulator.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

# scale_for moved to the plan module (the planner's cost estimation and the
# executor must resolve scales identically); re-exported here for back-compat.
from repro.campaign.plan import CampaignPlan, RunSpec, scale_for  # noqa: F401
from repro.campaign.registry import ScenarioError, get_scenario
from repro.campaign.router import select_audit_pairs
from repro.campaign.store import ArtifactStore, max_abs_rel_delta
from repro.telemetry.core import TELEMETRY, capture, timed
from repro.telemetry.probes import probe_capture


@dataclass
class RunRecord:
    """Outcome of one planned run."""

    spec: RunSpec
    payload: Optional[Dict] = None
    report: str = ""
    cached: bool = False
    elapsed_s: float = 0.0
    error: str = ""
    #: Compact telemetry snapshot (phases/spans/counters) when tracing was
    #: enabled for this cell; None otherwise.  Never part of the payload —
    #: payloads must stay byte-identical across runs of the same spec.
    telemetry: Optional[Dict] = None
    #: Probe snapshot (link time series + routing-decision audit) when
    #: network probes were enabled; None otherwise.  Same contract as
    #: ``telemetry``: sidecar data only, never part of the payload.
    probes: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        """Whether the run produced (or re-used) a result."""
        return self.payload is not None and not self.error


@dataclass
class AuditRecord:
    """One flow-vs-flit audit: the audited cell, its twin run, the deltas."""

    #: The flow-routed cell that was audited.
    spec: RunSpec
    #: The concrete flit spec re-run for comparison.
    twin: RunSpec
    #: Outcome of the flit twin run (may be cached, may have failed).
    record: RunRecord
    #: metric name -> {"flow", "flit", "delta"[, "rel"]} over shared metrics.
    deltas: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the audit produced a comparable flit result."""
        return self.record.ok

    def max_abs_rel(self) -> Optional[float]:
        """Largest relative deviation across the compared metrics."""
        return max_abs_rel_delta(self.deltas)


@dataclass
class CampaignResult:
    """All records of one campaign execution, in plan order."""

    plan: CampaignPlan
    records: List[RunRecord] = field(default_factory=list)
    workers: int = 1
    #: Flit audit re-runs of sampled flow-routed cells (post-pass).
    audits: List[AuditRecord] = field(default_factory=list)

    @property
    def executed(self) -> int:
        """Runs actually simulated this invocation."""
        return sum(1 for r in self.records if r.ok and not r.cached)

    @property
    def cached(self) -> int:
        """Runs satisfied from the artifact store."""
        return sum(1 for r in self.records if r.cached)

    @property
    def failed(self) -> int:
        """Runs that raised."""
        return sum(1 for r in self.records if r.error)

    def summary(self) -> str:
        """One-line outcome summary."""
        text = (
            f"{len(self.records)} run(s): {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.workers} worker(s))"
        )
        if self.audits:
            ok = sum(1 for audit in self.audits if audit.ok)
            text += f", {ok}/{len(self.audits)} audit(s)"
        return text


def execute_spec(spec: RunSpec) -> Tuple[Dict, str, float]:
    """Execute one run spec; returns ``(payload, report_text, elapsed_s)``.

    This is the worker entry point: it must stay importable at module level
    (spawn start method) and must derive everything from the spec alone.
    """
    from repro.campaign import ensure_builtin_scenarios

    ensure_builtin_scenarios()
    scenario = get_scenario(spec.scenario)
    with timed("simulate", scenario=spec.scenario, backend=spec.backend) as t:
        payload = scenario.runner(scale_for(spec), **spec.params_dict)
    payload = _checked_json(spec, payload)
    with timed("report"):
        report = scenario.render_report(payload)
    return payload, report, t.elapsed


def _checked_json(spec: RunSpec, payload) -> Dict:
    """Round-trip the payload through JSON so cached == fresh results."""
    if not isinstance(payload, dict):
        raise TypeError(
            f"scenario {spec.scenario!r} returned {type(payload).__name__}, "
            "expected a JSON-safe dict"
        )
    try:
        # allow_nan=False: NaN/Infinity are not valid JSON and would poison
        # the store's "shareable/diffable" artifact contract.
        return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"scenario {spec.scenario!r} returned a non-JSON-safe payload: {exc}"
        ) from exc


ProgressFn = Callable[[int, int, RunRecord], None]


def metric_deltas(flow_payload: Mapping, flit_payload: Mapping) -> Dict[str, Dict[str, float]]:
    """Per-metric flow-vs-flit deltas over the metrics both payloads share.

    Each entry carries the two absolute values, their difference
    (``flow - flit``) and, when the flit value is non-zero, the relative
    deviation ``delta / |flit|``.  Metrics present on only one side are
    skipped — backends legitimately expose extra metrics (e.g. the flow
    solver's ``peak_flows``).
    """
    flow_metrics = flow_payload.get("metrics") if isinstance(flow_payload, Mapping) else None
    flit_metrics = flit_payload.get("metrics") if isinstance(flit_payload, Mapping) else None
    if not isinstance(flow_metrics, Mapping) or not isinstance(flit_metrics, Mapping):
        return {}
    deltas: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(flow_metrics) & set(flit_metrics)):
        try:
            flow_value = float(flow_metrics[name])
            flit_value = float(flit_metrics[name])
        except (TypeError, ValueError):
            continue
        entry = {
            "flow": flow_value,
            "flit": flit_value,
            "delta": flow_value - flit_value,
        }
        if flit_value:
            entry["rel"] = (flow_value - flit_value) / abs(flit_value)
        deltas[name] = entry
    return deltas


def execute_plan(
    plan: CampaignPlan,
    store: Optional[ArtifactStore] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    force: bool = False,
    audit_fraction: float = 0.0,
) -> CampaignResult:
    """Execute a plan, using the store as a cache and artifact sink.

    ``workers > 1`` fans cache misses out over a process pool; results are
    reassembled in plan order either way.  ``force=True`` re-executes specs
    even when the store already holds them.

    ``audit_fraction > 0`` enables the audit post-pass: a deterministic,
    seeded sample of the plan's flow-routed cells is re-run on the flit
    backend (serially — audits are a small high-fidelity sample by design)
    and the flow-vs-flit deltas are recorded in the result and the store.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    result = CampaignResult(plan=plan, workers=workers)
    records: List[Optional[RunRecord]] = [None] * len(plan)
    misses: List[Tuple[int, RunSpec]] = []

    for index, spec in enumerate(plan):
        if store is not None and not force and store.has(spec):
            payload = store.load(spec)
            report = payload.get("report", "") if isinstance(payload, dict) else ""
            records[index] = RunRecord(
                spec=spec,
                payload=payload,
                report=report if isinstance(report, str) else "",
                cached=True,
            )
        else:
            misses.append((index, spec))
    total = len(plan)
    reported = 0
    if progress is not None:
        # Announce cache hits up front, in plan order.
        for record in records:
            if record is not None:
                reported += 1
                progress(reported, total, record)

    def finish(index: int, record: RunRecord) -> None:
        nonlocal reported
        records[index] = record
        if record.ok and not record.cached and store is not None:
            store.save(record.spec, record.payload, record.report,
                       record.elapsed_s, telemetry=record.telemetry,
                       probes=record.probes)
        if progress is not None:
            reported += 1
            progress(reported, total, record)

    if misses and workers == 1:
        for index, spec in misses:
            finish(index, run_cell(spec))
    elif misses:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(misses))) as pool:
            outcomes = pool.imap(run_cell, [spec for _, spec in misses], chunksize=1)
            for (index, _spec), record in zip(misses, outcomes):
                finish(index, record)

    result.records = [r for r in records if r is not None]
    if audit_fraction > 0.0:
        run_audits(plan, result, store, audit_fraction, force=force)
    return result


def run_audits(
    plan: CampaignPlan,
    result: CampaignResult,
    store: Optional[ArtifactStore],
    fraction: float,
    force: bool = False,
) -> None:
    """The audit post-pass: re-run sampled flow cells on flit, record deltas.

    The twin executes in the flow cell's RNG universe (see
    :func:`_run_audit_twin`) so the deltas isolate model error.  Stored
    audits are keyed by the *flow* spec's hash and reused on re-runs
    (unless ``force``), so a repeated audited campaign is as incremental
    as an unaudited one.
    """
    by_spec = {record.spec: record for record in result.records}
    for flow_spec, twin in select_audit_pairs(plan, fraction):
        flow_record = by_spec.get(flow_spec)
        if flow_record is None or not flow_record.ok:
            continue  # nothing comparable to audit against
        if store is not None and not force and store.has_audit(flow_spec):
            payload = store.load_audit(flow_spec)
            deltas = payload.get("metrics", {}) if isinstance(payload, dict) else {}
            twin_record = RunRecord(
                spec=twin,
                payload={
                    "metrics": {
                        name: entry.get("flit")
                        for name, entry in deltas.items()
                        if isinstance(entry, dict)
                    }
                },
                cached=True,
            )
            result.audits.append(
                AuditRecord(spec=flow_spec, twin=twin, record=twin_record, deltas=deltas)
            )
            continue
        twin_record = _run_audit_twin(flow_spec, twin)
        audit = AuditRecord(spec=flow_spec, twin=twin, record=twin_record)
        if twin_record.ok:
            audit.deltas = metric_deltas(flow_record.payload, twin_record.payload)
            if store is not None:
                store.save_audit(flow_spec, twin, audit.deltas)
        result.audits.append(audit)


def _run_audit_twin(flow_spec: RunSpec, twin: RunSpec) -> RunRecord:
    """Execute a flit audit twin in the audited flow cell's RNG universe.

    The scale is seeded with the *flow* spec's derived run seed — only the
    substrate changes — so the twin reproduces the exact allocation and
    noise draws of the audited run and the flow-vs-flit deltas measure the
    flow model's error, not seed-to-seed variance.  That foreign seed is
    also why the twin's result must never enter the ordinary run cache
    (its ``routed_from="audit"`` hash keeps it out).
    """
    from repro.campaign import ensure_builtin_scenarios

    with capture() as cap, probe_capture() as pcap:
        try:
            ensure_builtin_scenarios()
            scenario = get_scenario(twin.scenario)
            scale = scale_for(flow_spec).with_backend(twin.backend)
            with timed("audit", scenario=twin.scenario, backend=twin.backend) as t:
                payload = scenario.runner(scale, **twin.params_dict)
            payload = _checked_json(twin, payload)
            with timed("report"):
                report = scenario.render_report(payload)
        except Exception as exc:  # noqa: BLE001 - failures become part of the result
            return RunRecord(spec=twin, error=f"{type(exc).__name__}: {exc}")
    return RunRecord(
        spec=twin,
        payload=payload,
        report=report,
        elapsed_s=t.elapsed,
        telemetry=cap.snapshot(),
        probes=pcap.snapshot(),
    )


def run_cell(spec: RunSpec) -> RunRecord:
    """Execute one cell, capturing failures as a record.

    The reusable single-cell runner: everything that executes specs — the
    serial loop, the ``multiprocessing`` pool and the distributed workers
    (:mod:`repro.campaign.dist.worker`) — goes through here, so a cell's
    outcome is identical no matter which execution substrate ran it.  Must
    stay importable at module level (pool pickling under ``spawn``).
    """
    with capture() as cap, probe_capture() as pcap:
        try:
            payload, report, elapsed = execute_spec(spec)
        except ScenarioError as exc:
            # Most likely cause in a worker: spawn start method + a scenario
            # registered outside repro.campaign.scenarios (see module docstring).
            return RunRecord(
                spec=spec,
                error=(
                    f"{type(exc).__name__}: {exc} — if this scenario is registered "
                    "in your own module, workers started via 'spawn' cannot see it; "
                    "register it in an imported module or use workers=1"
                ),
            )
        except Exception as exc:  # noqa: BLE001 - failures become part of the result
            return RunRecord(spec=spec, error=f"{type(exc).__name__}: {exc}")
    return RunRecord(
        spec=spec,
        payload=payload,
        report=report,
        elapsed_s=elapsed,
        telemetry=cap.snapshot(),
        probes=pcap.snapshot(),
    )


def _pool_context():
    """Prefer fork (fast, Linux) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")
