"""Scenario registry: named, parameterized experiment specs.

A *scenario* is the unit the campaign engine plans and executes: a name, a
set of sweepable axes (each with a default value grid) and a runner that
turns one point of the grid into a JSON-safe result payload::

    @scenario(
        name="pingpong-allocation",
        description="ping-pong latency vs. placement",
        axes={"placement": ("same-blade", "inter-groups"), "message_kib": (4, 16)},
    )
    def run_pingpong(scale, *, placement, message_kib):
        ...
        return {"metrics": {"median": ...}, "data": {...}}

Payload contract (enforced by the executor):

* the payload must be JSON-serializable;
* an optional ``"metrics"`` entry maps flat metric names to numbers — this
  is what the store's CSV export and :func:`repro.analysis.reporting.
  campaign_metrics_table` consume;
* an optional ``"report"`` entry carries the human-readable table text.

The per-figure experiment drivers register themselves through
:func:`register_figure`, which wraps their existing ``run``/``report`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

#: Parameter values must be JSON scalars so spec hashes are stable.
SCALAR_TYPES = (str, int, float, bool, type(None))


class ScenarioError(LookupError):
    """Unknown scenario name or invalid registration.

    Subclasses :class:`LookupError` rather than :class:`KeyError` so that
    ``str(exc)`` is the plain message (``KeyError.__str__`` repr-quotes it,
    which garbles CLI error output).
    """


@dataclass(frozen=True)
class Scenario:
    """A named, parameterized experiment spec."""

    name: str
    description: str
    #: axis name -> tuple of default grid values (JSON scalars).
    axes: Mapping[str, Tuple[object, ...]]
    #: ``runner(scale, **params) -> payload dict`` (JSON-safe).
    runner: Callable[..., Mapping]
    tags: Tuple[str, ...] = ()
    #: Optional ``reporter(payload) -> str``; defaults to ``payload["report"]``.
    reporter: Optional[Callable[[Mapping], str]] = None
    #: Optional ``cost_hints(scale, **params) -> mapping`` refining the
    #: planner's per-cell workload profile for backend routing.  Recognized
    #: keys (all optional): ``nodes`` (machine size, for scenarios that
    #: build their own topology), ``messages`` (total messages incl.
    #: background traffic), ``message_bytes`` (typical payload) and
    #: ``concurrent_flows`` (peak in-flight fluid flows).  Scenarios
    #: without hints are profiled with a generic scale-derived heuristic.
    cost_hints: Optional[Callable[..., Mapping[str, float]]] = None

    def grid_size(self) -> int:
        """Number of runs the default grid expands to."""
        size = 1
        for values in self.axes.values():
            size *= max(1, len(values))
        return size

    def render_report(self, payload: Mapping) -> str:
        """Human-readable report for one payload."""
        if self.reporter is not None:
            return self.reporter(payload)
        report = payload.get("report")
        if isinstance(report, str):
            return report
        import json

        return json.dumps(payload, sort_keys=True, indent=2)


_REGISTRY: Dict[str, Scenario] = {}


def register(spec: Scenario) -> Scenario:
    """Add a scenario to the global registry (duplicate names are an error)."""
    if spec.name in _REGISTRY:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _validate_axes(spec)
    _REGISTRY[spec.name] = spec
    return spec


def _validate_axes(spec: Scenario) -> None:
    for axis, values in spec.axes.items():
        if not isinstance(values, (tuple, list)) or not values:
            raise ScenarioError(
                f"scenario {spec.name!r}: axis {axis!r} needs a non-empty value sequence"
            )
        for value in values:
            if not isinstance(value, SCALAR_TYPES):
                raise ScenarioError(
                    f"scenario {spec.name!r}: axis {axis!r} value {value!r} "
                    "is not a JSON scalar"
                )


def scenario(
    name: str,
    description: str = "",
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    tags: Sequence[str] = (),
    reporter: Optional[Callable[[Mapping], str]] = None,
    cost_hints: Optional[Callable[..., Mapping[str, float]]] = None,
) -> Callable[[Callable[..., Mapping]], Callable[..., Mapping]]:
    """Decorator registering a runner function as a scenario."""

    def decorate(runner: Callable[..., Mapping]) -> Callable[..., Mapping]:
        desc = description
        if not desc and runner.__doc__:
            desc = runner.__doc__.strip().splitlines()[0]
        register(
            Scenario(
                name=name,
                description=desc,
                axes={k: tuple(v) for k, v in (axes or {}).items()},
                runner=runner,
                tags=tuple(tags),
                reporter=reporter,
                cost_hints=cost_hints,
            )
        )
        return runner

    return decorate


def register_figure(
    name: str,
    run: Callable,
    report: Callable,
    description: str = "",
    metrics: Optional[Callable[[object], Mapping[str, float]]] = None,
    data: Optional[Callable[[object], Mapping]] = None,
) -> Scenario:
    """Register a per-figure experiment driver as a zero-axis scenario.

    ``run(scale)`` produces the figure's result object; ``report(result)``
    its text table; ``metrics(result)`` (optional) a flat name -> number
    mapping for the CSV export; ``data(result)`` (optional) a JSON-safe
    detail payload.
    """

    def runner(scale, **params):
        result = run(scale)
        payload: Dict[str, object] = {"figure": name, "report": report(result)}
        if metrics is not None:
            payload["metrics"] = {k: float(v) for k, v in metrics(result).items()}
        if data is not None:
            payload["data"] = data(result)
        return payload

    return register(
        Scenario(
            name=name,
            description=description or f"paper experiment {name}",
            axes={},
            runner=runner,
            tags=("figure",),
        )
    )


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ScenarioError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_tags(name: str) -> Tuple[str, ...]:
    """Tags of a registered scenario, or ``()`` for unknown names.

    Tolerant lookup: spec construction must work for scenario names that
    are not (yet) registered — tests and ad hoc scripts build specs for
    toy names — so this never raises.
    """
    spec = _REGISTRY.get(name)
    return spec.tags if spec is not None else ()


def scenario_cost_hints(name: str) -> Optional[Callable[..., Mapping[str, float]]]:
    """Cost-hint callable of a registered scenario, or ``None``.

    Tolerant like :func:`scenario_tags`: the planner profiles specs for
    unregistered (toy/test) scenario names with the generic heuristic.
    """
    spec = _REGISTRY.get(name)
    return spec.cost_hints if spec is not None else None


def scenario_names(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered scenario names (optionally filtered by tag), sorted."""
    names = [
        name
        for name, spec in _REGISTRY.items()
        if tag is None or tag in spec.tags
    ]
    return tuple(sorted(names))


def all_scenarios() -> Tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())
