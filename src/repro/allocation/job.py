"""Description of a job's node allocation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.config import TopologyConfig
from repro.topology.geometry import NodeCoord, group_of_node, router_of_node


@dataclass(frozen=True)
class JobAllocation:
    """An ordered list of nodes assigned to a job (rank ``i`` → ``nodes[i]``)."""

    nodes: tuple
    name: str = "allocation"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("an allocation needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("allocation contains duplicate nodes")

    @classmethod
    def of(cls, nodes: Sequence[int], name: str = "allocation") -> "JobAllocation":
        """Build an allocation from any node sequence."""
        return cls(nodes=tuple(int(n) for n in nodes), name=name)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    # -- topology-aware summaries --------------------------------------------

    def routers(self, topo: TopologyConfig) -> List[int]:
        """Distinct routers (blades) spanned by this allocation."""
        seen: Set[int] = set()
        out: List[int] = []
        for node in self.nodes:
            router = router_of_node(node, topo)
            if router not in seen:
                seen.add(router)
                out.append(router)
        return out

    def groups(self, topo: TopologyConfig) -> List[int]:
        """Distinct Dragonfly groups spanned by this allocation."""
        seen: Set[int] = set()
        out: List[int] = []
        for node in self.nodes:
            group = group_of_node(node, topo)
            if group not in seen:
                seen.add(group)
                out.append(group)
        return out

    def span_summary(self, topo: TopologyConfig) -> dict:
        """Counts used when reporting an experiment's allocation (cf. §5.1)."""
        return {
            "nodes": len(self.nodes),
            "routers": len(self.routers(topo)),
            "groups": len(self.groups(topo)),
        }

    def describe(self, topo: TopologyConfig) -> str:
        """Human-readable one-liner, e.g. ``scattered: 64 nodes / 33 routers / 5 groups``."""
        summary = self.span_summary(topo)
        return (
            f"{self.name}: {summary['nodes']} nodes / "
            f"{summary['routers']} routers / {summary['groups']} groups"
        )

    def coordinates(self, topo: TopologyConfig) -> List[NodeCoord]:
        """Node coordinates, mainly for tests and pretty-printing."""
        return [NodeCoord.from_flat(node, topo) for node in self.nodes]
