"""Node allocation policies.

Section 3.1 of the paper shows that the process-to-node allocation dominates
both the median and the variance of communication performance, so the
experiments must control it explicitly.  This package provides the allocation
shapes used throughout the evaluation:

* the four ping-pong placements of Figure 3 (same blade, different blades of
  one chassis, different chassis of one group, different groups);
* contiguous and scattered multi-group allocations for the larger runs
  (Figures 8–10), mimicking how a batch scheduler fragments a job over a
  production Dragonfly machine.
"""

from repro.allocation.job import JobAllocation
from repro.allocation.policies import (
    AllocationPolicy,
    MachineFullError,
    allocate,
    allocate_contiguous,
    allocate_inter_blade_pair,
    allocate_inter_chassis_pair,
    allocate_inter_group_pair,
    allocate_intra_blade_pair,
    allocate_round_robin_groups,
    allocate_scattered,
)

__all__ = [
    "JobAllocation",
    "AllocationPolicy",
    "MachineFullError",
    "allocate",
    "allocate_contiguous",
    "allocate_scattered",
    "allocate_round_robin_groups",
    "allocate_intra_blade_pair",
    "allocate_inter_blade_pair",
    "allocate_inter_chassis_pair",
    "allocate_inter_group_pair",
]
