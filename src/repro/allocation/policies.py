"""Allocation policy functions.

Each function returns a :class:`~repro.allocation.job.JobAllocation`.  The
pair allocators reproduce the four placements of Figure 3; the contiguous,
round-robin and scattered allocators produce the job shapes of the larger
experiments (the paper's 1024-node Piz Daint job spanned 257 routers over
6 groups and the 64-node Cori job 33 routers over 5 groups — i.e. jobs are
fragmented over many routers and several groups).
"""

from __future__ import annotations

import random
from enum import Enum
from typing import FrozenSet, List, Optional, Sequence

from repro.config import TopologyConfig
from repro.allocation.job import JobAllocation
from repro.topology.geometry import NodeCoord, RouterCoord


class AllocationPolicy(str, Enum):
    """Named allocation strategies used by the experiment harness."""

    CONTIGUOUS = "contiguous"
    ROUND_ROBIN_GROUPS = "round_robin_groups"
    SCATTERED = "scattered"


class MachineFullError(ValueError):
    """Raised when an allocation cannot be satisfied by the free nodes.

    Distinct from a plain :class:`ValueError` (malformed request) so that a
    scheduler admitting concurrent jobs can queue the job and retry when
    nodes free up, instead of aborting the whole replay.
    """

    def __init__(self, policy: str, requested: int, free: int, total: int):
        self.policy = policy
        self.requested = requested
        self.free = free
        self.total = total
        super().__init__(
            f"{policy}: cannot allocate {requested} node(s) — {free} of "
            f"{total} free"
        )


def _occupied_set(occupied: Sequence[int], topo: TopologyConfig) -> FrozenSet[int]:
    """Validate and freeze an occupied-node view."""
    taken = frozenset(int(n) for n in occupied)
    for node in taken:
        if not 0 <= node < topo.num_nodes:
            raise ValueError(
                f"occupied node {node} outside the {topo.num_nodes}-node system"
            )
    return taken


# -- pair allocations (Figure 3) -----------------------------------------------


def allocate_intra_blade_pair(topo: TopologyConfig, blade_router: int = 0) -> JobAllocation:
    """Two nodes on the same blade (the "Inter-Nodes" case of Figure 3)."""
    if topo.nodes_per_router < 2:
        raise ValueError("need at least two nodes per router for an intra-blade pair")
    base = blade_router * topo.nodes_per_router
    return JobAllocation.of([base, base + 1], name="inter-nodes")


def allocate_inter_blade_pair(topo: TopologyConfig, chassis: int = 0) -> JobAllocation:
    """Two nodes on different blades of the same chassis ("Inter-Blades")."""
    if topo.blades_per_chassis < 2:
        raise ValueError("need at least two blades per chassis")
    router_a = RouterCoord(0, chassis, 0).flat(topo)
    router_b = RouterCoord(0, chassis, 1).flat(topo)
    return JobAllocation.of(
        [router_a * topo.nodes_per_router, router_b * topo.nodes_per_router],
        name="inter-blades",
    )


def allocate_inter_chassis_pair(topo: TopologyConfig, group: int = 0) -> JobAllocation:
    """Two nodes on different chassis of the same group ("Inter-Chassis").

    The two routers are chosen on different chassis *and* different blade
    slots, so the minimal path needs two hops (the interesting case).
    """
    if topo.chassis_per_group < 2:
        raise ValueError("need at least two chassis per group")
    router_a = RouterCoord(group, 0, 0).flat(topo)
    blade_b = 1 if topo.blades_per_chassis > 1 else 0
    router_b = RouterCoord(group, 1, blade_b).flat(topo)
    return JobAllocation.of(
        [router_a * topo.nodes_per_router, router_b * topo.nodes_per_router],
        name="inter-chassis",
    )


def allocate_inter_group_pair(
    topo: TopologyConfig, group_a: int = 0, group_b: Optional[int] = None
) -> JobAllocation:
    """Two nodes in different groups ("Inter-Groups")."""
    if topo.num_groups < 2:
        raise ValueError("need at least two groups")
    if group_b is None:
        group_b = (group_a + 1) % topo.num_groups
    if group_a == group_b:
        raise ValueError("groups must differ")
    router_a = RouterCoord(group_a, 0, 0).flat(topo)
    # Pick a router in the destination group that does not share the blade
    # slot/chassis pattern, so the minimal path is the general 3–5 hop case.
    chassis_b = topo.chassis_per_group - 1
    blade_b = topo.blades_per_chassis - 1
    router_b = RouterCoord(group_b, chassis_b, blade_b).flat(topo)
    return JobAllocation.of(
        [router_a * topo.nodes_per_router, router_b * topo.nodes_per_router],
        name="inter-groups",
    )


def figure3_allocations(topo: TopologyConfig) -> List[JobAllocation]:
    """The four placements compared in Figure 3, in the paper's order."""
    return [
        allocate_intra_blade_pair(topo),
        allocate_inter_blade_pair(topo),
        allocate_inter_chassis_pair(topo),
        allocate_inter_group_pair(topo),
    ]


# -- multi-node allocations -------------------------------------------------------


def allocate_contiguous(
    topo: TopologyConfig,
    num_nodes: int,
    first_node: int = 0,
    name: str = "contiguous",
    occupied: Sequence[int] = (),
) -> JobAllocation:
    """``num_nodes`` consecutive *free* nodes, first-fit from ``first_node``.

    With an empty ``occupied`` view this is the historical behaviour (the
    run starting exactly at ``first_node``).  With nodes taken by other
    jobs, the first gap of ``num_nodes`` consecutive free nodes at or after
    ``first_node`` is used; :class:`MachineFullError` is raised when no
    such gap exists.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0 <= first_node < max(topo.num_nodes, 1):
        raise ValueError(
            f"first_node {first_node} outside the {topo.num_nodes}-node system"
        )
    taken = _occupied_set(occupied, topo)
    if not taken:
        if first_node + num_nodes > topo.num_nodes:
            raise MachineFullError(
                "contiguous", num_nodes, topo.num_nodes - first_node, topo.num_nodes
            )
        return JobAllocation.of(range(first_node, first_node + num_nodes), name=name)
    run_start = None
    run_len = 0
    for node in range(first_node, topo.num_nodes):
        if node in taken:
            run_start, run_len = None, 0
            continue
        if run_start is None:
            run_start = node
        run_len += 1
        if run_len == num_nodes:
            return JobAllocation.of(range(run_start, run_start + num_nodes), name=name)
    free = sum(1 for n in range(topo.num_nodes) if n not in taken)
    raise MachineFullError("contiguous", num_nodes, free, topo.num_nodes)


def allocate_round_robin_groups(
    topo: TopologyConfig,
    num_nodes: int,
    name: str = "round-robin-groups",
    occupied: Sequence[int] = (),
) -> JobAllocation:
    """Spread nodes over groups round-robin (one node per group per turn).

    This is the "fragmented over many groups" shape the batch schedulers of
    Piz Daint and Cori produce for large jobs.  Nodes listed in
    ``occupied`` are skipped (the round-robin order is preserved over the
    remaining free nodes); :class:`MachineFullError` is raised when fewer
    than ``num_nodes`` nodes are free.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    taken = _occupied_set(occupied, topo)
    free_total = topo.num_nodes - len(taken)
    if num_nodes > free_total:
        raise MachineFullError(
            "round-robin-groups", num_nodes, free_total, topo.num_nodes
        )
    nodes: List[int] = []
    per_group = topo.routers_per_group * topo.nodes_per_router
    offset = 0
    while len(nodes) < num_nodes and offset < per_group:
        for group in range(topo.num_groups):
            if len(nodes) >= num_nodes:
                break
            node = group * per_group + offset
            if node not in taken:
                nodes.append(node)
        offset += 1
    if len(nodes) < num_nodes:
        raise MachineFullError(
            "round-robin-groups", num_nodes, free_total, topo.num_nodes
        )
    return JobAllocation.of(nodes, name=name)


def allocate_scattered(
    topo: TopologyConfig,
    num_nodes: int,
    rng: random.Random,
    name: str = "scattered",
    exclude: Sequence[int] = (),
    occupied: Sequence[int] = (),
) -> JobAllocation:
    """A uniformly random allocation (what a busy scheduler effectively does).

    ``exclude`` and ``occupied`` both list nodes already taken by other
    jobs so that concurrently allocated jobs never share nodes (they still
    share the network, which is the whole point); the two are unioned —
    ``occupied`` exists so every policy takes the same free-node view.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    taken = set(exclude) | set(_occupied_set(occupied, topo))
    available = [n for n in range(topo.num_nodes) if n not in taken]
    if num_nodes > len(available):
        raise MachineFullError("scattered", num_nodes, len(available), topo.num_nodes)
    nodes = rng.sample(available, num_nodes)
    return JobAllocation.of(nodes, name=name)


def allocate(
    policy: AllocationPolicy,
    topo: TopologyConfig,
    num_nodes: int,
    rng: Optional[random.Random] = None,
    exclude: Sequence[int] = (),
    occupied: Sequence[int] = (),
) -> JobAllocation:
    """Dispatch on an :class:`AllocationPolicy` value.

    ``occupied`` is the shared free-node view: nodes held by concurrently
    running jobs, which no policy may reuse.  Every policy raises
    :class:`MachineFullError` when the request does not fit the free nodes.
    """
    if policy is AllocationPolicy.CONTIGUOUS:
        return allocate_contiguous(topo, num_nodes, occupied=occupied)
    if policy is AllocationPolicy.ROUND_ROBIN_GROUPS:
        return allocate_round_robin_groups(topo, num_nodes, occupied=occupied)
    if policy is AllocationPolicy.SCATTERED:
        if rng is None:
            raise ValueError("scattered allocation requires an RNG")
        return allocate_scattered(topo, num_nodes, rng, exclude=exclude, occupied=occupied)
    raise ValueError(f"unknown allocation policy {policy}")
