"""Bounded-memory network probes: link time series + routing-decision audit.

The paper's whole mechanism is *observing the network* — per-class (L, s)
counters feeding Algorithm 1 — so this module gives the repo a flight
recorder for exactly that surface: fixed-interval samples of link
occupancy, credit stalls, and NIC counters per link class and per group,
plus a seeded sample of UGAL routing decisions with their candidate
scores under both the stale (delayed-counter) and live views.

The design mirrors :mod:`repro.telemetry.core` deliberately:

* one module-level singleton, :data:`PROBES`, *mutated* (never rebound)
  by :func:`enable_probes` / :func:`disable_probes`, so hot paths cache a
  reference at import time and still observe the current state;
* a zero-allocation disabled fast path — when off, the only cost is one
  attribute lookup (``PROBES.enabled``) at decision sites and one
  ``is not None`` check per event in the sim engines (the
  ``probe_hook`` slot stays ``None``);
* ``REPRO_PROBES`` (plus ``REPRO_PROBE_INTERVAL`` and
  ``REPRO_PROBE_DECISION_RATE``) force-enable at import time, which is
  how enablement propagates into pool and dist worker subprocesses;
* :class:`probe_capture` scopes a fresh recorder to one campaign cell
  and restores the previous one on exit, so captures nest.

Memory is bounded everywhere: each series is a ring that decimates
(drop every other point, double the accept stride) once it hits
:data:`MAX_POINTS`, and the decision audit keeps at most
:data:`MAX_DECISIONS` full records while counters keep counting.

Probes never perturb the simulation: samplers are polled by the event
engines at time-advance boundaries (they schedule no events), sampling
only triggers idempotent lazy credit settling, and the decision audit
draws from its own seeded RNG so the simulation's random streams are
untouched.  Store payloads are byte-identical with probes on or off.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, List, Optional, Tuple

#: Default sampling interval in simulator cycles.
DEFAULT_INTERVAL = 256

#: Default fraction of adaptive routing decisions sampled into the audit.
DEFAULT_DECISION_RATE = 0.02

#: Maximum points per series before decimation halves the resolution.
MAX_POINTS = 512

#: Maximum fully-recorded audit decisions (counters keep counting after).
MAX_DECISIONS = 256

#: Seed for the recorder-owned decision-sampling RNG.  Fixed so audit
#: sampling is reproducible and — critically — independent of the
#: simulation's own random streams.
DECISION_SEED = 0x5EED5

#: Environment variables mirroring ``REPRO_TELEMETRY`` semantics.
PROBES_ENV_VAR = "REPRO_PROBES"
PROBE_INTERVAL_ENV_VAR = "REPRO_PROBE_INTERVAL"
PROBE_DECISION_RATE_ENV_VAR = "REPRO_PROBE_DECISION_RATE"


def env_probes_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when the environment requests probes (``REPRO_PROBES``)."""
    env = os.environ if environ is None else environ
    value = env.get(PROBES_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def env_probe_interval(environ: Optional[Dict[str, str]] = None) -> Optional[int]:
    """Sampling interval from ``REPRO_PROBE_INTERVAL``, or None if unset."""
    env = os.environ if environ is None else environ
    value = env.get(PROBE_INTERVAL_ENV_VAR, "").strip()
    if not value:
        return None
    interval = int(value)
    if interval < 1:
        raise ValueError(
            f"{PROBE_INTERVAL_ENV_VAR} must be a positive cycle count, "
            f"got {interval}"
        )
    return interval


def env_decision_rate(environ: Optional[Dict[str, str]] = None) -> Optional[float]:
    """Decision-sample rate from ``REPRO_PROBE_DECISION_RATE`` (0..1)."""
    env = os.environ if environ is None else environ
    value = env.get(PROBE_DECISION_RATE_ENV_VAR, "").strip()
    if not value:
        return None
    rate = float(value)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"{PROBE_DECISION_RATE_ENV_VAR} must be in [0, 1], got {rate}"
        )
    return rate


class RingSeries:
    """One bounded time series: (metric, link class, group) → points.

    Accepts every ``stride``-th offered sample; when the buffer reaches
    ``max_points`` it drops every other retained point and doubles the
    stride, so memory stays bounded while coverage stays roughly uniform
    over the whole run (the classic "halve the resolution, never the
    span" decimation).
    """

    __slots__ = ("metric", "cls", "group", "t", "v", "stride", "_seen",
                 "max_points")

    def __init__(self, metric: str, cls: str, group: int,
                 max_points: int = MAX_POINTS):
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.metric = metric
        self.cls = cls
        self.group = group
        self.max_points = max_points
        self.t: List[int] = []
        self.v: List[float] = []
        self.stride = 1
        self._seen = 0

    def __len__(self) -> int:
        return len(self.t)

    @property
    def samples_seen(self) -> int:
        """How many samples were offered (accepted + strided away)."""
        return self._seen

    def add(self, t: int, v: float) -> None:
        """Offer one sample; retained only on the current stride."""
        n = self._seen
        self._seen = n + 1
        if n % self.stride:
            return
        if len(self.t) >= self.max_points:
            # Keep points at even buffer positions: those sit on sample
            # indices that are multiples of the doubled stride, so the
            # retained grid stays aligned with future accepts.
            self.t[:] = self.t[::2]
            self.v[:] = self.v[::2]
            self.stride *= 2
        self.t.append(t)
        self.v.append(v)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; values rounded to keep sidecars compact."""
        return {
            "metric": self.metric,
            "cls": self.cls,
            "group": self.group,
            "t": list(self.t),
            "v": [round(float(x), 4) for x in self.v],
            "stride": self.stride,
            "samples_seen": self._seen,
        }


class ProbeRecorder:
    """Collects probe series and audit decisions for one capture (cell)."""

    __slots__ = ("interval", "decision_rate", "series", "decisions",
                 "decisions_seen", "decisions_sampled", "flips", "backend",
                 "max_points", "max_decisions", "_rng")

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 decision_rate: float = DEFAULT_DECISION_RATE,
                 seed: int = DECISION_SEED,
                 max_points: int = MAX_POINTS,
                 max_decisions: int = MAX_DECISIONS):
        if interval < 1:
            raise ValueError(f"probe interval must be >= 1, got {interval}")
        if not 0.0 <= decision_rate <= 1.0:
            raise ValueError(
                f"decision rate must be in [0, 1], got {decision_rate}"
            )
        self.interval = interval
        self.decision_rate = decision_rate
        self.max_points = max_points
        self.max_decisions = max_decisions
        #: (metric, cls, group) -> RingSeries
        self.series: Dict[Tuple[str, str, int], RingSeries] = {}
        self.decisions: List[Dict[str, Any]] = []
        self.decisions_seen = 0
        self.decisions_sampled = 0
        self.flips = 0
        #: Which backend filled the recorder ("flit" or "flow").
        self.backend: Optional[str] = None
        self._rng = random.Random(seed)

    def series_for(self, metric: str, cls: str, group: int) -> RingSeries:
        """The (lazily created) series for one metric/class/group cell."""
        key = (metric, cls, group)
        series = self.series.get(key)
        if series is None:
            series = RingSeries(metric, cls, group, self.max_points)
            self.series[key] = series
        return series

    def want_decision(self) -> bool:
        """Seeded coin flip: should this routing decision be audited?

        Draws from the recorder's own RNG — never the simulation's — so
        enabling the audit cannot shift any simulated random stream.
        """
        self.decisions_seen += 1
        return self._rng.random() < self.decision_rate

    def record_decision(self, record: Dict[str, Any]) -> None:
        """Store one audited decision (bounded; flip counter unbounded)."""
        self.decisions_sampled += 1
        if record.get("flip"):
            self.flips += 1
        if len(self.decisions) < self.max_decisions:
            self.decisions.append(record)

    def snapshot(self) -> Dict[str, Any]:
        """Serialize into the store's ``probes/<hash>.json`` sidecar shape."""
        ordered = sorted(self.series.items(), key=lambda kv: kv[0])
        return {
            "version": 1,
            "backend": self.backend,
            "interval": self.interval,
            "decision_rate": self.decision_rate,
            "series": [series.to_dict() for _, series in ordered],
            "decisions": list(self.decisions),
            "decisions_seen": self.decisions_seen,
            "decisions_sampled": self.decisions_sampled,
            "flips": self.flips,
        }


class ProbeSampler:
    """Fixed-interval sampler polled through a simulator's ``probe_hook``.

    Engines check ``now >= sampler.next_due`` at time-advance boundaries
    and call :meth:`sample`; the sampler never schedules events, so the
    event stream — and therefore every payload — is untouched.
    Subclasses implement :meth:`collect`.
    """

    __slots__ = ("recorder", "interval", "next_due")

    def __init__(self, recorder: ProbeRecorder,
                 interval: Optional[int] = None):
        self.recorder = recorder
        self.interval = recorder.interval if interval is None else int(interval)
        if self.interval < 1:
            raise ValueError(f"probe interval must be >= 1, got {self.interval}")
        # First sample fires at the first time advance, anchoring t=0-ish
        # state; afterwards the grid aligns to multiples of the interval.
        self.next_due = 0

    def sample(self, now: int) -> None:
        self.collect(now)
        interval = self.interval
        self.next_due = now - now % interval + interval

    def collect(self, now: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Probes:
    """The mutable singleton: fields swap, identity never changes."""

    __slots__ = ("enabled", "recorder", "interval", "decision_rate")

    def __init__(self) -> None:
        self.enabled = False
        self.recorder: Optional[ProbeRecorder] = None
        self.interval = DEFAULT_INTERVAL
        self.decision_rate = DEFAULT_DECISION_RATE


PROBES = Probes()


def enable_probes(interval: Optional[int] = None,
                  decision_rate: Optional[float] = None) -> None:
    """Turn probes on with a fresh recorder.

    ``interval``/``decision_rate`` update the sticky defaults used by
    subsequent :class:`probe_capture` scopes; omitted values keep the
    current configuration.
    """
    if interval is not None:
        if interval < 1:
            raise ValueError(f"probe interval must be >= 1, got {interval}")
        PROBES.interval = int(interval)
    if decision_rate is not None:
        if not 0.0 <= decision_rate <= 1.0:
            raise ValueError(
                f"decision rate must be in [0, 1], got {decision_rate}"
            )
        PROBES.decision_rate = float(decision_rate)
    PROBES.recorder = ProbeRecorder(PROBES.interval, PROBES.decision_rate)
    PROBES.enabled = True


def disable_probes() -> None:
    """Turn probes off; hot paths see ``PROBES.enabled`` False again."""
    PROBES.enabled = False
    PROBES.recorder = None


class probe_capture:
    """Scope a fresh :class:`ProbeRecorder` to one unit of work.

    No-op while probes are disabled (:meth:`snapshot` returns ``None``).
    On exit the previous recorder is restored, so captures nest — an
    audit twin inside a cell gets its own recorder without clobbering
    the cell's.
    """

    __slots__ = ("_prev", "_recorder", "_active")

    def __enter__(self) -> "probe_capture":
        self._active = PROBES.enabled
        if self._active:
            self._prev = PROBES.recorder
            self._recorder = ProbeRecorder(PROBES.interval,
                                           PROBES.decision_rate)
            PROBES.recorder = self._recorder
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            PROBES.recorder = self._prev
        return False

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """Sidecar-shaped dict of everything recorded, or None when off."""
        if not self._active:
            return None
        return self._recorder.snapshot()


if env_probes_enabled():  # pragma: no cover - exercised via subprocess tests
    enable_probes(env_probe_interval(), env_decision_rate())
