"""Zero-dependency observability: tracing, metrics, structured logging.

Three pieces, all stdlib-only:

* :mod:`repro.telemetry.core` — the :data:`TELEMETRY` singleton with a
  span :class:`Tracer` and :class:`Metrics` registry; no-op unless
  enabled (``enable()`` or ``REPRO_TELEMETRY=1``) so instrumented hot
  paths cost one attribute lookup when off.
* :mod:`repro.telemetry.log` — structured stderr logging
  (``REPRO_LOG=json|text``) used by the distributed runtime instead of
  stray prints.
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` export and
  phase-timing aggregation over a campaign store.
"""

from repro.telemetry.core import (
    MAX_EVENTS,
    NULL_SPAN,
    TELEMETRY,
    TELEMETRY_ENV_VAR,
    Metrics,
    Span,
    Telemetry,
    Tracer,
    capture,
    disable,
    enable,
    env_enabled,
    snapshot_of,
    timed,
)
from repro.telemetry.log import (
    LOG_FORMAT_ENV_VAR,
    LOG_LEVEL_ENV_VAR,
    get_logger,
    log_event,
    reset_logging,
)
from repro.telemetry.probes import (
    PROBE_DECISION_RATE_ENV_VAR,
    PROBE_INTERVAL_ENV_VAR,
    PROBES,
    PROBES_ENV_VAR,
    ProbeRecorder,
    ProbeSampler,
    Probes,
    RingSeries,
    disable_probes,
    enable_probes,
    env_decision_rate,
    env_probe_interval,
    env_probes_enabled,
    probe_capture,
)

__all__ = [
    "LOG_FORMAT_ENV_VAR",
    "LOG_LEVEL_ENV_VAR",
    "MAX_EVENTS",
    "NULL_SPAN",
    "PROBES",
    "PROBES_ENV_VAR",
    "PROBE_DECISION_RATE_ENV_VAR",
    "PROBE_INTERVAL_ENV_VAR",
    "TELEMETRY",
    "TELEMETRY_ENV_VAR",
    "Metrics",
    "ProbeRecorder",
    "ProbeSampler",
    "Probes",
    "RingSeries",
    "Span",
    "Telemetry",
    "Tracer",
    "capture",
    "disable",
    "disable_probes",
    "enable",
    "enable_probes",
    "env_decision_rate",
    "env_enabled",
    "env_probe_interval",
    "env_probes_enabled",
    "get_logger",
    "log_event",
    "reset_logging",
    "probe_capture",
    "snapshot_of",
    "timed",
]
