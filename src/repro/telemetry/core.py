"""Zero-dependency tracing and metrics core.

The whole subsystem funnels through one module-level singleton,
:data:`TELEMETRY`.  The object is *mutated* by :func:`enable` /
:func:`disable` — never rebound — so any module may cache a reference at
import time and still observe the current state.  When disabled (the
default) every hot path pays exactly one attribute lookup
(``TELEMETRY.enabled``) and allocates nothing: ``span()`` hands back a
shared no-op singleton and the metrics registry swallows updates.

Spans nest lexically via ``with`` blocks and are recorded as Chrome
``trace_event``-shaped dicts (name/category/relative start/duration/args)
on a bounded ring; aggregates (count, total seconds, max seconds) are kept
for *every* span even after the event buffer saturates, so percentile
tables stay honest on long campaigns.

Timing uses ``time.perf_counter()`` against a pair of epochs captured when
the tracer is created: ``epoch_perf`` anchors relative span offsets and
``epoch_wall`` (``time.time()``) lets exporters place the whole capture on
a wall-clock axis shared across processes.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

#: Maximum span events retained per capture; aggregates keep counting after.
MAX_EVENTS = 512

#: Maximum samples retained per histogram reservoir.
MAX_HISTOGRAM_SAMPLES = 256

#: Environment variable that force-enables telemetry at import time — this
#: is how enablement propagates into pool workers and dist worker
#: subprocesses, which re-import this module rather than sharing state.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when the environment requests telemetry (``REPRO_TELEMETRY``)."""
    env = os.environ if environ is None else environ
    value = env.get(TELEMETRY_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


class Span:
    """A live span: records name/category/args and measures wall duration.

    Only created when telemetry is enabled; the disabled path uses
    :data:`NULL_SPAN`.  ``add(**kw)`` merges extra args while the span is
    open (e.g. counter deltas computed inside the ``with`` block).
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def add(self, **kw: Any) -> None:
        """Attach additional args to the span before it closes."""
        self.args.update(kw)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._record(self.name, self.cat, self._t0, t1 - self._t0, self.args)
        return False  # never swallow exceptions


class _NullSpan:
    """Shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    def add(self, **kw: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullTracer:
    """Tracer stand-in while disabled: one shared instance, zero allocation."""

    __slots__ = ()

    def span(self, name: str, cat: str = "span", **args: Any) -> _NullSpan:
        return NULL_SPAN


class _NullMetrics:
    """Metrics stand-in while disabled."""

    __slots__ = ()

    def incr(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_TRACER = _NullTracer()
NULL_METRICS = _NullMetrics()


class Tracer:
    """Collects spans for one capture (typically one campaign cell)."""

    __slots__ = ("epoch_wall", "epoch_perf", "events", "dropped", "aggregates",
                 "max_events")

    def __init__(self, max_events: int = MAX_EVENTS):
        self.epoch_wall = time.time()
        self.epoch_perf = time.perf_counter()
        self.max_events = max_events
        #: Chrome-shaped span events: name/cat/ts (s, relative)/dur (s)/args.
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        #: name -> [count, total_s, max_s]; updated for every span.
        self.aggregates: Dict[str, List[float]] = {}

    def span(self, name: str, cat: str = "span", **args: Any) -> Span:
        return Span(self, name, cat, args)

    def _record(self, name: str, cat: str, t0: float, dur: float,
                args: Dict[str, Any]) -> None:
        agg = self.aggregates.get(name)
        if agg is None:
            self.aggregates[name] = [1, dur, dur]
        else:
            agg[0] += 1
            agg[1] += dur
            if dur > agg[2]:
                agg[2] = dur
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({
            "name": name,
            "cat": cat,
            "ts": t0 - self.epoch_perf,
            "dur": dur,
            "args": args,
        })


class Metrics:
    """Counters, gauges, and bounded-reservoir histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> {count, total, min, max, samples (bounded)}
        self.histograms: Dict[str, Dict[str, Any]] = {}

    def incr(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = {"count": 0, "total": 0.0, "min": value, "max": value,
                    "samples": []}
            self.histograms[name] = hist
        hist["count"] += 1
        hist["total"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value
        if len(hist["samples"]) < MAX_HISTOGRAM_SAMPLES:
            hist["samples"].append(value)


class Telemetry:
    """The mutable singleton: fields swap, identity never changes."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Any = NULL_TRACER
        self.metrics: Any = NULL_METRICS


TELEMETRY = Telemetry()


def enable() -> None:
    """Turn telemetry on with a fresh tracer/metrics pair."""
    TELEMETRY.tracer = Tracer()
    TELEMETRY.metrics = Metrics()
    TELEMETRY.enabled = True


def disable() -> None:
    """Turn telemetry off; hot paths fall back to the no-op singletons."""
    TELEMETRY.enabled = False
    TELEMETRY.tracer = NULL_TRACER
    TELEMETRY.metrics = NULL_METRICS


class capture:
    """Context manager scoping a fresh tracer/metrics to one unit of work.

    Only meaningful while telemetry is enabled; when disabled it is a
    no-op and :meth:`snapshot` returns ``None``.  On exit the previous
    tracer/metrics are restored, so captures nest (an audit twin inside a
    cell gets its own snapshot without clobbering the cell's).
    """

    __slots__ = ("_prev_tracer", "_prev_metrics", "_tracer", "_metrics",
                 "_active")

    def __enter__(self) -> "capture":
        self._active = TELEMETRY.enabled
        if self._active:
            self._prev_tracer = TELEMETRY.tracer
            self._prev_metrics = TELEMETRY.metrics
            self._tracer = Tracer()
            self._metrics = Metrics()
            TELEMETRY.tracer = self._tracer
            TELEMETRY.metrics = self._metrics
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            TELEMETRY.tracer = self._prev_tracer
            TELEMETRY.metrics = self._prev_metrics
        return False

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """Compact dict of everything captured, or None when disabled."""
        if not self._active:
            return None
        return snapshot_of(self._tracer, self._metrics)


def snapshot_of(tracer: Tracer, metrics: Metrics) -> Dict[str, Any]:
    """Serialize a tracer/metrics pair into the store's ``telemetry`` dict.

    Shape::

        {"t0": <wall epoch>,
         "phases": {phase-name: total_s},      # cat == "phase" spans
         "spans": {name: {count, total_s, max_s}},
         "events": [{name, cat, ts, dur, args}, ...],
         "dropped": n, "events_dropped": n,   # tracer cap (MAX_EVENTS) hits
         "counters": {...}, "gauges": {...},
         "histograms": {name: {count, total, min, max, samples}},
         "sim_s": <total seconds inside backend run spans>}
    """
    phases: Dict[str, float] = {}
    for ev in tracer.events:
        if ev["cat"] == "phase":
            phases[ev["name"]] = phases.get(ev["name"], 0.0) + ev["dur"]
    spans = {
        name: {"count": int(agg[0]), "total_s": agg[1], "max_s": agg[2]}
        for name, agg in tracer.aggregates.items()
    }
    # "sim_s" is the executor's simulate phase alone — scenario runner time
    # with report/audit/store excluded — which is what backend cost models
    # should learn from.
    sim_s = phases.get("simulate", 0.0)
    return {
        "t0": tracer.epoch_wall,
        "phases": phases,
        "spans": spans,
        "events": tracer.events,
        "dropped": tracer.dropped,
        # The explicit alias status tables report: span events lost to the
        # per-capture MAX_EVENTS cap (aggregates and phase totals are exact
        # regardless — only the event *list* truncates).
        "events_dropped": tracer.dropped,
        "counters": dict(metrics.counters),
        "gauges": dict(metrics.gauges),
        "histograms": {k: dict(v) for k, v in metrics.histograms.items()},
        "sim_s": sim_s,
    }


class timed:
    """Measure a block; optionally emit a ``phase`` span.

    The single timing idiom for executor phases::

        with timed("simulate") as t:
            payload = runner(...)
        elapsed = t.elapsed

    ``.elapsed`` is always populated (even with telemetry disabled), which
    is what lets the executor keep its ``elapsed_s`` semantics while the
    span only materializes when tracing is on.
    """

    __slots__ = ("phase", "args", "elapsed", "_t0", "_span")

    def __init__(self, phase: Optional[str] = None, **args: Any):
        self.phase = phase
        self.args = args
        self.elapsed = 0.0

    def __enter__(self) -> "timed":
        if self.phase is not None and TELEMETRY.enabled:
            self._span = TELEMETRY.tracer.span(self.phase, cat="phase",
                                               **self.args)
            self._span.__enter__()
        else:
            self._span = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
        return False


if env_enabled():  # pragma: no cover - exercised via subprocess tests
    enable()
