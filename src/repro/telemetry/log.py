"""Structured logging for the campaign runtime (stdlib ``logging`` only).

One stderr handler is installed lazily on the ``repro`` root logger the
first time :func:`get_logger` runs.  ``REPRO_LOG`` selects the wire
format — ``text`` (default, ``key=value`` pairs) or ``json`` (one object
per line) — and ``REPRO_LOG_LEVEL`` the threshold (default ``INFO``).

Call sites emit *events*, not prose::

    log_event(logger, "lease.revoked", shard=3, worker="w1", cells=12)

so the same call renders as either::

    lease.revoked shard=3 worker=w1 cells=12
    {"ts": ..., "level": "INFO", "event": "lease.revoked", "shard": 3, ...}
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any

#: Environment variable selecting the log format (``text`` or ``json``).
LOG_FORMAT_ENV_VAR = "REPRO_LOG"

#: Environment variable selecting the log level (name or number).
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_ROOT_NAME = "repro"
_configured = False


class _TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        msg = record.getMessage()
        fields = getattr(record, "event_fields", None)
        if fields:
            pairs = " ".join(f"{k}={_scalar(v)}" for k, v in fields.items())
            return f"{msg} {pairs}"
        return msg


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            payload.update(fields)
        return json.dumps(payload, sort_keys=False, default=str)


def _scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return f'"{text}"' if " " in text else text


def _configure() -> None:
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    fmt = os.environ.get(LOG_FORMAT_ENV_VAR, "text").strip().lower()
    formatter: logging.Formatter
    formatter = _JsonFormatter() if fmt == "json" else _TextFormatter()
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(formatter)
    root.addHandler(handler)
    root.propagate = False
    level_raw = os.environ.get(LOG_LEVEL_ENV_VAR, "INFO").strip().upper()
    level = logging.getLevelName(level_raw)
    root.setLevel(level if isinstance(level, int) else logging.INFO)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy, configuring it on first use."""
    if not _configured:
        _configure()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def reset_logging() -> None:
    """Drop installed handlers so tests can re-configure with fresh env."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    _configured = False


def log_event(logger: logging.Logger, event: str,
              level: int = logging.INFO, **fields: Any) -> None:
    """Emit a structured event with key=value fields."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"event_fields": fields})
