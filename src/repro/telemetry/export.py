"""Export stored telemetry as Chrome ``trace_event`` JSON.

The output of :func:`chrome_trace` loads directly in ``chrome://tracing``
or https://ui.perfetto.dev: one process row per data source (pid 1 =
campaign cells, pid 2 = the distributed session), one thread row per cell
or per shard lease, and every recorded span as a complete ("X") event with
its args attached.  Timestamps are wall-clock microseconds: each cell
snapshot carries its capture's wall epoch (``t0``) and span offsets are
relative to it, so cells executed by different worker processes line up on
one shared axis.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Mapping, Optional

from repro.campaign.store import ArtifactStore

#: pid used for per-cell span rows in the exported trace.
CELLS_PID = 1

#: pid used for distributed-session lifecycle rows.
DIST_PID = 2

#: pid used for network-probe counter tracks ("C" events on sim-cycle time).
PROBES_PID = 3


def _metadata(pid: int, tid: int, name: str, kind: str) -> Dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def cell_events(spec_hash: str, entry: Mapping, tid: int) -> List[Dict]:
    """Trace events for one index entry's telemetry snapshot."""
    snapshot = entry.get("telemetry")
    if not isinstance(snapshot, Mapping):
        return []
    events_in = snapshot.get("events")
    if not isinstance(events_in, list):
        return []
    try:
        t0 = float(snapshot.get("t0", 0.0))
    except (TypeError, ValueError):
        t0 = 0.0
    label = f"{entry.get('scenario', '?')}/{entry.get('backend', '?')} {spec_hash[:8]}"
    out: List[Dict] = [_metadata(CELLS_PID, tid, label, "thread_name")]
    for ev in events_in:
        if not isinstance(ev, Mapping):
            continue
        try:
            ts = (t0 + float(ev.get("ts", 0.0))) * 1e6
            dur = float(ev.get("dur", 0.0)) * 1e6
        except (TypeError, ValueError):
            continue
        out.append(
            {
                "name": str(ev.get("name", "?")),
                "cat": str(ev.get("cat", "span")),
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": CELLS_PID,
                "tid": tid,
                "args": dict(ev.get("args") or {}),
            }
        )
    return out


def probe_counter_events(snapshot: Mapping, tid: int) -> List[Dict]:
    """Chrome counter ("C") tracks for one probe sidecar's series.

    Probe series live on *simulation-cycle* time, not wall-clock — they get
    their own process row (pid 3) so the cycle axis never mixes with the
    wall-clock spans of pids 1/2.  One thread per probed cell; one counter
    track per (metric, link class), with per-group values as args keys, so
    Perfetto renders each group as a stacked band.
    """
    series = snapshot.get("series")
    if not isinstance(series, list):
        return []
    label = (
        f"{snapshot.get('scenario', '?')}/{snapshot.get('backend', '?')} "
        f"{str(snapshot.get('hash', ''))[:8]}"
    )
    out: List[Dict] = []
    for entry in series:
        if not isinstance(entry, Mapping):
            continue
        name = f"{entry.get('metric', '?')} [{entry.get('cls', '?')}]"
        group_key = f"g{entry.get('group', '?')}"
        times = entry.get("t")
        values = entry.get("v")
        if not isinstance(times, list) or not isinstance(values, list):
            continue
        for t, v in zip(times, values):
            try:
                ts = float(t)
                value = float(v)
            except (TypeError, ValueError):
                continue
            out.append(
                {
                    "name": name,
                    "cat": "probe",
                    "ph": "C",
                    "ts": ts,
                    "pid": PROBES_PID,
                    "tid": tid,
                    "args": {group_key: value},
                }
            )
    if not out:
        return []
    return [_metadata(PROBES_PID, tid, label, "thread_name")] + out


def session_events(session: Mapping, tid_of: Dict[str, int]) -> List[Dict]:
    """Trace events for one distributed-session telemetry payload."""
    out: List[Dict] = []
    shards = session.get("shards")
    if not isinstance(shards, list):
        return out
    for timeline in shards:
        if not isinstance(timeline, Mapping):
            continue
        worker = str(timeline.get("worker", "?"))
        if worker not in tid_of:
            tid = len(tid_of) + 1
            tid_of[worker] = tid
            out.append(_metadata(DIST_PID, tid, f"worker {worker}", "thread_name"))
        tid = tid_of[worker]
        try:
            leased_at = float(timeline["leased_at"])
        except (KeyError, TypeError, ValueError):
            continue
        done_at = timeline.get("done_at")
        first_at = timeline.get("first_result_at")
        end = done_at if isinstance(done_at, (int, float)) else (
            first_at if isinstance(first_at, (int, float)) else leased_at
        )
        args = {
            "cells": timeline.get("cells"),
            "attempt": timeline.get("attempt"),
            "revoked": bool(timeline.get("revoked")),
        }
        if isinstance(first_at, (int, float)):
            args["lease_to_first_result_s"] = round(first_at - leased_at, 6)
        out.append(
            {
                "name": f"shard {timeline.get('shard', '?')}",
                "cat": "dist",
                "ph": "X",
                "ts": leased_at * 1e6,
                "dur": max(0.0, (end - leased_at)) * 1e6,
                "pid": DIST_PID,
                "tid": tid,
                "args": args,
            }
        )
        if timeline.get("revoked"):
            out.append(
                {
                    "name": f"revoke shard {timeline.get('shard', '?')}",
                    "cat": "dist",
                    "ph": "i",
                    "s": "p",
                    "ts": end * 1e6,
                    "pid": DIST_PID,
                    "tid": tid,
                    "args": {},
                }
            )
    return out


def chrome_trace(store: ArtifactStore) -> Dict:
    """Build a Chrome ``trace_event`` document from a campaign store.

    Includes every index entry that carries a telemetry snapshot (pid 1,
    one thread per cell) and every stored distributed-session payload
    (pid 2, one thread per worker).  Entries without telemetry — cached
    runs, untraced campaigns — are skipped silently.
    """
    events: List[Dict] = [
        _metadata(CELLS_PID, 0, "campaign cells", "process_name"),
        _metadata(DIST_PID, 0, "distributed session", "process_name"),
    ]
    index = store.index()
    tid = 0
    for spec_hash in sorted(index):
        cell = cell_events(spec_hash, index[spec_hash], tid + 1)
        if cell:
            tid += 1
            events.extend(cell)
    worker_tids: Dict[str, int] = {}
    for session in store.load_session_telemetry():
        events.extend(session_events(session, worker_tids))
    probe_tid = 0
    probe_events: List[Dict] = []
    for snapshot in store.iter_probe_snapshots():
        cell = probe_counter_events(snapshot, probe_tid + 1)
        if cell:
            probe_tid += 1
            probe_events.extend(cell)
    if probe_events:
        events.append(
            _metadata(PROBES_PID, 0, "network probes (sim cycles)", "process_name")
        )
        events.extend(probe_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(store: ArtifactStore, path) -> pathlib.Path:
    """Serialize :func:`chrome_trace` to a file; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(store)) + "\n", encoding="utf-8")
    return path


def validate_trace(trace: Mapping) -> List[str]:
    """Schema-check a trace document; returns a list of problems (empty = ok).

    Checks the subset of the ``trace_event`` format we emit: a
    ``traceEvents`` list whose members carry ``name``/``ph``/``pid``/``tid``,
    with non-negative numeric ``ts``/``dur`` on complete ("X") events and a
    non-negative ``ts`` plus args mapping on counter ("C") events.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"event {i}: bad {key!r} ({value!r})")
        elif ph == "M":
            if not isinstance(ev.get("args"), Mapping):
                problems.append(f"event {i}: metadata without args")
        elif ph == "C":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad 'ts' ({ts!r})")
            if not isinstance(ev.get("args"), Mapping):
                problems.append(f"event {i}: counter without args")
    return problems


def trace_categories(trace: Mapping) -> List[str]:
    """Distinct categories present in a trace (layer-coverage checks)."""
    cats = {
        str(ev.get("cat"))
        for ev in trace.get("traceEvents", ())
        if isinstance(ev, Mapping) and ev.get("ph") == "X" and ev.get("cat")
    }
    return sorted(cats)
