"""Global configuration objects for the Dragonfly network-noise reproduction.

The configuration is split along the same lines as the paper's description of
the Cray Aries system (Section 2):

* :class:`TopologyConfig` — geometry of the Dragonfly (groups, chassis,
  blades, nodes per router) and link counts/latencies.
* :class:`NicConfig` — packetization parameters of the Aries NIC (64-byte
  request packets, 1 header flit + up to 4 payload flits for PUTs, at most
  1024 outstanding packets) and the NIC clock.
* :class:`RoutingConfig` — UGAL candidate counts, bias values for the
  ``ADAPTIVE_*`` modes and the credit-information delay responsible for
  *phantom congestion*.
* :class:`HostConfig` — host-side (non-network) delays and OS-noise model,
  needed to reproduce Section 3.3 (communication-time variation that is *not*
  network noise).
* :class:`SimulationConfig` — the aggregate passed around by the library.

All times are expressed in NIC clock cycles unless stated otherwise, matching
the units used by the paper's performance model (Equations 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class TopologyConfig:
    """Geometry and link parameters of an Aries-like Dragonfly network.

    The defaults describe a scaled-down system that keeps the full Aries
    structure (three connectivity tiers: inter-group/optical, intra-group
    "black" and intra-chassis "green" links) while remaining small enough to
    simulate quickly.  A full Cray XC group has 6 chassis x 16 blades; use
    :meth:`aries_like` for that geometry.
    """

    num_groups: int = 4
    chassis_per_group: int = 2
    blades_per_chassis: int = 4
    nodes_per_router: int = 4

    #: Number of optical (inter-group) link endpoints available per router.
    global_links_per_router: int = 2
    #: Number of parallel tiles used per intra-chassis connection.
    intra_chassis_tiles: int = 1
    #: Number of parallel tiles used per intra-group (black) connection.
    intra_group_tiles: int = 3

    #: One-way latency of an electrical (intra-group) link, in cycles.
    local_link_latency: int = 30
    #: One-way latency of an optical (inter-group) link, in cycles.
    global_link_latency: int = 300
    #: One-way latency between NIC and its router (processor tiles / PCIe).
    host_link_latency: int = 50

    #: Input-buffer capacity of a router port, in flits.
    router_buffer_flits: int = 64
    #: Input-buffer capacity of the NIC-facing (processor tile) port, in flits.
    nic_buffer_flits: int = 64
    #: Cycles needed to forward one flit across a host (NIC↔router) link.
    cycles_per_flit: int = 1
    #: Cycles needed to forward one flit across a single fabric tile.  The
    #: host interface (PCIe x16) is faster than an individual network tile
    #: (~16 GB/s vs ~5 GB/s), so a single fabric tile cannot absorb the NIC's
    #: injection rate — which is exactly why spreading packets over several
    #: paths (adaptive routing) matters on Aries, and why forcing all packets
    #: of a large message onto one minimal path produces stalls (Figure 7).
    fabric_cycles_per_flit: int = 3

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if self.chassis_per_group < 1:
            raise ValueError("chassis_per_group must be >= 1")
        if self.blades_per_chassis < 1:
            raise ValueError("blades_per_chassis must be >= 1")
        if self.nodes_per_router < 1:
            raise ValueError("nodes_per_router must be >= 1")
        if self.num_groups > 1 and self.global_links_per_router < 1:
            raise ValueError(
                "global_links_per_router must be >= 1 when num_groups > 1"
            )
        if self.router_buffer_flits < 8:
            raise ValueError("router_buffer_flits must be >= 8")

    # -- derived quantities -------------------------------------------------

    @property
    def routers_per_group(self) -> int:
        """Number of Aries routers (blades) in one group."""
        return self.chassis_per_group * self.blades_per_chassis

    @property
    def num_routers(self) -> int:
        """Total number of routers in the system."""
        return self.num_groups * self.routers_per_group

    @property
    def num_nodes(self) -> int:
        """Total number of compute nodes in the system."""
        return self.num_routers * self.nodes_per_router

    @property
    def global_links_per_group(self) -> int:
        """Total optical link endpoints available in one group."""
        return self.routers_per_group * self.global_links_per_router

    def validate_global_connectivity(self) -> None:
        """Check that each group can reach every other group directly.

        The Dragonfly topology requires at least one optical link between
        every pair of groups; otherwise minimal inter-group paths do not
        exist and the UGAL routing assumptions break.
        """
        if self.num_groups <= 1:
            return
        if self.global_links_per_group < self.num_groups - 1:
            raise ValueError(
                f"group has {self.global_links_per_group} global link endpoints "
                f"but needs at least {self.num_groups - 1} to reach all other groups"
            )

    @classmethod
    def aries_like(cls, num_groups: int = 8, **overrides) -> "TopologyConfig":
        """A geometry matching a (small) Cray XC: 6 chassis x 16 blades per group."""
        params = dict(
            num_groups=num_groups,
            chassis_per_group=6,
            blades_per_chassis=16,
            nodes_per_router=4,
            global_links_per_router=max(1, -(-(num_groups - 1) // 96)),
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def tiny(cls, **overrides) -> "TopologyConfig":
        """Smallest interesting geometry (2 groups), for unit tests."""
        params = dict(
            num_groups=2,
            chassis_per_group=2,
            blades_per_chassis=2,
            nodes_per_router=2,
            global_links_per_router=1,
        )
        params.update(overrides)
        return cls(**params)


@dataclass(frozen=True)
class NicConfig:
    """Parameters of the Aries NIC packetization and injection engine.

    Section 2.1 of the paper: a data-movement command is packetized into
    64-byte request packets; each PUT request packet carries one header flit
    plus one to four payload flits, GET requests are a single flit and the
    data travels in the response.  The NIC can have at most 1024 outstanding
    request packets (Section 2.4).
    """

    #: Payload bytes carried by one request packet.
    packet_payload_bytes: int = 64
    #: Payload bytes carried by one flit (64 B / 4 payload flits).
    flit_payload_bytes: int = 16
    #: Flits in a PUT request packet header.
    header_flits: int = 1
    #: Maximum payload flits per request packet.
    max_payload_flits: int = 4
    #: Flits in a response (acknowledgement) packet.
    response_flits: int = 1
    #: Maximum number of outstanding (unacknowledged) request packets.
    max_outstanding_packets: int = 1024
    #: NIC clock frequency in Hz; used to convert cycles to microseconds.
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        if self.packet_payload_bytes <= 0:
            raise ValueError("packet_payload_bytes must be positive")
        if self.flit_payload_bytes <= 0:
            raise ValueError("flit_payload_bytes must be positive")
        if self.max_payload_flits * self.flit_payload_bytes < self.packet_payload_bytes:
            raise ValueError(
                "max_payload_flits * flit_payload_bytes must cover packet_payload_bytes"
            )
        if self.max_outstanding_packets < 1:
            raise ValueError("max_outstanding_packets must be >= 1")

    def cycles_to_us(self, cycles: float) -> float:
        """Convert NIC cycles to microseconds."""
        return cycles / self.clock_hz * 1e6

    def us_to_cycles(self, us: float) -> float:
        """Convert microseconds to NIC cycles."""
        return us * 1e-6 * self.clock_hz


@dataclass(frozen=True)
class RoutingConfig:
    """UGAL adaptive-routing parameters and per-mode bias values.

    The bias is added to the congestion estimated for non-minimal paths: the
    higher the bias, the higher the probability that a packet is routed
    minimally (Section 2.2).  Values are expressed in buffer-occupancy flits,
    the same unit as the congestion estimate.
    """

    #: Number of randomly sampled minimal path candidates per packet.
    minimal_candidates: int = 2
    #: Number of randomly sampled non-minimal path candidates per packet.
    nonminimal_candidates: int = 2

    #: Bias of ADAPTIVE_2 ("low bias").
    low_bias: float = 12.0
    #: Bias of ADAPTIVE_3 ("Adaptive with High Bias").
    high_bias: float = 48.0
    #: Base bias of ADAPTIVE_1 ("Increasingly Minimal Bias"); the effective
    #: bias grows as the packet approaches the destination.
    imb_base_bias: float = 8.0
    #: Additional IMB bias per hop already travelled (source-routing emulation
    #: uses the expected per-hop growth over the candidate path).
    imb_bias_per_hop: float = 10.0

    #: Delay, in cycles, after which far-end congestion (credit) information
    #: becomes visible to a router.  This is the mechanism behind "phantom
    #: congestion": with a large delay, routers base decisions on stale data.
    credit_info_delay: int = 400
    #: Weight of the (possibly stale) far-end estimate relative to the local
    #: queue occupancy when scoring a candidate path.
    far_end_weight: float = 1.0
    #: Non-minimal paths traverse roughly twice the hops; UGAL scales the
    #: non-minimal congestion estimate by this factor before comparing.
    nonminimal_penalty: float = 2.0

    def __post_init__(self) -> None:
        if self.minimal_candidates < 1:
            raise ValueError("minimal_candidates must be >= 1")
        if self.nonminimal_candidates < 0:
            raise ValueError("nonminimal_candidates must be >= 0")
        if self.credit_info_delay < 0:
            raise ValueError("credit_info_delay must be >= 0")


@dataclass(frozen=True)
class HostConfig:
    """Host-side (non-network) delay model.

    Section 3.3 of the paper shows that communication-time variation is not
    network noise: intra-node collectives exhibit large variability without
    touching the network at all.  We model per-message host overhead plus an
    OS-noise term drawn from a heavy-tailed distribution.
    """

    #: Fixed software overhead per message send, in cycles (MPI + uGNI stack).
    send_overhead: int = 200
    #: Fixed software overhead per message receive, in cycles.
    recv_overhead: int = 200
    #: Memory-copy bandwidth for intra-node transfers, in bytes per cycle.
    intra_node_bytes_per_cycle: float = 16.0
    #: Base latency of an intra-node (shared-memory) transfer, in cycles.
    intra_node_latency: int = 300

    #: Probability that a host operation is hit by an OS-noise detour.
    os_noise_probability: float = 0.02
    #: Mean duration of an OS-noise detour, in cycles (exponential tail).
    os_noise_mean: float = 5_000.0
    #: Per-node contention factor: extra per-byte cost when ``k`` processes
    #: of the same node are communicating concurrently (memory bandwidth
    #: sharing), expressed as a multiplier per extra process.
    contention_factor: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.os_noise_probability <= 1.0:
            raise ValueError("os_noise_probability must be within [0, 1]")
        if self.intra_node_bytes_per_cycle <= 0:
            raise ValueError("intra_node_bytes_per_cycle must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Aggregate configuration consumed by the simulator and experiments."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    host: HostConfig = field(default_factory=HostConfig)
    #: Master seed for all random streams (topology wiring, routing choices,
    #: noise); per-component streams are derived deterministically from it.
    seed: int = 12345
    #: Network-model backend resolving the traffic: ``"flit"`` is the
    #: cycle-accurate flit-level simulator, ``"flow"`` the fast flow-level
    #: engine.  Validated against the registry by
    #: :func:`repro.model.build_network_model` (config stays import-light).
    backend: str = "flit"

    def with_topology(self, **overrides) -> "SimulationConfig":
        """Return a copy with topology parameters replaced."""
        return replace(self, topology=replace(self.topology, **overrides))

    def with_routing(self, **overrides) -> "SimulationConfig":
        """Return a copy with routing parameters replaced."""
        return replace(self, routing=replace(self.routing, **overrides))

    def with_nic(self, **overrides) -> "SimulationConfig":
        """Return a copy with NIC parameters replaced."""
        return replace(self, nic=replace(self.nic, **overrides))

    def with_host(self, **overrides) -> "SimulationConfig":
        """Return a copy with host parameters replaced."""
        return replace(self, host=replace(self.host, **overrides))

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy with a different master seed."""
        return replace(self, seed=seed)

    def with_backend(self, backend: str) -> "SimulationConfig":
        """Return a copy selecting a different network-model backend."""
        return replace(self, backend=backend)

    @classmethod
    def small(cls, seed: int = 12345, **topology_overrides) -> "SimulationConfig":
        """A small but structurally complete system (4 groups)."""
        return cls(topology=TopologyConfig(**topology_overrides), seed=seed)

    @classmethod
    def tiny(cls, seed: int = 12345) -> "SimulationConfig":
        """The smallest system exercising all three link tiers (2 groups)."""
        return cls(topology=TopologyConfig.tiny(), seed=seed)
