"""Stencil/wavefront microbenchmarks from the Ember suite (halo3d, sweep3d)."""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.mpi.job import RankContext
from repro.workloads.base import Workload

#: Bytes per grid point exchanged (double precision).
ELEMENT_BYTES = 8


def balanced_3d_grid(ranks: int) -> Tuple[int, int, int]:
    """Factor ``ranks`` into the most cube-like ``px × py × pz`` grid."""
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    best = (ranks, 1, 1)
    best_score = None
    for px in range(1, ranks + 1):
        if ranks % px:
            continue
        rem = ranks // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            dims = tuple(sorted((px, py, pz), reverse=True))
            score = dims[0] - dims[2]
            if best_score is None or score < best_score:
                best_score = score
                best = (px, py, pz)
    return best


def balanced_2d_grid(ranks: int) -> Tuple[int, int]:
    """Factor ``ranks`` into the most square ``px × py`` grid."""
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    px = int(math.isqrt(ranks))
    while px > 1 and ranks % px:
        px -= 1
    return px, ranks // px


class Halo3DBenchmark(Workload):
    """Nearest-neighbour exchange on a 3D domain (ember ``halo3d``).

    Ranks are arranged in a ``px × py × pz`` cube; every iteration each rank
    exchanges one face with each of its (up to six) neighbours.  The input
    size is the edge length of the *global* domain; the per-face message size
    follows from the local block dimensions.
    """

    name = "halo3d"

    def __init__(self, domain: int = 256, iterations: int = 5, warmup: int = 1,
                 compute_cycles: int = 0):
        super().__init__(
            iterations=iterations, warmup=warmup, domain=domain,
            compute_cycles=compute_cycles,
        )
        if domain < 1:
            raise ValueError("domain must be >= 1")
        self.domain = domain
        self.compute_cycles = compute_cycles
        self._grid = None

    # -- geometry helpers -------------------------------------------------------

    def _geometry(self, ctx: RankContext):
        if self._grid is None or self._grid[0] != ctx.size:
            px, py, pz = balanced_3d_grid(ctx.size)
            nx = max(1, self.domain // px)
            ny = max(1, self.domain // py)
            nz = max(1, self.domain // pz)
            self._grid = (ctx.size, (px, py, pz), (nx, ny, nz))
        return self._grid[1], self._grid[2]

    def _coords(self, rank: int, grid) -> Tuple[int, int, int]:
        px, py, pz = grid
        x = rank % px
        y = (rank // px) % py
        z = rank // (px * py)
        return x, y, z

    def _rank_of(self, coords, grid) -> int:
        px, py, pz = grid
        x, y, z = coords
        return x + y * px + z * px * py

    def neighbours(self, ctx: RankContext) -> List[Tuple[int, int]]:
        """Neighbour ranks and the byte size of the face shared with them."""
        grid, local = self._geometry(ctx)
        px, py, pz = grid
        nx, ny, nz = local
        x, y, z = self._coords(ctx.rank, grid)
        faces = []
        face_sizes = {
            "x": ny * nz * ELEMENT_BYTES,
            "y": nx * nz * ELEMENT_BYTES,
            "z": nx * ny * ELEMENT_BYTES,
        }
        for axis, (dim, coord, extent) in {
            "x": (0, x, px), "y": (1, y, py), "z": (2, z, pz)
        }.items():
            for delta in (-1, 1):
                neighbour = coord + delta
                if 0 <= neighbour < extent:
                    coords = [x, y, z]
                    coords[dim] = neighbour
                    faces.append((self._rank_of(coords, grid), face_sizes[axis]))
        return faces

    def iteration(self, ctx: RankContext, iteration: int):
        requests = []
        for neighbour, size in self.neighbours(ctx):
            tag = ("halo", iteration, *sorted((ctx.rank, neighbour)))
            requests.append(ctx.isend(neighbour, size, tag=(tag, ctx.rank)))
            requests.append(ctx.irecv(neighbour, tag=(tag, neighbour)))
        if requests:
            yield requests
        if self.compute_cycles:
            yield ctx.compute(self.compute_cycles)


class Sweep3DBenchmark(Workload):
    """Wavefront sweep over a 3D grid (ember ``sweep3d``).

    Ranks form a 2D ``px × py`` grid; a sweep starts at one corner and
    propagates: each rank receives from its west and north neighbours,
    "computes" a block of planes, and sends to its east and south neighbours.
    The domain is swept in ``kba_blocks`` chunks along the vertical axis, so
    each rank sends several smaller messages per sweep — the characteristic
    pipeline pattern of sweep3d.
    """

    name = "sweep3d"

    def __init__(
        self,
        domain: int = 256,
        iterations: int = 5,
        warmup: int = 1,
        kba_blocks: int = 4,
        compute_cycles_per_block: int = 200,
    ):
        super().__init__(
            iterations=iterations,
            warmup=warmup,
            domain=domain,
            kba_blocks=kba_blocks,
        )
        if domain < 1:
            raise ValueError("domain must be >= 1")
        if kba_blocks < 1:
            raise ValueError("kba_blocks must be >= 1")
        self.domain = domain
        self.kba_blocks = kba_blocks
        self.compute_cycles_per_block = compute_cycles_per_block

    def _geometry(self, ctx: RankContext):
        px, py = balanced_2d_grid(ctx.size)
        nx = max(1, self.domain // px)
        ny = max(1, self.domain // py)
        nz = max(1, self.domain)
        return (px, py), (nx, ny, nz)

    def iteration(self, ctx: RankContext, iteration: int):
        (px, py), (nx, ny, nz) = self._geometry(ctx)
        x = ctx.rank % px
        y = ctx.rank // px
        west = ctx.rank - 1 if x > 0 else None
        east = ctx.rank + 1 if x < px - 1 else None
        north = ctx.rank - px if y > 0 else None
        south = ctx.rank + px if y < py - 1 else None
        block_planes = max(1, nz // self.kba_blocks)
        west_east_bytes = ny * block_planes * ELEMENT_BYTES
        north_south_bytes = nx * block_planes * ELEMENT_BYTES
        for block in range(self.kba_blocks):
            tag = ("sweep", iteration, block)
            receives = []
            if west is not None:
                receives.append(ctx.irecv(west, tag=(tag, "we", west)))
            if north is not None:
                receives.append(ctx.irecv(north, tag=(tag, "ns", north)))
            if receives:
                yield receives
            if self.compute_cycles_per_block:
                yield ctx.compute(self.compute_cycles_per_block)
            sends = []
            if east is not None:
                sends.append(ctx.isend(east, west_east_bytes, tag=(tag, "we", ctx.rank)))
            if south is not None:
                sends.append(ctx.isend(south, north_south_bytes, tag=(tag, "ns", ctx.rank)))
            if sends:
                yield sends
