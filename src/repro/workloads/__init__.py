"""Workloads: the microbenchmarks and application proxies of the evaluation.

Microbenchmarks (Section 5.1): ping-pong, allreduce, alltoall, barrier,
broadcast, halo3d (ember), sweep3d (ember).

Applications (Section 5.2): communication-pattern proxies for CP2K, WRF
(baroclinic wave and tropical cyclone), LAMMPS, Quantum Espresso, Nekbone,
VPFFT, Amber, MILC/su3_rmd, HPCG, Graph500 BFS and SSSP, and FFTW — each
modelled as the sequence of collective/point-to-point phases plus compute
bursts that dominates its communication behaviour.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    BroadcastBenchmark,
    PingPongBenchmark,
)
from repro.workloads.stencils import Halo3DBenchmark, Sweep3DBenchmark
from repro.workloads.apps import (
    ApplicationProxy,
    Phase,
    application_catalog,
    make_application,
)

__all__ = [
    "Workload",
    "WorkloadResult",
    "PingPongBenchmark",
    "AllreduceBenchmark",
    "AlltoallBenchmark",
    "BarrierBenchmark",
    "BroadcastBenchmark",
    "Halo3DBenchmark",
    "Sweep3DBenchmark",
    "ApplicationProxy",
    "Phase",
    "application_catalog",
    "make_application",
]
