"""MPI microbenchmarks (Section 5.1, first five entries of Figure 8)."""

from __future__ import annotations

from repro.mpi.job import RankContext
from repro.workloads.base import Workload

#: Bytes per element of the allreduce array (the paper reduces integers).
ALLREDUCE_ELEMENT_BYTES = 4


class PingPongBenchmark(Workload):
    """Ping-pong between two ranks.

    Rank ``rank_a`` sends ``size_bytes`` to ``rank_b`` and waits for an
    equally sized reply; one iteration is ``pingpongs_per_iteration`` such
    round trips.  The remaining ranks (if any) only take part in the
    synchronization barriers, mirroring how a two-node ping-pong is run
    inside a larger allocation.
    """

    name = "pingpong"

    def __init__(
        self,
        size_bytes: int = 16 * 1024,
        iterations: int = 5,
        warmup: int = 1,
        rank_a: int = 0,
        rank_b: int = 1,
        pingpongs_per_iteration: int = 1,
    ):
        super().__init__(
            iterations=iterations,
            warmup=warmup,
            size_bytes=size_bytes,
            rank_a=rank_a,
            rank_b=rank_b,
            pingpongs_per_iteration=pingpongs_per_iteration,
        )
        if rank_a == rank_b:
            raise ValueError("ping-pong needs two distinct ranks")
        self.size_bytes = size_bytes
        self.rank_a = rank_a
        self.rank_b = rank_b
        self.pingpongs_per_iteration = pingpongs_per_iteration

    def participates(self, ctx: RankContext) -> bool:
        return ctx.rank in (self.rank_a, self.rank_b)

    def iteration(self, ctx: RankContext, iteration: int):
        for rep in range(self.pingpongs_per_iteration):
            ping = ("ping", iteration, rep)
            pong = ("pong", iteration, rep)
            if ctx.rank == self.rank_a:
                yield ctx.isend(self.rank_b, self.size_bytes, tag=ping)
                yield ctx.irecv(self.rank_b, tag=pong)
            else:
                yield ctx.irecv(self.rank_a, tag=ping)
                yield ctx.isend(self.rank_a, self.size_bytes, tag=pong)


class AllreduceBenchmark(Workload):
    """Sum-reduction allreduce; the input size is the number of elements."""

    name = "allreduce"

    def __init__(self, elements: int = 1024, iterations: int = 5, warmup: int = 1):
        super().__init__(iterations=iterations, warmup=warmup, elements=elements)
        if elements < 1:
            raise ValueError("elements must be >= 1")
        self.elements = elements
        self.size_bytes = elements * ALLREDUCE_ELEMENT_BYTES

    def iteration(self, ctx: RankContext, iteration: int):
        yield from ctx.allreduce(self.size_bytes, tag=("ar", iteration))


class AlltoallBenchmark(Workload):
    """All-to-all personalized exchange of ``size_bytes`` per rank pair."""

    name = "alltoall"

    def __init__(self, size_bytes: int = 1024, iterations: int = 5, warmup: int = 1):
        super().__init__(iterations=iterations, warmup=warmup, size_bytes=size_bytes)
        self.size_bytes = size_bytes

    def iteration(self, ctx: RankContext, iteration: int):
        yield from ctx.alltoall(self.size_bytes, tag=("a2a", iteration))


class BarrierBenchmark(Workload):
    """A number of back-to-back barriers per iteration."""

    name = "barrier"

    def __init__(self, barriers_per_iteration: int = 8, iterations: int = 5, warmup: int = 1):
        super().__init__(
            iterations=iterations,
            warmup=warmup,
            barriers_per_iteration=barriers_per_iteration,
        )
        if barriers_per_iteration < 1:
            raise ValueError("barriers_per_iteration must be >= 1")
        self.barriers_per_iteration = barriers_per_iteration

    def iteration(self, ctx: RankContext, iteration: int):
        for rep in range(self.barriers_per_iteration):
            yield from ctx.barrier(tag=("bar", iteration, rep))


class BroadcastBenchmark(Workload):
    """Binomial broadcast of ``size_bytes`` from rank 0."""

    name = "broadcast"

    def __init__(self, size_bytes: int = 16 * 1024, iterations: int = 5, warmup: int = 1, root: int = 0):
        super().__init__(iterations=iterations, warmup=warmup, size_bytes=size_bytes, root=root)
        self.size_bytes = size_bytes
        self.root = root

    def iteration(self, ctx: RankContext, iteration: int):
        yield from ctx.bcast(self.size_bytes, root=self.root, tag=("bc", iteration))
