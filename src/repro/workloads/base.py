"""Workload abstraction and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mpi.job import MpiJob, RankContext


@dataclass
class WorkloadResult:
    """Per-iteration measurements collected by a workload run."""

    workload: str
    parameters: Dict[str, object]
    #: Wall-clock (simulated cycles) of each measured iteration, at rank 0.
    iteration_times: List[int] = field(default_factory=list)
    #: Fraction of bytes routed with the Default family (Figures 8–10 label).
    default_traffic_fraction: float = 1.0
    #: Label of the routing policy that produced this result.
    policy: str = ""
    #: Simulation time when the run finished.
    finished_at: int = 0

    def median_time(self) -> float:
        """Median iteration time (cycles)."""
        if not self.iteration_times:
            raise ValueError("no iterations recorded")
        ordered = sorted(self.iteration_times)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def mean_time(self) -> float:
        """Mean iteration time (cycles)."""
        if not self.iteration_times:
            raise ValueError("no iterations recorded")
        return sum(self.iteration_times) / len(self.iteration_times)


class Workload:
    """Base class for rank programs with per-iteration timing.

    Subclasses implement :meth:`iteration`, a generator performing one
    measured iteration for one rank.  The surrounding protocol (start-up
    barrier, warm-up iterations, per-iteration barriers, timing at rank 0)
    is shared, mirroring how the paper's microbenchmarks alternate routing
    algorithms on successive, barrier-separated iterations.
    """

    #: Short identifier used in reports (subclasses override).
    name = "workload"

    def __init__(self, iterations: int = 5, warmup: int = 1, **parameters):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.iterations = iterations
        self.warmup = warmup
        self.parameters = dict(parameters)
        self.iteration_times: List[int] = []
        #: Set by the per-iteration hook of the experiment harness, if any.
        self.on_iteration = None

    # -- to be provided by subclasses ------------------------------------------

    def iteration(self, ctx: RankContext, iteration: int):
        """One measured iteration for one rank (generator)."""
        raise NotImplementedError

    def participates(self, ctx: RankContext) -> bool:
        """Whether a rank takes part in the measured communication."""
        return True

    # -- program -----------------------------------------------------------------

    def program(self, ctx: RankContext):
        """The full per-rank program (warm-up + measured iterations)."""
        total = self.warmup + self.iterations
        for index in range(total):
            yield from ctx.barrier(tag=(self.name, "sync", index))
            start = ctx.now
            if self.participates(ctx):
                yield from self.iteration(ctx, index)
            yield from ctx.barrier(tag=(self.name, "done", index))
            if ctx.rank == 0 and index >= self.warmup:
                elapsed = ctx.now - start
                self.iteration_times.append(elapsed)
                if self.on_iteration is not None:
                    self.on_iteration(index - self.warmup, elapsed)

    # -- running ---------------------------------------------------------------------

    def run(self, job: MpiJob) -> WorkloadResult:
        """Execute the workload on a job and collect the result."""
        self.iteration_times = []
        finished_at = job.run(self.program)
        return WorkloadResult(
            workload=self.name,
            parameters={
                "iterations": self.iterations,
                "warmup": self.warmup,
                "ranks": job.size,
                **self.parameters,
            },
            iteration_times=list(self.iteration_times),
            default_traffic_fraction=job.default_traffic_fraction(),
            policy=job.policy_label(),
            finished_at=finished_at,
        )

    def describe(self) -> str:
        """One-line description used in reports."""
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
        return f"{self.name}({params})"
