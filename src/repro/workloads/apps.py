"""Application proxies (Section 5.2).

The evaluated applications differ — for the purposes of this paper — only in
their *communication pattern*, *message sizes/intensity* and *compute /
communication overlap* (which determines how well they absorb network noise).
Each proxy is a :class:`ApplicationProxy` workload built from a list of
:class:`Phase` objects capturing exactly those three aspects; the mapping is
documented per application in :func:`application_catalog`.

The absolute compute-burst lengths are not calibrated against the real codes
(that is impossible without the machines); they are chosen so that the
*relative* communication intensities across the catalog match the paper's
qualitative description (e.g. halo3d is communication-only, MILC has the same
pattern but interleaves computation, Amber is compute-dominated, FFT/VPFFT
are alltoall-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.mpi.job import RankContext
from repro.workloads.base import Workload
from repro.workloads.stencils import ELEMENT_BYTES, balanced_3d_grid


@dataclass(frozen=True)
class Phase:
    """One communication/compute phase of an application iteration.

    ``pattern`` is one of ``"allreduce"``, ``"alltoall"``, ``"bcast"``,
    ``"allgather"``, ``"halo"``, ``"pairwise"`` (exchange with a fixed
    partner) or ``"compute"``.  ``size_bytes`` is per message (per pair for
    alltoall, per face for halo); ``repeat`` repeats the phase back-to-back;
    ``compute_cycles`` is executed after the communication of the phase.
    """

    pattern: str
    size_bytes: int = 0
    repeat: int = 1
    compute_cycles: int = 0

    def __post_init__(self) -> None:
        valid = {"allreduce", "alltoall", "bcast", "allgather", "halo", "pairwise", "compute"}
        if self.pattern not in valid:
            raise ValueError(f"unknown phase pattern {self.pattern!r}")
        if self.size_bytes < 0 or self.repeat < 1 or self.compute_cycles < 0:
            raise ValueError("invalid phase parameters")


class ApplicationProxy(Workload):
    """A workload defined by a sequence of phases per iteration."""

    name = "application"

    def __init__(
        self,
        app_name: str,
        phases: Sequence[Phase],
        iterations: int = 3,
        warmup: int = 1,
    ):
        super().__init__(iterations=iterations, warmup=warmup, app=app_name)
        if not phases:
            raise ValueError("an application proxy needs at least one phase")
        self.name = app_name
        self.phases = list(phases)

    # -- helpers ------------------------------------------------------------------

    def _halo_neighbours(self, ctx: RankContext) -> List[int]:
        px, py, pz = balanced_3d_grid(ctx.size)
        x = ctx.rank % px
        y = (ctx.rank // px) % py
        z = ctx.rank // (px * py)
        neighbours = []
        for dim, coord, extent in ((0, x, px), (1, y, py), (2, z, pz)):
            for delta in (-1, 1):
                val = coord + delta
                if 0 <= val < extent:
                    coords = [x, y, z]
                    coords[dim] = val
                    neighbours.append(coords[0] + coords[1] * px + coords[2] * px * py)
        return neighbours

    def _run_phase(self, ctx: RankContext, phase: Phase, iteration: int, index: int):
        tag_base = (self.name, iteration, index)
        for rep in range(phase.repeat):
            tag = (*tag_base, rep)
            if phase.pattern == "allreduce":
                yield from ctx.allreduce(phase.size_bytes, tag=("ar", tag))
            elif phase.pattern == "alltoall":
                yield from ctx.alltoall(phase.size_bytes, tag=("a2a", tag))
            elif phase.pattern == "bcast":
                yield from ctx.bcast(phase.size_bytes, root=0, tag=("bc", tag))
            elif phase.pattern == "allgather":
                yield from ctx.allgather(phase.size_bytes, tag=("ag", tag))
            elif phase.pattern == "halo":
                requests = []
                for neighbour in self._halo_neighbours(ctx):
                    pair = tuple(sorted((ctx.rank, neighbour)))
                    requests.append(
                        ctx.isend(neighbour, phase.size_bytes, tag=("halo", tag, pair, ctx.rank))
                    )
                    requests.append(
                        ctx.irecv(neighbour, tag=("halo", tag, pair, neighbour))
                    )
                if requests:
                    yield requests
            elif phase.pattern == "pairwise":
                partner = ctx.rank ^ 1
                if partner < ctx.size:
                    yield from ctx.sendrecv(
                        partner, partner, phase.size_bytes, tag=("pw", tag)
                    )
            elif phase.pattern == "compute":
                pass  # compute handled below
            if phase.compute_cycles:
                yield ctx.compute(phase.compute_cycles)

    def iteration(self, ctx: RankContext, iteration: int):
        for index, phase in enumerate(self.phases):
            yield from self._run_phase(ctx, phase, iteration, index)


# -- the catalogue ------------------------------------------------------------------


def application_catalog(scale: float = 1.0) -> Dict[str, List[Phase]]:
    """Phase recipes for every application in Figure 10.

    ``scale`` multiplies all message sizes, allowing the experiments to run
    the same patterns at reduced scale on the simulator.
    """

    def s(bytes_: int) -> int:
        return max(8, int(bytes_ * scale))

    return {
        # Atomistic/molecular simulation: FFT transposes (alltoall) plus dense
        # linear-algebra reductions, moderate compute.
        "cp2k": [
            Phase("alltoall", s(4 * 1024), repeat=2, compute_cycles=4_000),
            Phase("allreduce", s(8 * 1024), repeat=2, compute_cycles=4_000),
            Phase("compute", compute_cycles=20_000),
        ],
        # WRF baroclinic wave: 2D halo exchange with large faces, compute-heavy.
        "wrf-b": [
            Phase("halo", s(48 * 1024), repeat=2, compute_cycles=12_000),
            Phase("allreduce", s(256), compute_cycles=6_000),
            Phase("compute", compute_cycles=30_000),
        ],
        # WRF tropical cyclone: same pattern, smaller domain per rank.
        "wrf-t": [
            Phase("halo", s(24 * 1024), repeat=2, compute_cycles=10_000),
            Phase("allreduce", s(256), compute_cycles=5_000),
            Phase("compute", compute_cycles=24_000),
        ],
        # LAMMPS: nearest-neighbour ghost exchange plus small reductions.
        "lammps": [
            Phase("halo", s(16 * 1024), repeat=3, compute_cycles=8_000),
            Phase("allreduce", s(64), repeat=2, compute_cycles=2_000),
            Phase("compute", compute_cycles=25_000),
        ],
        # Quantum Espresso: 3D FFTs dominate — alltoall heavy, some reductions.
        "qe": [
            Phase("alltoall", s(8 * 1024), repeat=3, compute_cycles=3_000),
            Phase("allreduce", s(4 * 1024), compute_cycles=2_000),
            Phase("compute", compute_cycles=10_000),
        ],
        # Nekbone: conjugate-gradient solver — frequent small allreduces plus
        # nearest-neighbour exchanges.
        "nekbone": [
            Phase("allreduce", s(64), repeat=6, compute_cycles=1_500),
            Phase("halo", s(8 * 1024), repeat=2, compute_cycles=3_000),
            Phase("compute", compute_cycles=8_000),
        ],
        # VPFFT: mesoscale micromechanics, dominated by repeated 3D FFTs.
        "vpfft": [
            Phase("alltoall", s(16 * 1024), repeat=3, compute_cycles=2_000),
            Phase("compute", compute_cycles=6_000),
        ],
        # Amber: compute-dominated molecular dynamics with small reductions.
        "amber": [
            Phase("allreduce", s(128), repeat=4, compute_cycles=2_000),
            Phase("halo", s(4 * 1024), compute_cycles=4_000),
            Phase("compute", compute_cycles=60_000),
        ],
        # MILC su3_rmd: 4D stencil like halo3d but interleaved with compute —
        # same pattern as halo3d, lower traffic intensity (Section 5.2).
        "milc": [
            Phase("halo", s(12 * 1024), repeat=2, compute_cycles=10_000),
            Phase("allreduce", s(64), repeat=2, compute_cycles=2_000),
            Phase("compute", compute_cycles=20_000),
        ],
        # HPCG: sparse SpMV halo exchanges plus dot-product reductions.
        "hpcg": [
            Phase("halo", s(6 * 1024), repeat=2, compute_cycles=5_000),
            Phase("allreduce", s(32), repeat=3, compute_cycles=1_500),
            Phase("compute", compute_cycles=12_000),
        ],
        # Graph500 BFS: irregular, bursty all-to-all of small messages plus
        # frontier-size reductions; little compute.
        "bfs": [
            Phase("alltoall", s(2 * 1024), repeat=2, compute_cycles=1_000),
            Phase("allreduce", s(16), repeat=2, compute_cycles=500),
        ],
        # Graph500 SSSP: like BFS with more relaxation rounds.
        "sssp": [
            Phase("alltoall", s(1024), repeat=3, compute_cycles=1_000),
            Phase("allreduce", s(16), repeat=3, compute_cycles=500),
        ],
        # FFTW benchmark: transpose-dominated — large alltoall, minimal compute.
        "fft": [
            Phase("alltoall", s(32 * 1024), repeat=2, compute_cycles=1_000),
        ],
    }


def make_application(
    name: str,
    iterations: int = 3,
    warmup: int = 1,
    scale: float = 1.0,
) -> ApplicationProxy:
    """Instantiate an application proxy from the catalogue by name."""
    catalog = application_catalog(scale)
    key = name.lower()
    if key not in catalog:
        raise KeyError(
            f"unknown application {name!r}; available: {', '.join(sorted(catalog))}"
        )
    return ApplicationProxy(key, catalog[key], iterations=iterations, warmup=warmup)
