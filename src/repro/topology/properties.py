"""Structural properties of a Dragonfly topology.

These helpers are used by documentation, tests and capacity planning around
the experiments: link census per tier, router radix, network diameter (in the
minimal-routing sense), average minimal path length, and a bisection-style
count of the optical links crossing a group cut.  None of this is needed on
the simulation hot path; it exists so that a user sizing an experiment can
reason about the machine the same way the paper reasons about Piz Daint and
Cori (how many routers/groups a job spans, how much inter-group bandwidth is
available, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.paths import hop_count_minimal


@dataclass(frozen=True)
class TopologySummary:
    """Census of a Dragonfly instance."""

    num_groups: int
    routers_per_group: int
    num_routers: int
    num_nodes: int
    green_links: int
    black_links: int
    blue_links: int
    router_radix: int
    diameter_hops: int
    average_minimal_hops: float
    min_intergroup_connections: int

    @property
    def total_fabric_links(self) -> int:
        """All directed router-to-router links."""
        return self.green_links + self.black_links + self.blue_links


def link_census(topology: DragonflyTopology) -> Dict[LinkKind, int]:
    """Number of directed links per tier."""
    census = {LinkKind.GREEN: 0, LinkKind.BLACK: 0, LinkKind.BLUE: 0}
    for link in topology.all_links():
        census[link.kind] += 1
    return census


def router_radix(topology: DragonflyTopology) -> int:
    """Maximum number of fabric neighbours of any router."""
    return max(len(topology.neighbors(r)) for r in range(topology.num_routers))


def diameter_hops(topology: DragonflyTopology) -> int:
    """Maximum minimal-route hop count over all router pairs.

    For an Aries-like Dragonfly this is at most 5 (two local hops, one
    optical hop, two local hops); smaller geometries may have a smaller
    diameter.  The computation is O(R²) and intended for the small/medium
    topologies used in experiments.
    """
    best = 0
    for a in range(topology.num_routers):
        for b in range(a + 1, topology.num_routers):
            best = max(best, hop_count_minimal(topology, a, b))
    return best


def average_minimal_hops(topology: DragonflyTopology, sample_stride: int = 1) -> float:
    """Mean minimal-route hop count over (a sample of) router pairs."""
    if sample_stride < 1:
        raise ValueError("sample_stride must be >= 1")
    total = 0
    count = 0
    for a in range(0, topology.num_routers, sample_stride):
        for b in range(0, topology.num_routers, sample_stride):
            if a == b:
                continue
            total += hop_count_minimal(topology, a, b)
            count += 1
    return total / count if count else 0.0


def min_intergroup_connections(topology: DragonflyTopology) -> int:
    """Smallest number of optical connections between any pair of groups.

    This bounds the minimal-path diversity available to inter-group traffic —
    the quantity that lets high-bias routing spread large transfers over
    several minimal paths (Section 4.1 of the paper).
    """
    groups = topology.config.num_groups
    if groups < 2:
        return 0
    return min(
        len(topology.gateways(a, b))
        for a in range(groups)
        for b in range(groups)
        if a != b
    )


def summarize_topology(topology: DragonflyTopology, sample_stride: int = 1) -> TopologySummary:
    """Full census of a topology (used by documentation and experiments)."""
    census = link_census(topology)
    cfg = topology.config
    return TopologySummary(
        num_groups=cfg.num_groups,
        routers_per_group=cfg.routers_per_group,
        num_routers=cfg.num_routers,
        num_nodes=cfg.num_nodes,
        green_links=census[LinkKind.GREEN],
        black_links=census[LinkKind.BLACK],
        blue_links=census[LinkKind.BLUE],
        router_radix=router_radix(topology),
        diameter_hops=diameter_hops(topology),
        average_minimal_hops=average_minimal_hops(topology, sample_stride),
        min_intergroup_connections=min_intergroup_connections(topology),
    )
