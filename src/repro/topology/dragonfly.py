"""Construction of the Aries-like Dragonfly link structure.

The topology object is purely structural: it knows which routers are
connected by which kind of link and how the optical (inter-group) endpoints
are distributed, but it holds no simulation state.  The network layer
(:mod:`repro.network`) instantiates buffers and links on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.config import TopologyConfig
from repro.topology.geometry import RouterCoord, group_of_router


class LinkKind(str, Enum):
    """Physical class of a link, matching the Aries tier names."""

    #: Intra-chassis (backplane) link — "green".
    GREEN = "green"
    #: Intra-group (copper cable between chassis) link — "black".
    BLACK = "black"
    #: Inter-group (optical) link — "blue".
    BLUE = "blue"
    #: Processor-tile link between a NIC and its router.
    HOST = "host"


@dataclass(frozen=True, order=True)
class LinkId:
    """A directed router-to-router connection.

    ``src`` and ``dst`` are flat router ids.  Host links use ``src = -1 -
    node_id`` on the injection side and are handled by the network layer, so
    LinkId instances produced by the topology always connect two routers.
    """

    src: int
    dst: int
    kind: LinkKind

    def reversed(self) -> "LinkId":
        """The link carrying traffic in the opposite direction."""
        return LinkId(self.dst, self.src, self.kind)

    def label(self, topo: TopologyConfig) -> str:
        """Human-readable label used in traces and error messages."""
        a = RouterCoord.from_flat(self.src, topo).label()
        b = RouterCoord.from_flat(self.dst, topo).label()
        return f"{a}->{b}[{self.kind.value}]"


class DragonflyTopology:
    """Link structure of an Aries-like Dragonfly.

    Parameters
    ----------
    config:
        Geometry and link parameters.

    Notes
    -----
    Global (inter-group) connections are assigned deterministically: the
    ``k``-th connection between groups ``(a, b)`` uses router
    ``(pair_index + k) % routers_per_group`` in each group, where
    ``pair_index`` enumerates the (a, b) pairs.  This spreads optical
    endpoints over blades the same way Cray's default cabling does, and it
    guarantees that two specific blades may lack a direct inter-group link —
    the situation that produces the 5-hop minimal path of Figure 1.
    """

    def __init__(self, config: TopologyConfig):
        config.validate_global_connectivity()
        self.config = config
        # adjacency[r] -> {neighbor: LinkKind}
        self._adjacency: List[Dict[int, LinkKind]] = [
            {} for _ in range(config.num_routers)
        ]
        # Flat coordinate arrays (hot-path friendly: no object construction).
        rpg = config.routers_per_group
        bpc = config.blades_per_chassis
        self.group_of_router: List[int] = [r // rpg for r in range(config.num_routers)]
        self.chassis_of_router: List[int] = [
            (r % rpg) // bpc for r in range(config.num_routers)
        ]
        self.blade_of_router: List[int] = [
            (r % rpg) % bpc for r in range(config.num_routers)
        ]
        # (g_src, g_dst) -> list of (router in g_src, router in g_dst)
        self._gateways: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # per-router count of used optical endpoints (for validation)
        self._global_endpoints_used: List[int] = [0] * config.num_routers
        self._build_local_links()
        self._build_global_links()

    # -- construction -------------------------------------------------------

    def _build_local_links(self) -> None:
        topo = self.config
        for group in range(topo.num_groups):
            base = group * topo.routers_per_group
            for chassis in range(topo.chassis_per_group):
                for blade in range(topo.blades_per_chassis):
                    rid = base + chassis * topo.blades_per_chassis + blade
                    # Green: all other blades in the same chassis.
                    for other_blade in range(topo.blades_per_chassis):
                        if other_blade == blade:
                            continue
                        nid = base + chassis * topo.blades_per_chassis + other_blade
                        self._adjacency[rid][nid] = LinkKind.GREEN
                    # Black: same blade slot in the other chassis of this group.
                    for other_chassis in range(topo.chassis_per_group):
                        if other_chassis == chassis:
                            continue
                        nid = base + other_chassis * topo.blades_per_chassis + blade
                        self._adjacency[rid][nid] = LinkKind.BLACK

    def _build_global_links(self) -> None:
        topo = self.config
        if topo.num_groups <= 1:
            return
        pairs = [
            (a, b)
            for a in range(topo.num_groups)
            for b in range(a + 1, topo.num_groups)
        ]
        # Distribute at least one connection per group pair, then keep adding
        # connections round-robin while optical endpoints remain.
        capacity = [topo.global_links_per_router] * topo.num_routers
        rpg = topo.routers_per_group

        def next_router(group: int, start: int) -> int:
            """First router in ``group`` (scanning from ``start``) with a free endpoint."""
            base = group * rpg
            for k in range(rpg):
                rid = base + (start + k) % rpg
                if capacity[rid] > 0:
                    return rid
            raise ValueError(
                f"group {group} ran out of optical endpoints while wiring global links"
            )

        for idx, (a, b) in enumerate(pairs):
            ra = next_router(a, idx % rpg)
            rb = next_router(b, idx % rpg)
            self._add_global_connection(ra, rb)
            capacity[ra] -= 1
            capacity[rb] -= 1

        # Optional extra connections: keep cycling over the pairs as long as
        # both groups still have free endpoints, giving denser systems more
        # inter-group bandwidth (like using more than one tile per connection).
        extra_round = 1
        progress = True
        while progress:
            progress = False
            for idx, (a, b) in enumerate(pairs):
                offset = idx % rpg + extra_round
                try:
                    ra = next_router(a, offset)
                    rb = next_router(b, offset)
                except ValueError:
                    continue
                if capacity[ra] <= 0 or capacity[rb] <= 0:
                    continue
                if self._adjacency[ra].get(rb) == LinkKind.BLUE:
                    continue
                self._add_global_connection(ra, rb)
                capacity[ra] -= 1
                capacity[rb] -= 1
                progress = True
            extra_round += 1
            if extra_round > rpg:
                break

    def _add_global_connection(self, ra: int, rb: int) -> None:
        ga = group_of_router(ra, self.config)
        gb = group_of_router(rb, self.config)
        if ga == gb:
            raise ValueError("global connection must join two different groups")
        self._adjacency[ra][rb] = LinkKind.BLUE
        self._adjacency[rb][ra] = LinkKind.BLUE
        self._gateways.setdefault((ga, gb), []).append((ra, rb))
        self._gateways.setdefault((gb, ga), []).append((rb, ra))
        self._global_endpoints_used[ra] += 1
        self._global_endpoints_used[rb] += 1

    # -- queries ------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        """Total number of routers."""
        return self.config.num_routers

    @property
    def num_nodes(self) -> int:
        """Total number of compute nodes."""
        return self.config.num_nodes

    def neighbors(self, router_id: int) -> Dict[int, LinkKind]:
        """All routers directly connected to ``router_id`` with link kinds."""
        return self._adjacency[router_id]

    def link_kind(self, src: int, dst: int) -> LinkKind:
        """Kind of the direct link from ``src`` to ``dst``; raises if absent."""
        try:
            return self._adjacency[src][dst]
        except KeyError:
            raise KeyError(f"no direct link between routers {src} and {dst}") from None

    def has_link(self, src: int, dst: int) -> bool:
        """True if a direct link joins the two routers."""
        return dst in self._adjacency[src]

    def gateways(self, src_group: int, dst_group: int) -> Sequence[Tuple[int, int]]:
        """Optical connections from ``src_group`` to ``dst_group``.

        Each element ``(a, b)`` means router ``a`` (in the source group) has a
        direct optical link to router ``b`` (in the destination group).
        """
        if src_group == dst_group:
            raise ValueError("gateways are only defined between distinct groups")
        return self._gateways.get((src_group, dst_group), [])

    def group_of(self, router_id: int) -> int:
        """Group index of a flat router id."""
        return self.group_of_router[router_id]

    def coords_of(self, router_id: int) -> Tuple[int, int, int]:
        """``(group, chassis, blade)`` of a flat router id (array lookup)."""
        return (
            self.group_of_router[router_id],
            self.chassis_of_router[router_id],
            self.blade_of_router[router_id],
        )

    def routers_in_group(self, group: int) -> range:
        """Flat router ids of a group."""
        rpg = self.config.routers_per_group
        return range(group * rpg, (group + 1) * rpg)

    def all_links(self) -> List[LinkId]:
        """Every directed router-to-router link in the system."""
        links: List[LinkId] = []
        for src, neigh in enumerate(self._adjacency):
            for dst, kind in neigh.items():
                links.append(LinkId(src, dst, kind))
        return links

    def link_latency(self, kind: LinkKind) -> int:
        """One-way latency in cycles of a link of the given kind."""
        topo = self.config
        if kind == LinkKind.BLUE:
            return topo.global_link_latency
        if kind == LinkKind.HOST:
            return topo.host_link_latency
        return topo.local_link_latency

    def link_width(self, kind: LinkKind) -> int:
        """Number of parallel tiles backing a connection of the given kind.

        Parallel tiles are modelled as a single wider link: the buffer and
        the serialization bandwidth scale with the width.
        """
        topo = self.config
        if kind == LinkKind.GREEN:
            return topo.intra_chassis_tiles
        if kind == LinkKind.BLACK:
            return topo.intra_group_tiles
        return 1

    def degree_summary(self) -> Dict[str, float]:
        """Aggregate degree statistics (used by documentation and tests)."""
        greens = blacks = blues = 0
        for neigh in self._adjacency:
            for kind in neigh.values():
                if kind == LinkKind.GREEN:
                    greens += 1
                elif kind == LinkKind.BLACK:
                    blacks += 1
                else:
                    blues += 1
        n = self.config.num_routers
        return {
            "routers": float(n),
            "green_per_router": greens / n,
            "black_per_router": blacks / n,
            "blue_per_router": blues / n,
        }

    def validate(self) -> None:
        """Run structural invariants; raises ``AssertionError`` on violation."""
        topo = self.config
        for rid in range(topo.num_routers):
            coord = RouterCoord.from_flat(rid, topo)
            neigh = self._adjacency[rid]
            greens = sum(1 for k in neigh.values() if k == LinkKind.GREEN)
            blacks = sum(1 for k in neigh.values() if k == LinkKind.BLACK)
            assert greens == topo.blades_per_chassis - 1, (
                f"router {coord.label()} has {greens} green links, "
                f"expected {topo.blades_per_chassis - 1}"
            )
            assert blacks == topo.chassis_per_group - 1, (
                f"router {coord.label()} has {blacks} black links, "
                f"expected {topo.chassis_per_group - 1}"
            )
            assert self._global_endpoints_used[rid] <= topo.global_links_per_router
        for a in range(topo.num_groups):
            for b in range(topo.num_groups):
                if a == b:
                    continue
                assert self.gateways(a, b), f"groups {a} and {b} are not connected"
