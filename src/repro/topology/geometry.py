"""Coordinate systems for routers and nodes in a Dragonfly.

A router (one Aries device / blade) is addressed by ``(group, chassis,
blade)``; a compute node additionally carries the NIC index on its blade.
Flat integer ids are used throughout the simulator for speed; the coordinate
classes provide the conversions and human-readable labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TopologyConfig


@dataclass(frozen=True, order=True)
class RouterCoord:
    """Position of an Aries router: group, chassis within group, blade slot."""

    group: int
    chassis: int
    blade: int

    def flat(self, topo: TopologyConfig) -> int:
        """Flatten to a dense router id in ``[0, topo.num_routers)``."""
        return (
            self.group * topo.routers_per_group
            + self.chassis * topo.blades_per_chassis
            + self.blade
        )

    @classmethod
    def from_flat(cls, router_id: int, topo: TopologyConfig) -> "RouterCoord":
        """Inverse of :meth:`flat`."""
        if not 0 <= router_id < topo.num_routers:
            raise ValueError(f"router id {router_id} out of range")
        group, rest = divmod(router_id, topo.routers_per_group)
        chassis, blade = divmod(rest, topo.blades_per_chassis)
        return cls(group=group, chassis=chassis, blade=blade)

    def same_chassis(self, other: "RouterCoord") -> bool:
        """True when both routers sit in the same chassis of the same group."""
        return self.group == other.group and self.chassis == other.chassis

    def same_blade_slot(self, other: "RouterCoord") -> bool:
        """True when both routers occupy the same blade slot of the same group."""
        return self.group == other.group and self.blade == other.blade

    def label(self) -> str:
        """Human-readable label, e.g. ``g0-c2-b7``."""
        return f"g{self.group}-c{self.chassis}-b{self.blade}"


@dataclass(frozen=True, order=True)
class NodeCoord:
    """Position of a compute node: its router plus the NIC slot on the blade."""

    group: int
    chassis: int
    blade: int
    slot: int

    @property
    def router(self) -> RouterCoord:
        """The router (blade) hosting this node."""
        return RouterCoord(self.group, self.chassis, self.blade)

    def flat(self, topo: TopologyConfig) -> int:
        """Flatten to a dense node id in ``[0, topo.num_nodes)``."""
        return self.router.flat(topo) * topo.nodes_per_router + self.slot

    @classmethod
    def from_flat(cls, node_id: int, topo: TopologyConfig) -> "NodeCoord":
        """Inverse of :meth:`flat`."""
        if not 0 <= node_id < topo.num_nodes:
            raise ValueError(f"node id {node_id} out of range")
        router_id, slot = divmod(node_id, topo.nodes_per_router)
        router = RouterCoord.from_flat(router_id, topo)
        return cls(group=router.group, chassis=router.chassis, blade=router.blade, slot=slot)

    def label(self) -> str:
        """Human-readable label, e.g. ``g0-c2-b7-n3``."""
        return f"g{self.group}-c{self.chassis}-b{self.blade}-n{self.slot}"


def router_of_node(node_id: int, topo: TopologyConfig) -> int:
    """Return the flat router id hosting the given flat node id."""
    if not 0 <= node_id < topo.num_nodes:
        raise ValueError(f"node id {node_id} out of range")
    return node_id // topo.nodes_per_router


def nodes_of_router(router_id: int, topo: TopologyConfig) -> range:
    """Return the flat node ids attached to the given flat router id."""
    if not 0 <= router_id < topo.num_routers:
        raise ValueError(f"router id {router_id} out of range")
    start = router_id * topo.nodes_per_router
    return range(start, start + topo.nodes_per_router)


def group_of_router(router_id: int, topo: TopologyConfig) -> int:
    """Return the group index of a flat router id."""
    return router_id // topo.routers_per_group


def group_of_node(node_id: int, topo: TopologyConfig) -> int:
    """Return the group index of a flat node id."""
    return group_of_router(router_of_node(node_id, topo), topo)
