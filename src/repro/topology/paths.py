"""Minimal and non-minimal (Valiant) path sampling on the Dragonfly.

UGAL-style adaptive routing (Section 2.2) randomly samples two minimal and
two non-minimal candidate paths per packet and routes on the one estimated
to be least congested.  This module provides the samplers; the congestion
scoring lives in :mod:`repro.routing.ugal`.

Paths are represented as tuples of flat router ids, starting at the source
router (the router of the sending NIC) and ending at the destination router.
A path of length one means source and destination nodes share a blade.

Path sampling runs once per injected packet, so the implementation avoids
any object construction on the hot path: router coordinates come from the
topology's flat arrays and minimal hop counts are memoized.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.dragonfly import DragonflyTopology

Path = Tuple[int, ...]


def hop_count_minimal(topo: DragonflyTopology, src_router: int, dst_router: int) -> int:
    """Number of router-to-router hops on a minimal path.

    Intra-group distances are 0 (same router), 1 (same chassis or same blade
    slot) or 2.  Inter-group distances add one optical hop plus the local
    hops needed to reach/leave the gateway routers, bounded by 5.
    """
    if src_router == dst_router:
        return 0
    groups = topo.group_of_router
    chassis = topo.chassis_of_router
    blades = topo.blade_of_router
    ga, gb = groups[src_router], groups[dst_router]
    if ga == gb:
        if chassis[src_router] == chassis[dst_router] or blades[src_router] == blades[dst_router]:
            return 1
        return 2
    best = None
    for out_router, in_router in topo.gateways(ga, gb):
        hops = 1
        if out_router != src_router:
            hops += (
                1
                if chassis[src_router] == chassis[out_router]
                or blades[src_router] == blades[out_router]
                else 2
            )
        if in_router != dst_router:
            hops += (
                1
                if chassis[in_router] == chassis[dst_router]
                or blades[in_router] == blades[dst_router]
                else 2
            )
        if best is None or hops < best:
            best = hops
            if best == 1:
                break
    assert best is not None, "groups are not connected"
    return best


class PathSampler:
    """Samples minimal and non-minimal paths between routers.

    Parameters
    ----------
    topology:
        The Dragonfly link structure.
    rng:
        Random stream used for all sampling decisions; pass a dedicated
        stream so routing randomness is reproducible independently of other
        stochastic components.
    """

    def __init__(self, topology: DragonflyTopology, rng: random.Random):
        self.topology = topology
        self.rng = rng
        cfg = topology.config
        self._groups = topology.group_of_router
        self._chassis = topology.chassis_of_router
        self._blades = topology.blade_of_router
        self._blades_per_chassis = cfg.blades_per_chassis
        self._routers_per_group = cfg.routers_per_group
        self._num_groups = cfg.num_groups
        self._num_routers = topology.num_routers
        self._hops_cache: Dict[Tuple[int, int], int] = {}
        # src*num_routers+dst -> tuple of equally-likely gateway choices,
        # each a tuple of equally-likely minimal paths through that gateway.
        # Intra-group pairs store a single pseudo-gateway entry.  Sampling a
        # minimal path is then two uniform draws over prebuilt tuples.
        self._minimal_options: Dict[int, Tuple[Tuple[Path, ...], ...]] = {}

    # -- fast coordinate helpers ----------------------------------------------

    def _router_at(self, group: int, chassis: int, blade: int) -> int:
        return group * self._routers_per_group + chassis * self._blades_per_chassis + blade

    def minimal_hops(self, src_router: int, dst_router: int) -> int:
        """Memoized minimal hop count (used by the UGAL bias computation)."""
        key = (src_router, dst_router)
        hops = self._hops_cache.get(key)
        if hops is None:
            hops = hop_count_minimal(self.topology, src_router, dst_router)
            self._hops_cache[key] = hops
        return hops

    # -- intra-group helpers --------------------------------------------------

    def _intra_group_minimal(self, src: int, dst: int) -> Path:
        """A minimal path between two routers of the same group."""
        if src == dst:
            return (src,)
        if self._chassis[src] == self._chassis[dst] or self._blades[src] == self._blades[dst]:
            return (src, dst)
        # Two-hop path: either via the router sharing src's chassis and dst's
        # blade slot, or via the router sharing src's blade slot and dst's
        # chassis.  Both are minimal; pick one at random like the hardware's
        # hashed tie-breaking.
        group = self._groups[src]
        if self.rng.random() < 0.5:
            via = self._router_at(group, self._chassis[src], self._blades[dst])
        else:
            via = self._router_at(group, self._chassis[dst], self._blades[src])
        return (src, via, dst)

    def _intra_group_all_minimal(self, src: int, dst: int) -> List[Path]:
        """All minimal paths between two routers of the same group."""
        if src == dst:
            return [(src,)]
        if self._chassis[src] == self._chassis[dst] or self._blades[src] == self._blades[dst]:
            return [(src, dst)]
        group = self._groups[src]
        via1 = self._router_at(group, self._chassis[src], self._blades[dst])
        via2 = self._router_at(group, self._chassis[dst], self._blades[src])
        return [(src, via1, dst), (src, via2, dst)]

    # -- public samplers -----------------------------------------------------

    def _build_minimal_options(self, src_router: int, dst_router: int) -> Tuple[Tuple[Path, ...], ...]:
        """Enumerate the per-gateway minimal path choices for one pair.

        The nesting mirrors the hardware-style hierarchical sampling this
        class has always done: pick a gateway pair uniformly, then one of
        the (up to four) head×tail leg combinations uniformly.  Keeping the
        two levels separate preserves that distribution exactly — a gateway
        with one leg combination is as likely as one with four.
        """
        gs = self._groups[src_router]
        gd = self._groups[dst_router]
        if gs == gd:
            return (tuple(self._intra_group_all_minimal(src_router, dst_router)),)
        options = []
        for ga, gb in self.topology.gateways(gs, gd):
            combos = tuple(
                head + tail
                for head in self._intra_group_all_minimal(src_router, ga)
                for tail in self._intra_group_all_minimal(gb, dst_router)
            )
            options.append(combos)
        return tuple(options)

    def minimal(self, src_router: int, dst_router: int) -> Path:
        """Sample one minimal path from ``src_router`` to ``dst_router``."""
        if src_router == dst_router:
            return (src_router,)
        key = src_router * self._num_routers + dst_router
        options = self._minimal_options.get(key)
        if options is None:
            options = self._build_minimal_options(src_router, dst_router)
            self._minimal_options[key] = options
        rnd = self.rng.random
        combos = options[int(rnd() * len(options))] if len(options) > 1 else options[0]
        if len(combos) > 1:
            return combos[int(rnd() * len(combos))]
        return combos[0]

    def nonminimal(
        self, src_router: int, dst_router: int, intermediate: Optional[int] = None
    ) -> Path:
        """Sample one Valiant (non-minimal) path.

        For inter-group traffic the path detours through a randomly chosen
        *intermediate group* connected to both endpoints, doubling the number
        of optical hops — up to 10 hops total on the largest systems, exactly
        as described in Section 2.2.  For intra-group traffic the detour goes
        through a random intermediate router of the same group.
        """
        if src_router == dst_router:
            return (src_router,)
        gs = self._groups[src_router]
        gd = self._groups[dst_router]
        rnd = self.rng.random
        rpg = self._routers_per_group
        if gs == gd:
            if intermediate is None:
                base = gs * rpg
                intermediate = base + int(rnd() * rpg)
                if intermediate in (src_router, dst_router):
                    intermediate = base + int(rnd() * rpg)
                if intermediate in (src_router, dst_router):
                    return self.minimal(src_router, dst_router)
            head = self._intra_group_minimal(src_router, intermediate)
            tail = self._intra_group_minimal(intermediate, dst_router)
            return head + tail[1:]
        # Inter-group: detour via an intermediate group.
        if intermediate is None:
            if self._num_groups <= 2:
                return self._two_group_detour(src_router, dst_router)
            gi = int(rnd() * self._num_groups)
            while gi == gs or gi == gd:
                gi = int(rnd() * self._num_groups)
        else:
            gi = intermediate
        pivot = gi * rpg + int(rnd() * rpg)
        head = self.minimal(src_router, pivot)
        tail = self.minimal(pivot, dst_router)
        return head + tail[1:]

    def _two_group_detour(self, src_router: int, dst_router: int) -> Path:
        """Non-minimal path when only two groups exist."""
        gd = self._groups[dst_router]
        base = gd * self._routers_per_group
        pivot = base + int(self.rng.random() * self._routers_per_group)
        if pivot == dst_router:
            pivot = base + (pivot - base + 1) % self._routers_per_group
        if pivot == dst_router:
            return self.minimal(src_router, dst_router)
        head = self.minimal(src_router, pivot)
        tail = self._intra_group_minimal(pivot, dst_router)
        return head + tail[1:]

    def all_minimal(self, src_router: int, dst_router: int) -> List[Path]:
        """Enumerate every minimal path (used by tests and analysis).

        The number of minimal inter-group paths grows with the number of
        gateway connections between the two groups; the paper exploits this
        when explaining why high-bias routing spreads inter-group traffic
        well (Section 4.1).
        """
        topo = self.topology
        if src_router == dst_router:
            return [(src_router,)]
        gs = self._groups[src_router]
        gd = self._groups[dst_router]
        if gs == gd:
            return self._intra_group_all_minimal(src_router, dst_router)
        paths: List[Path] = []
        best = hop_count_minimal(topo, src_router, dst_router)
        for ga, gb in topo.gateways(gs, gd):
            for head in self._intra_group_all_minimal(src_router, ga):
                for tail in self._intra_group_all_minimal(gb, dst_router):
                    path = head + tail
                    if len(path) - 1 == best:
                        paths.append(path)
        return paths

    def validate_path(self, path: Sequence[int]) -> None:
        """Assert that consecutive routers on ``path`` are directly linked."""
        topo = self.topology
        for a, b in zip(path, path[1:]):
            if not topo.has_link(a, b):
                raise AssertionError(f"path hop {a}->{b} has no physical link")
