"""Aries-like Dragonfly topology model.

The topology follows the three connectivity tiers of the Cray Aries
interconnect described in Section 2.1 of the paper:

* **intra-chassis** ("green") links: every router is directly connected to
  all other routers in the same chassis;
* **intra-group** ("black") links: every router is directly connected to the
  routers occupying the same blade slot in the other chassis of its group;
* **inter-group** ("blue"/optical) links: each router owns a small number of
  optical endpoints; endpoints are distributed over group pairs so that every
  pair of groups is connected by at least one link.

Routers inside a group are therefore *not* fully connected: a minimal
intra-group path needs up to two hops (one green + one black), and a minimal
inter-group path needs up to five hops (two in the source group, one optical,
two in the destination group), exactly like the 5-hop example of Figure 1.
"""

from repro.topology.geometry import NodeCoord, RouterCoord
from repro.topology.dragonfly import DragonflyTopology, LinkKind, LinkId
from repro.topology.paths import PathSampler, hop_count_minimal

__all__ = [
    "NodeCoord",
    "RouterCoord",
    "DragonflyTopology",
    "LinkKind",
    "LinkId",
    "PathSampler",
    "hop_count_minimal",
]
