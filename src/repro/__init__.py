"""repro — reproduction of *Mitigating Network Noise on Dragonfly Networks
through Application-Aware Routing* (De Sensi, Di Girolamo, Hoefler — SC '19).

The package provides, from the bottom up:

* a packet-level discrete-event simulator of an Aries-like Dragonfly network
  (:mod:`repro.sim`, :mod:`repro.topology`, :mod:`repro.network`), plus a
  fast flow-level engine behind the same :class:`~repro.model.base.
  NetworkModel` protocol (:mod:`repro.model`);
* the routing modes of the Cray Aries interconnect, including UGAL adaptive
  routing with configurable minimal bias (:mod:`repro.routing`);
* the paper's contribution: the NIC-counter performance model, the
  application-aware routing selector (Algorithm 1) and its runtime shim
  (:mod:`repro.core`);
* an MPI-like layer with collectives, microbenchmarks and application
  proxies, job allocation and background noise
  (:mod:`repro.mpi`, :mod:`repro.workloads`, :mod:`repro.allocation`,
  :mod:`repro.noise`);
* statistics helpers and one experiment driver per table/figure
  (:mod:`repro.analysis`, :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import SimulationConfig, Network, RoutingMode
>>> net = Network(SimulationConfig.small())
>>> msg = net.send(0, net.num_nodes - 1, 4096, RoutingMode.ADAPTIVE_3)
>>> _ = net.run_until_idle()
>>> msg.delivered
True
"""

from repro.config import (
    HostConfig,
    NicConfig,
    RoutingConfig,
    SimulationConfig,
    TopologyConfig,
)
from repro.core.perf_model import (
    estimate_transmission_cycles,
    estimate_transmission_cycles_simple,
    model_correlation,
)
from repro.core.policy import (
    ApplicationAwarePolicy,
    RoutingPolicy,
    StaticRoutingPolicy,
    default_policy,
    high_bias_policy,
)
from repro.core.runtime import AppAwareRuntime
from repro.core.selector import AppAwareSelector, SelectorParams
from repro.model.base import NetworkModel, available_backends, build_network_model
from repro.mpi.job import MpiJob, RankContext
from repro.network.network import Network
from repro.network.packet import Message, RdmaOp
from repro.routing.modes import RoutingMode
from repro.sim.engine import Simulator
from repro.topology.dragonfly import DragonflyTopology
from repro.allocation.job import JobAllocation
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.experiments.harness import ExperimentScale

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "TopologyConfig",
    "NicConfig",
    "RoutingConfig",
    "HostConfig",
    # substrate
    "Simulator",
    "DragonflyTopology",
    "Network",
    "NetworkModel",
    "available_backends",
    "build_network_model",
    "Message",
    "RdmaOp",
    "RoutingMode",
    # the paper's contribution
    "estimate_transmission_cycles",
    "estimate_transmission_cycles_simple",
    "model_correlation",
    "AppAwareSelector",
    "SelectorParams",
    "RoutingPolicy",
    "StaticRoutingPolicy",
    "ApplicationAwarePolicy",
    "default_policy",
    "high_bias_policy",
    "AppAwareRuntime",
    # MPI-like layer and experiments
    "MpiJob",
    "RankContext",
    "JobAllocation",
    "BackgroundTraffic",
    "NoiseLevel",
    "ExperimentScale",
]
