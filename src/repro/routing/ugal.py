"""UGAL-style adaptive path selection with configurable minimal bias.

Every time a packet is injected, the selector samples two minimal and two
non-minimal candidate paths (Section 2.2), estimates the congestion of each
candidate from

* the *local* output-queue depth at the source router (always current), and
* the *far-end* occupancy of the first hop's downstream buffer, derived from
  flow-control credits and therefore **stale** by ``credit_info_delay``
  cycles — the source of phantom congestion,

multiplies the estimate by the candidate's hop count (longer paths hurt
more), adds the mode's bias to non-minimal candidates, and picks the lowest
score.  Deterministic modes (``MIN_HASH``, ``NMIN_HASH``, ``IN_ORDER``) skip
the scoring entirely.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import RoutingConfig
from repro.routing.bias import bias_for_mode
from repro.routing.modes import RoutingMode
from repro.telemetry.probes import PROBES
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import PathSampler, hop_count_minimal

Path = Tuple[int, ...]
#: Returns the Link object carrying traffic from the first to the second router.
LinkProbe = Callable[[int, int], "object"]


class PathDecision:
    """Outcome of one routing decision (kept for statistics and tests)."""

    __slots__ = ("path", "minimal", "score", "candidates_considered")

    def __init__(
        self, path: Path, minimal: bool, score: float, candidates_considered: int
    ):
        self.path = path
        self.minimal = minimal
        self.score = score
        self.candidates_considered = candidates_considered

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathDecision):
            return NotImplemented
        return (
            self.path == other.path
            and self.minimal == other.minimal
            and self.score == other.score
            and self.candidates_considered == other.candidates_considered
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "minimal" if self.minimal else "nonminimal"
        return f"PathDecision({self.path}, {kind}, score={self.score})"


class UgalSelector:
    """Per-packet path selection for all routing modes.

    Parameters
    ----------
    topology:
        The Dragonfly link structure.
    config:
        Bias values, candidate counts and the credit-information delay.
    rng:
        Random stream used for candidate sampling (hashed tie-breaking).
    link_probe:
        Callable mapping ``(src_router, dst_router)`` to the corresponding
        :class:`repro.network.link.Link`, used to read congestion.  It may be
        ``None`` for purely structural uses (e.g. tests of path legality), in
        which case congestion is treated as zero everywhere.
    links:
        Optional direct mapping ``(src_router, dst_router) -> Link`` covering
        every fabric link.  When given, the per-candidate congestion probe
        skips the ``link_probe`` indirection (the scoring runs four times per
        injected packet, so the call overhead is measurable).
    """

    def __init__(
        self,
        topology: DragonflyTopology,
        config: RoutingConfig,
        rng: random.Random,
        link_probe: Optional[LinkProbe] = None,
        links: Optional[dict] = None,
    ):
        self.topology = topology
        self.config = config
        self.rng = rng
        self.link_probe = link_probe
        self.links = links
        self.sampler = PathSampler(topology, rng)
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0
        self._far_weight = config.far_end_weight
        self._info_delay = config.credit_info_delay
        #: (mode, minimal_hops) -> bias; bias_for_mode is pure in the config.
        self._bias_cache: Dict[Tuple[RoutingMode, int], float] = {}

    # -- congestion scoring ----------------------------------------------------

    def _path_score(self, path: Path) -> float:
        """Congestion estimate of a candidate path (lower is better)."""
        hops = len(path) - 1
        if hops <= 0:
            return 0.0
        links = self.links
        if links is not None:
            link = links[(path[0], path[1])]
        elif self.link_probe is not None:
            link = self.link_probe(path[0], path[1])
        else:
            return float(hops)
        delay = self._info_delay
        if delay <= 0:
            far = float(link.capacity - link.credits)
        else:
            far = link.far_congestion(delay)
        port_congestion = link.queue_flits + self._far_weight * far
        return port_congestion * hops + hops

    # -- selection ---------------------------------------------------------------

    def select(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        """Choose the path for one packet from ``src_router`` to ``dst_router``."""
        if src_router == dst_router:
            return self._record(PathDecision((src_router,), True, 0.0, 1))
        if mode is RoutingMode.IN_ORDER:
            path = self.sampler.all_minimal(src_router, dst_router)[0]
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.MIN_HASH:
            path = self.sampler.minimal(src_router, dst_router)
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.NMIN_HASH:
            path = self.sampler.nonminimal(src_router, dst_router)
            return self._record(PathDecision(path, False, self._path_score(path), 1))
        if not mode.is_adaptive:
            raise ValueError(f"unsupported routing mode {mode}")
        if PROBES.enabled:
            recorder = PROBES.recorder
            if recorder is not None and recorder.want_decision():
                return self._record(
                    self._select_audited(src_router, dst_router, mode, recorder)
                )
        return self._record(self._select_adaptive(src_router, dst_router, mode))

    def _bias_for(self, mode: RoutingMode, src_router: int, dst_router: int) -> float:
        """Cached non-minimal bias for one (mode, endpoint-pair) decision."""
        if mode is RoutingMode.ADAPTIVE_0:
            return 0.0
        minimal_hops = self.sampler.minimal_hops(src_router, dst_router)
        key = (mode, minimal_hops)
        bias = self._bias_cache.get(key)
        if bias is None:
            bias = bias_for_mode(mode, self.config, minimal_hops)
            self._bias_cache[key] = bias
        return bias

    def _select_adaptive(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        cfg = self.config
        bias = self._bias_for(mode, src_router, dst_router)

        # Prefer minimal candidates on ties so a zero-bias idle network still
        # routes minimally (matching hardware behaviour at low load): minimal
        # candidates are scored first and only a strictly better score can
        # displace the running best.
        sampler = self.sampler
        score_of = self._path_score
        best_path: Optional[Path] = None
        best_score = 0.0
        best_minimal = True
        considered = 0
        prev_path: Optional[Path] = None
        prev_score = 0.0
        for _ in range(cfg.minimal_candidates):
            path = sampler.minimal(src_router, dst_router)
            # The sampler returns interned tuples, so two draws of the same
            # minimal route are the *same object*; scoring is pure at a fixed
            # instant, making the cached score exact.
            if path is prev_path:
                score = prev_score
            else:
                score = score_of(path)
                prev_path = path
                prev_score = score
            if best_path is None or score < best_score:
                best_score = score
                best_path = path
            considered += 1
        penalty = cfg.nonminimal_penalty
        for _ in range(cfg.nonminimal_candidates):
            path = sampler.nonminimal(src_router, dst_router)
            score = score_of(path) * penalty + bias
            if best_path is None or score < best_score:
                best_score = score
                best_path = path
                best_minimal = False
            considered += 1
        assert best_path is not None
        return PathDecision(best_path, best_minimal, best_score, considered)

    # -- decision audit ----------------------------------------------------------

    def _select_audited(
        self, src_router: int, dst_router: int, mode: RoutingMode, recorder
    ) -> PathDecision:
        """An adaptive decision that also records its full audit trail.

        Decision-identical to :meth:`_select_adaptive`: candidates are
        sampled up front, which consumes the RNG in the same order as the
        interleaved scalar loop (scoring draws nothing), the stale scores
        use the exact :meth:`_path_score` arithmetic and congestion reads,
        and the minimal-first strictly-better tie-break is reproduced.  On
        top of that, every candidate is re-scored under the *live* credit
        view (:meth:`repro.network.link.Link.occupancy_view` — a pure
        read), flagging decisions that would flip without the
        ``credit_info_delay`` staleness: the phantom-congestion signal.
        """
        cfg = self.config
        bias = self._bias_for(mode, src_router, dst_router)
        sampler = self.sampler
        minimal_paths = [
            sampler.minimal(src_router, dst_router)
            for _ in range(cfg.minimal_candidates)
        ]
        nonminimal_paths = [
            sampler.nonminimal(src_router, dst_router)
            for _ in range(cfg.nonminimal_candidates)
        ]
        paths = minimal_paths + nonminimal_paths
        n_min = len(minimal_paths)
        penalty = cfg.nonminimal_penalty
        far_weight = self._far_weight
        delay = self._info_delay
        links = self.links
        probe = self.link_probe
        now = 0
        candidates = []
        best_idx = -1
        best_score = 0.0
        best_minimal = True
        live_idx = -1
        live_best = 0.0
        for i, path in enumerate(paths):
            minimal = i < n_min
            hops = len(path) - 1
            queue = 0
            far_stale = 0.0
            far_live = 0.0
            if hops <= 0:
                score = 0.0
                live = 0.0
            else:
                if links is not None:
                    link = links[(path[0], path[1])]
                elif probe is not None:
                    link = probe(path[0], path[1])
                else:
                    link = None
                if link is None:
                    score = float(hops)
                    live = score
                else:
                    now = link.sim._now
                    # Stale view first, computed exactly as _path_score
                    # would (including its mutations — which the unaudited
                    # decision would have performed identically); the live
                    # view after it is a pure read.
                    if delay <= 0:
                        far_stale = float(link.capacity - link.credits)
                    else:
                        far_stale = link.far_congestion(delay)
                    far_live = float(link.occupancy_view(now))
                    queue = link.queue_flits
                    score = (queue + far_weight * far_stale) * hops + hops
                    live = (queue + far_weight * far_live) * hops + hops
            if not minimal:
                score = score * penalty + bias
                live = live * penalty + bias
            if best_idx < 0 or score < best_score:
                best_idx = i
                best_score = score
                best_minimal = minimal
            if live_idx < 0 or live < live_best:
                live_idx = i
                live_best = live
            candidates.append({
                "path": list(path),
                "minimal": minimal,
                "queue": queue,
                "far_stale": round(far_stale, 3),
                "far_live": round(far_live, 3),
                "score": round(score, 3),
                "score_live": round(live, 3),
            })
        flip = paths[best_idx] != paths[live_idx]
        recorder.record_decision({
            "t": now,
            "src": src_router,
            "dst": dst_router,
            "mode": mode.name,
            "bias": bias,
            "penalty": penalty,
            "chosen": best_idx,
            "minimal": best_minimal,
            "live_choice": live_idx,
            "flip": flip,
            "candidates": candidates,
        })
        return PathDecision(paths[best_idx], best_minimal, best_score, len(paths))

    # -- batch scoring entry point ----------------------------------------------

    def score_candidates(
        self,
        minimal_paths: Sequence[Path],
        nonminimal_paths: Sequence[Path],
        mode: RoutingMode,
        src_router: int,
        dst_router: int,
    ):
        """Vectorized congestion scores for one decision's candidate set.

        Returns ``(scores, best_index, best_minimal)`` where ``scores`` is a
        float64 NumPy array over ``minimal_paths + nonminimal_paths`` (in
        that order), non-minimal entries already carry the mode's penalty
        and bias (from :func:`repro.routing.bias.bias_for_mode`), and
        ``best_index``/``best_minimal`` reproduce the scalar selection rule
        exactly: NumPy's first-minimum ``argmin`` over minimal-first
        ordering is the same tie-break as "only a strictly better score
        displaces the running best", so minimal candidates win ties.

        The per-candidate quantities are the same IEEE-754 operations as
        :meth:`_path_score`, so scores (and therefore decisions) are
        bit-identical to the scalar loop.  Requires NumPy.
        """
        import numpy as np

        minimal_paths = list(minimal_paths)
        nonminimal_paths = list(nonminimal_paths)
        paths = minimal_paths + nonminimal_paths
        if not paths:
            raise ValueError("no candidate paths to score")
        n = len(paths)
        n_min = len(minimal_paths)
        hops = np.empty(n)
        congestion = np.empty(n)
        links = self.links
        probe = self.link_probe
        delay = self._info_delay
        far_weight = self._far_weight
        for i, path in enumerate(paths):
            path_hops = len(path) - 1
            hops[i] = path_hops
            if path_hops <= 0:
                congestion[i] = 0.0
                continue
            if links is not None:
                link = links[(path[0], path[1])]
            elif probe is not None:
                link = probe(path[0], path[1])
            else:
                congestion[i] = 0.0
                continue
            if delay <= 0:
                far = float(link.capacity - link.credits)
            else:
                far = link.far_congestion(delay)
            congestion[i] = link.queue_flits + far_weight * far
        scores = congestion * hops + hops
        if n_min < n:
            bias = self._bias_for(mode, src_router, dst_router)
            scores[n_min:] = scores[n_min:] * self.config.nonminimal_penalty + bias
        best = int(scores.argmin())
        return scores, best, best < n_min

    def _record(self, decision: PathDecision) -> PathDecision:
        self.decisions += 1
        if decision.minimal:
            self.minimal_decisions += 1
        else:
            self.nonminimal_decisions += 1
        return decision

    # -- statistics ---------------------------------------------------------------

    @property
    def minimal_fraction(self) -> float:
        """Fraction of all decisions that chose a minimal path."""
        if self.decisions == 0:
            return 1.0
        return self.minimal_decisions / self.decisions

    def reset_statistics(self) -> None:
        """Zero the decision counters (e.g. between experiment phases)."""
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0


#: Candidate count at or above which the batch selector scores a decision
#: through the vectorized entry point.  At the default 2+2 candidates NumPy
#: dispatch overhead exceeds the arithmetic saved, so small decisions stay
#: on the scalar loop; wider configured candidate sets amortize it.
VECTORIZE_MIN_CANDIDATES = 8


class BatchUgalSelector(UgalSelector):
    """The ``batch`` engine's selector: fused probe, vectorized wide scoring.

    Decision-for-decision identical to :class:`UgalSelector` — candidate
    sampling (and therefore RNG consumption), scores and tie-breaks all
    match exactly:

    * :meth:`_path_score` inlines the link congestion probe (the
      ``far_congestion`` property/method dispatch chain) into one frame;
    * adaptive decisions with at least :data:`VECTORIZE_MIN_CANDIDATES`
      candidates are scored through :meth:`UgalSelector.score_candidates`
      (sampling all candidates first consumes the RNG in the same order as
      the interleaved scalar loop, since scoring draws nothing).
    """

    def _path_score(self, path: Path) -> float:
        # UgalSelector._path_score with Link.far_congestion inlined.
        hops = len(path) - 1
        if hops <= 0:
            return 0.0
        links = self.links
        if links is not None:
            link = links[(path[0], path[1])]
        elif self.link_probe is not None:
            link = self.link_probe(path[0], path[1])
        else:
            return float(hops)
        delay = self._info_delay
        if delay <= 0:
            far = float(link.capacity - link.credits)
        else:
            now = link.sim._now
            arrivals = link._credit_arrivals
            if arrivals and arrivals[0][0] <= now:
                link._settle_credits(now)
            horizon = now - delay
            hist = link._occ_history
            if hist and hist[0][0] <= horizon:
                value = link._occ_delayed_value
                popleft = hist.popleft
                while hist and hist[0][0] <= horizon:
                    value = popleft()[1]
                link._occ_delayed_value = value
            far = float(link._occ_delayed_value)
        port_congestion = link.queue_flits + self._far_weight * far
        return port_congestion * hops + hops

    def select(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        # Deterministic modes, same-router sends and probe-less selectors are
        # off the per-packet hot path; only fuse the adaptive scalar loop.
        if (
            not mode.is_adaptive
            or src_router == dst_router
            or self.links is None
        ):
            return super().select(src_router, dst_router, mode)
        if PROBES.enabled:
            recorder = PROBES.recorder
            if recorder is not None and recorder.want_decision():
                # The audited scalar path reuses far_congestion(), which the
                # fused loops inline bit-identically, so routing one sampled
                # decision through it cannot change the decision stream.
                decision = self._select_audited(
                    src_router, dst_router, mode, recorder
                )
                self.decisions += 1
                if decision.minimal:
                    self.minimal_decisions += 1
                else:
                    self.nonminimal_decisions += 1
                return decision
        cfg = self.config
        minimal_candidates = cfg.minimal_candidates
        nonminimal_candidates = cfg.nonminimal_candidates
        total = minimal_candidates + nonminimal_candidates
        if total >= VECTORIZE_MIN_CANDIDATES:
            decision = self._select_vectorized(src_router, dst_router, mode)
        else:
            # UgalSelector._select_adaptive with _path_score and the
            # far-congestion probe inlined into the candidate loops.
            if mode is RoutingMode.ADAPTIVE_0:
                bias = 0.0
            else:
                bias = self._bias_for(mode, src_router, dst_router)
            sampler = self.sampler
            links = self.links
            delay = self._info_delay
            far_weight = self._far_weight
            sample_minimal = sampler.minimal
            best_path: Optional[Path] = None
            best_score = 0.0
            best_minimal = True
            prev_path: Optional[Path] = None
            prev_score = 0.0
            for _ in range(minimal_candidates):
                path = sample_minimal(src_router, dst_router)
                if path is prev_path:
                    score = prev_score
                else:
                    hops = len(path) - 1
                    if hops <= 0:
                        score = 0.0
                    else:
                        link = links[(path[0], path[1])]
                        if delay <= 0:
                            far = float(link.capacity - link.credits)
                        else:
                            now = link.sim._now
                            arrivals = link._credit_arrivals
                            if arrivals and arrivals[0][0] <= now:
                                link._settle_credits(now)
                            horizon = now - delay
                            hist = link._occ_history
                            if hist and hist[0][0] <= horizon:
                                value = link._occ_delayed_value
                                popleft = hist.popleft
                                while hist and hist[0][0] <= horizon:
                                    value = popleft()[1]
                                link._occ_delayed_value = value
                            far = float(link._occ_delayed_value)
                        score = (
                            link.queue_flits + far_weight * far
                        ) * hops + hops
                    prev_path = path
                    prev_score = score
                if best_path is None or score < best_score:
                    best_score = score
                    best_path = path
            penalty = cfg.nonminimal_penalty
            sample_nonminimal = sampler.nonminimal
            for _ in range(nonminimal_candidates):
                path = sample_nonminimal(src_router, dst_router)
                hops = len(path) - 1
                if hops <= 0:
                    score = 0.0
                else:
                    link = links[(path[0], path[1])]
                    if delay <= 0:
                        far = float(link.capacity - link.credits)
                    else:
                        now = link.sim._now
                        arrivals = link._credit_arrivals
                        if arrivals and arrivals[0][0] <= now:
                            link._settle_credits(now)
                        horizon = now - delay
                        hist = link._occ_history
                        if hist and hist[0][0] <= horizon:
                            value = link._occ_delayed_value
                            popleft = hist.popleft
                            while hist and hist[0][0] <= horizon:
                                value = popleft()[1]
                            link._occ_delayed_value = value
                        far = float(link._occ_delayed_value)
                    score = (link.queue_flits + far_weight * far) * hops + hops
                score = score * penalty + bias
                if best_path is None or score < best_score:
                    best_score = score
                    best_path = path
                    best_minimal = False
            assert best_path is not None
            decision = PathDecision(best_path, best_minimal, best_score, total)
        self.decisions += 1
        if decision.minimal:
            self.minimal_decisions += 1
        else:
            self.nonminimal_decisions += 1
        return decision

    def _select_vectorized(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        """Wide adaptive decisions go through the NumPy scoring entry point.

        Sampling all candidates before scoring consumes the RNG in the same
        order as the interleaved scalar loop (scoring draws nothing), so the
        decision stream is identical.
        """
        cfg = self.config
        sampler = self.sampler
        minimal_paths = [
            sampler.minimal(src_router, dst_router)
            for _ in range(cfg.minimal_candidates)
        ]
        nonminimal_paths = [
            sampler.nonminimal(src_router, dst_router)
            for _ in range(cfg.nonminimal_candidates)
        ]
        scores, best, best_minimal = self.score_candidates(
            minimal_paths, nonminimal_paths, mode, src_router, dst_router
        )
        paths = minimal_paths + nonminimal_paths
        return PathDecision(
            paths[best], best_minimal, float(scores[best]), len(paths)
        )
