"""UGAL-style adaptive path selection with configurable minimal bias.

Every time a packet is injected, the selector samples two minimal and two
non-minimal candidate paths (Section 2.2), estimates the congestion of each
candidate from

* the *local* output-queue depth at the source router (always current), and
* the *far-end* occupancy of the first hop's downstream buffer, derived from
  flow-control credits and therefore **stale** by ``credit_info_delay``
  cycles — the source of phantom congestion,

multiplies the estimate by the candidate's hop count (longer paths hurt
more), adds the mode's bias to non-minimal candidates, and picks the lowest
score.  Deterministic modes (``MIN_HASH``, ``NMIN_HASH``, ``IN_ORDER``) skip
the scoring entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import RoutingConfig
from repro.routing.bias import bias_for_mode
from repro.routing.modes import RoutingMode
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import PathSampler, hop_count_minimal

Path = Tuple[int, ...]
#: Returns the Link object carrying traffic from the first to the second router.
LinkProbe = Callable[[int, int], "object"]


@dataclass
class PathDecision:
    """Outcome of one routing decision (kept for statistics and tests)."""

    path: Path
    minimal: bool
    score: float
    candidates_considered: int


class UgalSelector:
    """Per-packet path selection for all routing modes.

    Parameters
    ----------
    topology:
        The Dragonfly link structure.
    config:
        Bias values, candidate counts and the credit-information delay.
    rng:
        Random stream used for candidate sampling (hashed tie-breaking).
    link_probe:
        Callable mapping ``(src_router, dst_router)`` to the corresponding
        :class:`repro.network.link.Link`, used to read congestion.  It may be
        ``None`` for purely structural uses (e.g. tests of path legality), in
        which case congestion is treated as zero everywhere.
    """

    def __init__(
        self,
        topology: DragonflyTopology,
        config: RoutingConfig,
        rng: random.Random,
        link_probe: Optional[LinkProbe] = None,
    ):
        self.topology = topology
        self.config = config
        self.rng = rng
        self.link_probe = link_probe
        self.sampler = PathSampler(topology, rng)
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0

    # -- congestion scoring ----------------------------------------------------

    def _path_score(self, path: Path) -> float:
        """Congestion estimate of a candidate path (lower is better)."""
        hops = len(path) - 1
        if hops <= 0:
            return 0.0
        if self.link_probe is None:
            return float(hops)
        link = self.link_probe(path[0], path[1])
        cfg = self.config
        port_congestion = link.local_congestion() + cfg.far_end_weight * link.far_congestion(
            cfg.credit_info_delay
        )
        return port_congestion * hops + float(hops)

    # -- selection ---------------------------------------------------------------

    def select(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        """Choose the path for one packet from ``src_router`` to ``dst_router``."""
        if src_router == dst_router:
            return self._record(PathDecision((src_router,), True, 0.0, 1))
        if mode is RoutingMode.IN_ORDER:
            path = self.sampler.all_minimal(src_router, dst_router)[0]
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.MIN_HASH:
            path = self.sampler.minimal(src_router, dst_router)
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.NMIN_HASH:
            path = self.sampler.nonminimal(src_router, dst_router)
            return self._record(PathDecision(path, False, self._path_score(path), 1))
        if not mode.is_adaptive:
            raise ValueError(f"unsupported routing mode {mode}")
        return self._record(self._select_adaptive(src_router, dst_router, mode))

    def _select_adaptive(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        cfg = self.config
        if mode is RoutingMode.ADAPTIVE_0:
            bias = 0.0
        else:
            minimal_hops = self.sampler.minimal_hops(src_router, dst_router)
            bias = bias_for_mode(mode, cfg, minimal_hops)

        candidates: List[Tuple[float, bool, Path]] = []
        for _ in range(cfg.minimal_candidates):
            path = self.sampler.minimal(src_router, dst_router)
            candidates.append((self._path_score(path), True, path))
        for _ in range(cfg.nonminimal_candidates):
            path = self.sampler.nonminimal(src_router, dst_router)
            score = self._path_score(path) * cfg.nonminimal_penalty + bias
            candidates.append((score, False, path))

        # Prefer minimal candidates on ties so a zero-bias idle network still
        # routes minimally (matching hardware behaviour at low load).
        best_score, best_minimal, best_path = min(
            candidates, key=lambda item: (item[0], not item[1])
        )
        return PathDecision(best_path, best_minimal, best_score, len(candidates))

    def _record(self, decision: PathDecision) -> PathDecision:
        self.decisions += 1
        if decision.minimal:
            self.minimal_decisions += 1
        else:
            self.nonminimal_decisions += 1
        return decision

    # -- statistics ---------------------------------------------------------------

    @property
    def minimal_fraction(self) -> float:
        """Fraction of all decisions that chose a minimal path."""
        if self.decisions == 0:
            return 1.0
        return self.minimal_decisions / self.decisions

    def reset_statistics(self) -> None:
        """Zero the decision counters (e.g. between experiment phases)."""
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0
