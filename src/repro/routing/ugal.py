"""UGAL-style adaptive path selection with configurable minimal bias.

Every time a packet is injected, the selector samples two minimal and two
non-minimal candidate paths (Section 2.2), estimates the congestion of each
candidate from

* the *local* output-queue depth at the source router (always current), and
* the *far-end* occupancy of the first hop's downstream buffer, derived from
  flow-control credits and therefore **stale** by ``credit_info_delay``
  cycles — the source of phantom congestion,

multiplies the estimate by the candidate's hop count (longer paths hurt
more), adds the mode's bias to non-minimal candidates, and picks the lowest
score.  Deterministic modes (``MIN_HASH``, ``NMIN_HASH``, ``IN_ORDER``) skip
the scoring entirely.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import RoutingConfig
from repro.routing.bias import bias_for_mode
from repro.routing.modes import RoutingMode
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import PathSampler, hop_count_minimal

Path = Tuple[int, ...]
#: Returns the Link object carrying traffic from the first to the second router.
LinkProbe = Callable[[int, int], "object"]


class PathDecision:
    """Outcome of one routing decision (kept for statistics and tests)."""

    __slots__ = ("path", "minimal", "score", "candidates_considered")

    def __init__(
        self, path: Path, minimal: bool, score: float, candidates_considered: int
    ):
        self.path = path
        self.minimal = minimal
        self.score = score
        self.candidates_considered = candidates_considered

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathDecision):
            return NotImplemented
        return (
            self.path == other.path
            and self.minimal == other.minimal
            and self.score == other.score
            and self.candidates_considered == other.candidates_considered
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "minimal" if self.minimal else "nonminimal"
        return f"PathDecision({self.path}, {kind}, score={self.score})"


class UgalSelector:
    """Per-packet path selection for all routing modes.

    Parameters
    ----------
    topology:
        The Dragonfly link structure.
    config:
        Bias values, candidate counts and the credit-information delay.
    rng:
        Random stream used for candidate sampling (hashed tie-breaking).
    link_probe:
        Callable mapping ``(src_router, dst_router)`` to the corresponding
        :class:`repro.network.link.Link`, used to read congestion.  It may be
        ``None`` for purely structural uses (e.g. tests of path legality), in
        which case congestion is treated as zero everywhere.
    links:
        Optional direct mapping ``(src_router, dst_router) -> Link`` covering
        every fabric link.  When given, the per-candidate congestion probe
        skips the ``link_probe`` indirection (the scoring runs four times per
        injected packet, so the call overhead is measurable).
    """

    def __init__(
        self,
        topology: DragonflyTopology,
        config: RoutingConfig,
        rng: random.Random,
        link_probe: Optional[LinkProbe] = None,
        links: Optional[dict] = None,
    ):
        self.topology = topology
        self.config = config
        self.rng = rng
        self.link_probe = link_probe
        self.links = links
        self.sampler = PathSampler(topology, rng)
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0
        self._far_weight = config.far_end_weight
        self._info_delay = config.credit_info_delay
        #: (mode, minimal_hops) -> bias; bias_for_mode is pure in the config.
        self._bias_cache: Dict[Tuple[RoutingMode, int], float] = {}

    # -- congestion scoring ----------------------------------------------------

    def _path_score(self, path: Path) -> float:
        """Congestion estimate of a candidate path (lower is better)."""
        hops = len(path) - 1
        if hops <= 0:
            return 0.0
        links = self.links
        if links is not None:
            link = links[(path[0], path[1])]
        elif self.link_probe is not None:
            link = self.link_probe(path[0], path[1])
        else:
            return float(hops)
        delay = self._info_delay
        if delay <= 0:
            far = float(link.capacity - link.credits)
        else:
            far = link.far_congestion(delay)
        port_congestion = link.queue_flits + self._far_weight * far
        return port_congestion * hops + hops

    # -- selection ---------------------------------------------------------------

    def select(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        """Choose the path for one packet from ``src_router`` to ``dst_router``."""
        if src_router == dst_router:
            return self._record(PathDecision((src_router,), True, 0.0, 1))
        if mode is RoutingMode.IN_ORDER:
            path = self.sampler.all_minimal(src_router, dst_router)[0]
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.MIN_HASH:
            path = self.sampler.minimal(src_router, dst_router)
            return self._record(PathDecision(path, True, self._path_score(path), 1))
        if mode is RoutingMode.NMIN_HASH:
            path = self.sampler.nonminimal(src_router, dst_router)
            return self._record(PathDecision(path, False, self._path_score(path), 1))
        if not mode.is_adaptive:
            raise ValueError(f"unsupported routing mode {mode}")
        return self._record(self._select_adaptive(src_router, dst_router, mode))

    def _select_adaptive(
        self, src_router: int, dst_router: int, mode: RoutingMode
    ) -> PathDecision:
        cfg = self.config
        if mode is RoutingMode.ADAPTIVE_0:
            bias = 0.0
        else:
            minimal_hops = self.sampler.minimal_hops(src_router, dst_router)
            key = (mode, minimal_hops)
            bias = self._bias_cache.get(key)
            if bias is None:
                bias = bias_for_mode(mode, cfg, minimal_hops)
                self._bias_cache[key] = bias

        # Prefer minimal candidates on ties so a zero-bias idle network still
        # routes minimally (matching hardware behaviour at low load): minimal
        # candidates are scored first and only a strictly better score can
        # displace the running best.
        sampler = self.sampler
        score_of = self._path_score
        best_path: Optional[Path] = None
        best_score = 0.0
        best_minimal = True
        considered = 0
        prev_path: Optional[Path] = None
        prev_score = 0.0
        for _ in range(cfg.minimal_candidates):
            path = sampler.minimal(src_router, dst_router)
            # The sampler returns interned tuples, so two draws of the same
            # minimal route are the *same object*; scoring is pure at a fixed
            # instant, making the cached score exact.
            if path is prev_path:
                score = prev_score
            else:
                score = score_of(path)
                prev_path = path
                prev_score = score
            if best_path is None or score < best_score:
                best_score = score
                best_path = path
            considered += 1
        penalty = cfg.nonminimal_penalty
        for _ in range(cfg.nonminimal_candidates):
            path = sampler.nonminimal(src_router, dst_router)
            score = score_of(path) * penalty + bias
            if best_path is None or score < best_score:
                best_score = score
                best_path = path
                best_minimal = False
            considered += 1
        assert best_path is not None
        return PathDecision(best_path, best_minimal, best_score, considered)

    def _record(self, decision: PathDecision) -> PathDecision:
        self.decisions += 1
        if decision.minimal:
            self.minimal_decisions += 1
        else:
            self.nonminimal_decisions += 1
        return decision

    # -- statistics ---------------------------------------------------------------

    @property
    def minimal_fraction(self) -> float:
        """Fraction of all decisions that chose a minimal path."""
        if self.decisions == 0:
            return 1.0
        return self.minimal_decisions / self.decisions

    def reset_statistics(self) -> None:
        """Zero the decision counters (e.g. between experiment phases)."""
        self.decisions = 0
        self.minimal_decisions = 0
        self.nonminimal_decisions = 0
