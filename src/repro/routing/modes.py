"""Routing mode identifiers and their properties."""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet


class RoutingMode(str, Enum):
    """The routing modes selectable per message.

    The names follow the ``MPICH_GNI_ROUTING_MODE`` values; the aliases used
    in the paper's text are available through :meth:`paper_name`.
    """

    ADAPTIVE_0 = "ADAPTIVE_0"
    ADAPTIVE_1 = "ADAPTIVE_1"
    ADAPTIVE_2 = "ADAPTIVE_2"
    ADAPTIVE_3 = "ADAPTIVE_3"
    MIN_HASH = "MIN_HASH"
    NMIN_HASH = "NMIN_HASH"
    IN_ORDER = "IN_ORDER"

    @property
    def is_adaptive(self) -> bool:
        """True for the UGAL-based modes (bias may still be applied)."""
        return self in ADAPTIVE_MODES

    @property
    def always_minimal(self) -> bool:
        """True when every packet is forced onto a minimal path."""
        return self in (RoutingMode.MIN_HASH, RoutingMode.IN_ORDER)

    @property
    def always_nonminimal(self) -> bool:
        """True when every packet is forced onto a non-minimal path."""
        return self is RoutingMode.NMIN_HASH

    def paper_name(self) -> str:
        """The human name used in the paper's figures."""
        return _PAPER_NAMES[self]

    @classmethod
    def default(cls) -> "RoutingMode":
        """The system default ("Default"/"Adaptive" in the figures)."""
        return cls.ADAPTIVE_0

    @classmethod
    def alltoall_default(cls) -> "RoutingMode":
        """The default mode applied to MPI_Alltoall traffic."""
        return cls.ADAPTIVE_1

    @classmethod
    def high_bias(cls) -> "RoutingMode":
        """The "Adaptive with High Bias" mode."""
        return cls.ADAPTIVE_3


_PAPER_NAMES = {
    RoutingMode.ADAPTIVE_0: "Adaptive",
    RoutingMode.ADAPTIVE_1: "Increasingly Minimal Bias",
    RoutingMode.ADAPTIVE_2: "Adaptive with Low Bias",
    RoutingMode.ADAPTIVE_3: "Adaptive with High Bias",
    RoutingMode.MIN_HASH: "Minimal Hashed",
    RoutingMode.NMIN_HASH: "Non-Minimal Hashed",
    RoutingMode.IN_ORDER: "In-Order Minimal",
}

#: Modes that perform per-packet adaptive (UGAL) decisions.
ADAPTIVE_MODES: FrozenSet[RoutingMode] = frozenset(
    {
        RoutingMode.ADAPTIVE_0,
        RoutingMode.ADAPTIVE_1,
        RoutingMode.ADAPTIVE_2,
        RoutingMode.ADAPTIVE_3,
    }
)

#: Modes that never adapt (fixed minimal or non-minimal path classes).
DETERMINISTIC_MODES: FrozenSet[RoutingMode] = frozenset(
    {RoutingMode.MIN_HASH, RoutingMode.NMIN_HASH, RoutingMode.IN_ORDER}
)
