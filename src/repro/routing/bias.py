"""Per-mode bias values added to the non-minimal congestion estimate.

The bias is what distinguishes the ``ADAPTIVE_*`` modes (Section 2.2): the
higher the bias, the more congested a non-minimal path must appear before it
is preferred over a minimal one, and therefore the higher the probability of
minimal routing.  Cray does not publish the exact values; the defaults in
:class:`repro.config.RoutingConfig` were chosen so that the *ordering*
ADAPTIVE_0 < ADAPTIVE_2 < ADAPTIVE_3 holds and ADAPTIVE_1 sits in between,
which is all the paper relies on.
"""

from __future__ import annotations

from repro.config import RoutingConfig
from repro.routing.modes import RoutingMode


def bias_for_mode(
    mode: RoutingMode,
    config: RoutingConfig,
    minimal_hops: int,
) -> float:
    """Bias (in buffer-flit units) applied to non-minimal candidates.

    Parameters
    ----------
    mode:
        The routing mode of the message being sent.
    config:
        Routing parameters holding the per-mode bias constants.
    minimal_hops:
        Hop count of the minimal route between the endpoints.  The
        Increasingly-Minimal-Bias mode raises its bias with the distance the
        packet still has to travel; with source routing we emulate the
        "increasing along the path" behaviour by scaling with the expected
        number of hops.
    """
    if mode is RoutingMode.ADAPTIVE_0:
        return 0.0
    if mode is RoutingMode.ADAPTIVE_2:
        return config.low_bias
    if mode is RoutingMode.ADAPTIVE_3:
        return config.high_bias
    if mode is RoutingMode.ADAPTIVE_1:
        scaled = config.imb_base_bias + config.imb_bias_per_hop * max(
            1, (minimal_hops + 1) // 2
        )
        # IMB never exceeds the explicit high-bias mode.
        return min(scaled, config.high_bias)
    raise ValueError(f"bias is only defined for adaptive modes, not {mode}")
