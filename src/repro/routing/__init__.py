"""Routing algorithms available on the simulated Aries network.

The module mirrors the modes selectable through ``MPICH_GNI_ROUTING_MODE``
(Section 2.2):

* ``ADAPTIVE_0`` — UGAL with no bias ("Adaptive");
* ``ADAPTIVE_1`` — Increasingly Minimal Bias (default for Alltoall);
* ``ADAPTIVE_2`` — UGAL with a low minimal bias;
* ``ADAPTIVE_3`` — UGAL with a high minimal bias ("Adaptive with High Bias");
* ``MIN_HASH`` — always minimal, hashed path selection;
* ``NMIN_HASH`` — always non-minimal, hashed path selection;
* ``IN_ORDER`` — always minimal, deterministic single path.
"""

from repro.routing.modes import RoutingMode, ADAPTIVE_MODES, DETERMINISTIC_MODES
from repro.routing.bias import bias_for_mode
from repro.routing.ugal import PathDecision, UgalSelector

__all__ = [
    "RoutingMode",
    "ADAPTIVE_MODES",
    "DETERMINISTIC_MODES",
    "bias_for_mode",
    "PathDecision",
    "UgalSelector",
]
