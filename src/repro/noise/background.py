"""Background traffic generators (other jobs sharing the network)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.model.base import NetworkModel
from repro.routing.modes import RoutingMode


class NoiseLevel(str, Enum):
    """Coarse cross-traffic intensities used by the experiments."""

    NONE = "none"
    LIGHT = "light"
    MODERATE = "moderate"
    HEAVY = "heavy"

    @property
    def utilization(self) -> float:
        """Approximate fraction of a node's injection bandwidth consumed."""
        return {
            NoiseLevel.NONE: 0.0,
            NoiseLevel.LIGHT: 0.05,
            NoiseLevel.MODERATE: 0.15,
            NoiseLevel.HEAVY: 0.35,
        }[self]


def noise_nodes_for(
    network: NetworkModel,
    measured_nodes: Sequence[int],
    fraction: float = 0.5,
    rng: Optional[random.Random] = None,
    max_nodes: Optional[int] = None,
) -> List[int]:
    """Pick nodes for background jobs from the free nodes of the machine.

    Free nodes located in the *same Dragonfly groups* as the measured job are
    preferred — their traffic shares routers and links with the job, which is
    what produces network noise (traffic in untouched groups would mostly
    just burn simulation time).  ``fraction`` limits how many of the eligible
    nodes generate noise and ``max_nodes`` caps the total (the default cap of
    roughly twice the measured-job size keeps the simulation cost of the
    noise proportional to the measured job).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    topo = network.config.topology
    taken = set(measured_nodes)
    group_of_router = network.topology.group_of_router
    job_groups = {
        group_of_router[n // topo.nodes_per_router] for n in measured_nodes
    }
    free_same_group: List[int] = []
    free_other: List[int] = []
    for node in range(network.num_nodes):
        if node in taken:
            continue
        group = group_of_router[node // topo.nodes_per_router]
        (free_same_group if group in job_groups else free_other).append(node)
    if rng is not None:
        rng.shuffle(free_same_group)
        rng.shuffle(free_other)
    ordered = free_same_group + free_other
    count = int(len(ordered) * fraction)
    if max_nodes is None:
        max_nodes = max(4, min(2 * len(measured_nodes), 32))
    count = min(count, max_nodes, len(ordered))
    return ordered[:count]


@dataclass
class _SenderState:
    node: int
    peer: int


class BackgroundTraffic:
    """A set of noise-generating nodes exchanging messages forever.

    Each noise node repeatedly sends a message of ``message_bytes`` to a peer
    (chosen per message: a fixed partner, a random node of the noise set, or
    a hotspot node), then waits an exponentially distributed gap sized so the
    average injection-bandwidth utilization matches ``utilization``.

    The generator is started with :meth:`start` and keeps scheduling itself
    until :meth:`stop` is called; the measured job simply stops stepping the
    simulator when it finishes, so leftover noise events are harmless.
    """

    def __init__(
        self,
        network: NetworkModel,
        nodes: Sequence[int],
        message_bytes: int = 8192,
        utilization: float = 0.15,
        pattern: str = "random",
        hotspot_node: Optional[int] = None,
        routing_mode: RoutingMode = RoutingMode.ADAPTIVE_0,
        rng: Optional[random.Random] = None,
        name: str = "noise",
    ):
        if not nodes:
            raise ValueError("background traffic needs at least one node")
        if len(nodes) == 1 and pattern != "hotspot":
            raise ValueError("a single noise node requires the 'hotspot' pattern")
        if not 0.0 < utilization <= 1.0:
            if utilization == 0.0:
                raise ValueError("utilization 0 means no noise; do not create the generator")
            raise ValueError("utilization must be within (0, 1]")
        if pattern not in ("random", "pairs", "hotspot"):
            raise ValueError(f"unknown noise pattern {pattern!r}")
        if pattern == "hotspot" and hotspot_node is None:
            raise ValueError("hotspot pattern requires hotspot_node")
        self.network = network
        self.nodes = list(nodes)
        self.message_bytes = message_bytes
        self.utilization = utilization
        self.pattern = pattern
        self.hotspot_node = hotspot_node
        self.routing_mode = routing_mode
        self.rng = rng or network.streams.stream(f"{name}-traffic")
        self.name = name
        self.active = False
        self.messages_sent = 0
        self.bytes_sent = 0
        # Mean inter-message gap per sender: a message of B bytes keeps the
        # injection pipe busy ~B/16 cycles (16 B per flit, 1 flit/cycle), so a
        # utilization u needs a mean gap of (B/16)/u cycles between sends.
        busy_cycles = max(1.0, message_bytes / network.config.nic.flit_payload_bytes)
        self._mean_gap = busy_cycles / utilization

    # -- lifecycle -------------------------------------------------------------

    def start(self, initial_spread: Optional[int] = None) -> None:
        """Begin generating traffic; senders start at staggered offsets."""
        if self.active:
            return
        self.active = True
        spread = initial_spread if initial_spread is not None else int(self._mean_gap)
        for node in self.nodes:
            offset = self.rng.randint(0, max(1, spread))
            self.network.sim.schedule(offset, self._send_next, node)

    def stop(self) -> None:
        """Stop generating new messages (in-flight ones drain normally)."""
        self.active = False

    # -- traffic loop ------------------------------------------------------------

    def _pick_peer(self, node: int) -> int:
        if self.pattern == "hotspot":
            return self.hotspot_node if node != self.hotspot_node else self.nodes[0]
        if self.pattern == "pairs":
            index = self.nodes.index(node)
            return self.nodes[index ^ 1] if (index ^ 1) < len(self.nodes) else self.nodes[0]
        # random: any other noise node
        peer = node
        while peer == node:
            peer = self.rng.choice(self.nodes)
        return peer

    def _send_next(self, node: int) -> None:
        if not self.active:
            return
        peer = self._pick_peer(node)
        if peer != node:
            self.network.send(
                src_node=node,
                dst_node=peer,
                size_bytes=self.message_bytes,
                routing_mode=self.routing_mode,
            )
            self.messages_sent += 1
            self.bytes_sent += self.message_bytes
        gap = self.rng.expovariate(1.0 / self._mean_gap)
        self.network.sim.schedule(max(1, int(gap)), self._send_next, node)

    # -- convenience constructors ----------------------------------------------------

    @classmethod
    def for_level(
        cls,
        network: NetworkModel,
        measured_nodes: Sequence[int],
        level: NoiseLevel,
        message_bytes: int = 8192,
        fraction_of_free_nodes: float = 0.5,
        max_nodes: Optional[int] = None,
        name: str = "noise",
    ) -> Optional["BackgroundTraffic"]:
        """Create (and return) a generator for a coarse noise level, or None."""
        if level is NoiseLevel.NONE:
            return None
        rng = network.streams.stream(f"{name}-placement")
        nodes = noise_nodes_for(
            network, measured_nodes, fraction_of_free_nodes, rng, max_nodes=max_nodes
        )
        if len(nodes) < 2:
            return None
        return cls(
            network,
            nodes,
            message_bytes=message_bytes,
            utilization=level.utilization,
            rng=network.streams.stream(f"{name}-traffic"),
            name=name,
        )
