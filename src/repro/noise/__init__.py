"""Background (cross-)traffic: the source of network noise.

The paper defines network noise as "an external effect on application
performance, caused by sharing resources with activities outside of the
control of the affected application".  On the production machines this came
from other jobs and system services; here it is produced by
:class:`~repro.noise.background.BackgroundTraffic` generators that keep
injecting messages between nodes *not* belonging to the measured job, over
the same routers and links.
"""

from repro.noise.background import BackgroundTraffic, NoiseLevel, noise_nodes_for

__all__ = ["BackgroundTraffic", "NoiseLevel", "noise_nodes_for"]
