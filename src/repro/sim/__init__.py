"""Discrete-event simulation engines used by the network model.

Three interchangeable engines implement the same (time, scheduling-order)
execution contract with callback-style events:

* ``reference`` — the original binary-heap queue keyed by (time, sequence
  number), kept as the parity baseline;
* ``calendar`` — per-cycle FIFO buckets with a heap of distinct times,
  the default (a flit simulation lands whole groups of callbacks on the
  same cycle, so this does one heap operation per *time* instead of per
  event);
* ``batch`` — the calendar scheduler plus a fused network fast path
  (NumPy-precomputed serialization tables, one-frame-per-hop link/router/
  NIC handlers, vectorized UGAL candidate scoring); requires NumPy and
  falls back to ``calendar`` with a warning when it is missing.

Select with ``REPRO_SIM_ENGINE=reference|calendar|batch`` or
:func:`make_simulator`.  Everything in the network model (link traversal,
credit returns, NIC injection) is expressed as scheduled callbacks, which
keeps the per-event overhead low — important because a single
large-message experiment schedules hundreds of thousands of events.
"""

from repro.sim.batch import BatchSimulator
from repro.sim.calendar import CalendarSimulator
from repro.sim.engine import (
    SIM_ENGINE_ENV_VAR,
    SIM_ENGINE_KINDS,
    Event,
    SimEngineError,
    Simulator,
    default_engine_kind,
    effective_engine_kind,
    make_simulator,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "Simulator",
    "CalendarSimulator",
    "BatchSimulator",
    "RandomStreams",
    "SIM_ENGINE_ENV_VAR",
    "SIM_ENGINE_KINDS",
    "SimEngineError",
    "default_engine_kind",
    "effective_engine_kind",
    "make_simulator",
]
