"""Discrete-event simulation engine used by the network model.

The engine is intentionally minimal: a binary-heap event queue keyed by
(time, sequence number) with callback-style events.  Everything in the
network model (link traversal, credit returns, NIC injection) is expressed
as scheduled callbacks, which keeps the per-event overhead low — important
because a single large-message experiment schedules hundreds of thousands
of events.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["Event", "Simulator", "RandomStreams"]
