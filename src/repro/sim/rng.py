"""Deterministic, named random streams.

Every stochastic component of the simulator (UGAL candidate sampling, OS
noise, background traffic arrivals, allocation shuffling, …) draws from its
own named stream derived from the master seed.  This keeps experiments
reproducible and — crucially for the paper's methodology (Section 3.1) —
lets us hold one source of randomness fixed (e.g. the allocation) while
varying another (e.g. cross traffic).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit stream seed from a master seed and a stream name.

    Uses SHA-256 so the derived seeds are stable across Python versions and
    processes (``hash()`` is salted and therefore unsuitable).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


class RandomStreams:
    """A registry of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream with the given name."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Re-seed every existing stream from a new master seed."""
        self.master_seed = master_seed
        for name, rng in self._streams.items():
            rng.seed(derive_seed(master_seed, name))

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent child registry (e.g. one per job)."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    # Convenience wrappers -------------------------------------------------

    def choice(self, name: str, seq: Sequence[T]) -> T:
        """Pick one element from ``seq`` using the named stream."""
        return self.stream(name).choice(seq)

    def sample(self, name: str, seq: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements from ``seq`` using the named stream."""
        return self.stream(name).sample(seq, k)

    def shuffled(self, name: str, seq: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``seq`` using the named stream."""
        items = list(seq)
        self.stream(name).shuffle(items)
        return items

    def uniform(self, name: str, a: float, b: float) -> float:
        """Uniform float in [a, b) from the named stream."""
        return self.stream(name).uniform(a, b)

    def expovariate(self, name: str, mean: float) -> float:
        """Exponential variate with the given mean from the named stream."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def randint(self, name: str, a: int, b: int) -> int:
        """Uniform integer in [a, b] from the named stream."""
        return self.stream(name).randint(a, b)

    def random(self, name: str) -> float:
        """Uniform float in [0, 1) from the named stream."""
        return self.stream(name).random()
