"""Callback-based discrete-event simulation core.

Time is a non-negative integer number of NIC clock cycles.  Events scheduled
for the same cycle execute in FIFO order of scheduling (stable ordering via a
monotonically increasing sequence number), which makes simulations fully
deterministic for a given seed.

The event queue stores plain lists ``[time, seq, fn, args]`` so heap
operations compare integers in C; cancellation simply clears the callback
slot.  :class:`Event` is a thin handle wrapping such an entry.

A live-event counter is maintained on schedule/cancel/execute so that
:meth:`Simulator.empty` is O(1) instead of scanning the heap (which may
hold arbitrarily many cancelled entries) on every call.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.telemetry.core import TELEMETRY


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Event:
    """A handle for a scheduled callback, usable to cancel it."""

    __slots__ = ("entry", "_sim")

    def __init__(self, entry: list, sim: Optional["Simulator"] = None):
        self.entry = entry
        self._sim = sim

    @property
    def time(self) -> int:
        """Absolute simulation time the event fires at."""
        return self.entry[0]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event ran)."""
        return self.entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it.

        Idempotent, and a no-op on an event that already executed — the
        live-event counter is only decremented for a genuinely pending
        event.
        """
        if self.entry[2] is None:
            return
        self.entry[2] = None
        self.entry[3] = ()
        if self._sim is not None:
            self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.entry[0]} seq={self.entry[1]}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(10, hits.append, 10)
    >>> _ = sim.schedule(5, hits.append, 5)
    >>> sim.run()
    >>> hits
    [5, 10]
    >>> sim.now
    10
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[list] = []
        self._events_executed: int = 0
        self._running: bool = False
        self._live_events: int = 0

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for progress accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of scheduled, not-yet-executed, not-cancelled events."""
        return self._live_events

    def empty(self) -> bool:
        """Return True when no live events remain (O(1))."""
        return self._live_events == 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; fractional delays are rounded up.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if isinstance(delay, float):
            delay = -int(-delay // 1)
        entry = [self._now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        self._live_events += 1
        return Event(entry, self)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, fn, *args)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event.  Return False if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            fn = entry[2]
            if fn is None:
                continue
            args = entry[3]
            # Null the slot so a later cancel() of this event's handle is a
            # no-op instead of double-decrementing the live counter.
            entry[2] = None
            entry[3] = ()
            self._now = entry[0]
            self._events_executed += 1
            self._live_events -= 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` cycles, or ``max_events``.

        Returns the simulation time at which execution stopped.  ``until`` is
        an absolute time: events scheduled strictly after it remain queued and
        the clock is advanced to ``until``.
        """
        if not TELEMETRY.enabled:
            return self._run(until, max_events)
        events_before = self._events_executed
        now_before = self._now
        with TELEMETRY.tracer.span("sim.run", cat="sim") as sp:
            result = self._run(until, max_events)
            events = self._events_executed - events_before
            sp.add(events=events, cycles=self._now - now_before,
                   queue_depth=len(self._queue))
        TELEMETRY.metrics.incr("sim.events", events)
        TELEMETRY.metrics.incr("sim.cycles", self._now - now_before)
        TELEMETRY.metrics.gauge("sim.queue_depth", len(self._queue))
        return result

    def _run(self, until: Optional[int], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            while queue:
                entry = queue[0]
                if entry[2] is None:
                    heapq.heappop(queue)
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(queue)
                fn, args = entry[2], entry[3]
                entry[2] = None  # see step(): protects against cancel-after-run
                entry[3] = ()
                self._now = entry[0]
                self._events_executed += 1
                self._live_events -= 1
                executed += 1
                fn(*args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain; guard against runaway simulations."""
        self.run(max_events=max_events)
        if not self.empty():
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
        return self._now

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero.

        Entries are nulled before the queue is dropped so that Event
        handles still held by callers become inert: cancelling one after a
        reset must not touch the fresh live-event counter.
        """
        self._now = 0
        self._seq = 0
        for entry in self._queue:
            entry[2] = None
            entry[3] = ()
        self._queue.clear()
        self._events_executed = 0
        self._live_events = 0
