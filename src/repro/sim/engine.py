"""Callback-based discrete-event simulation core.

Time is a non-negative integer number of NIC clock cycles.  Events scheduled
for the same cycle execute in FIFO order of scheduling (stable ordering via a
monotonically increasing sequence number), which makes simulations fully
deterministic for a given seed.

The event queue stores plain lists ``[time, seq, fn, args]`` so heap
operations compare integers in C; cancellation simply clears the callback
slot.  :class:`Event` is a thin handle wrapping such an entry.

A live-event counter is maintained on schedule/cancel/execute so that
:meth:`Simulator.empty` is O(1) instead of scanning the heap (which may
hold arbitrarily many cancelled entries) on every call.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, List, Optional

from repro.telemetry.core import TELEMETRY

#: Environment variable selecting the event-engine implementation.
SIM_ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Known engine kinds, in preference order.  ``reference`` is the original
#: binary-heap engine kept for parity testing; ``calendar`` is the bucketed
#: calendar-queue engine that the flit backend uses by default; ``batch``
#: is the calendar scheduler plus the fused/NumPy network fast path (see
#: :mod:`repro.sim.batch`), requiring NumPy.
SIM_ENGINE_KINDS = ("calendar", "reference", "batch")


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class SimEngineError(RuntimeError):
    """Raised when an unknown simulation engine is requested."""


class Event:
    """A handle for a scheduled callback, usable to cancel it."""

    __slots__ = ("entry", "_sim")

    def __init__(self, entry: list, sim: Optional["Simulator"] = None):
        self.entry = entry
        self._sim = sim

    @property
    def time(self) -> int:
        """Absolute simulation time the event fires at."""
        return self.entry[0]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event ran)."""
        return self.entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it.

        Idempotent, and a no-op on an event that already executed — the
        live-event counter is only decremented for a genuinely pending
        event.
        """
        if self.entry[2] is None:
            return
        self.entry[2] = None
        self.entry[3] = ()
        if self._sim is not None:
            self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.entry[0]} seq={self.entry[1]}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(10, hits.append, 10)
    >>> _ = sim.schedule(5, hits.append, 5)
    >>> sim.run()
    >>> hits
    [5, 10]
    >>> sim.now
    10
    """

    #: Which engine implementation this is (see :func:`make_simulator`).
    engine_kind = "reference"

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[list] = []
        self._events_executed: int = 0
        self._running: bool = False
        self._live_events: int = 0
        self._stop_requested: bool = False
        #: Optional fixed-interval sampler (``repro.telemetry.probes``):
        #: polled at time-advance boundaries via ``now >= next_due``,
        #: never scheduled as an event, so the event stream is untouched.
        self.probe_hook: Optional[Any] = None

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for progress accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of scheduled, not-yet-executed, not-cancelled events."""
        return self._live_events

    def empty(self) -> bool:
        """Return True when no live events remain (O(1))."""
        return self._live_events == 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; fractional delays are rounded up.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if isinstance(delay, float):
            delay = -int(-delay // 1)
        entry = [self._now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        self._live_events += 1
        return Event(entry, self)

    def schedule_call(self, delay, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` without materializing an :class:`Event`.

        The hot paths of the network model schedule hundreds of thousands of
        callbacks that are never cancelled; this variant skips the handle
        allocation entirely.  Semantics are otherwise identical to
        :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if isinstance(delay, float):
            delay = -int(-delay // 1)
        heapq.heappush(self._queue, [self._now + delay, self._seq, fn, args])
        self._seq += 1
        self._live_events += 1

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, fn, *args)

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event.

        Lets drivers that wait for a condition flipped *inside* an event
        callback (e.g. :class:`~repro.mpi.job.MpiJob` waiting for its last
        rank) use the tight ``run`` loop instead of stepping one event at a
        time.  A no-op when the simulator is idle.
        """
        if self._running:
            self._stop_requested = True

    def step(self) -> bool:
        """Execute the next live event.  Return False if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            fn = entry[2]
            if fn is None:
                continue
            args = entry[3]
            # Null the slot so a later cancel() of this event's handle is a
            # no-op instead of double-decrementing the live counter.
            entry[2] = None
            entry[3] = ()
            self._now = entry[0]
            hook = self.probe_hook
            if hook is not None and entry[0] >= hook.next_due:
                hook.sample(entry[0])
            self._events_executed += 1
            self._live_events -= 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` cycles, or ``max_events``.

        Returns the simulation time at which execution stopped.  ``until`` is
        an absolute time: events scheduled strictly after it remain queued and
        the clock is advanced to ``until``.
        """
        if not TELEMETRY.enabled:
            return self._run(until, max_events)
        events_before = self._events_executed
        now_before = self._now
        with TELEMETRY.tracer.span("sim.run", cat="sim") as sp:
            result = self._run(until, max_events)
            events = self._events_executed - events_before
            # Report live events, not raw queue length: the heap may hold
            # arbitrarily many cancelled tombstones, which would make the
            # gauge overstate real load.
            sp.add(events=events, cycles=self._now - now_before,
                   queue_depth=self._live_events)
        TELEMETRY.metrics.incr("sim.events", events)
        TELEMETRY.metrics.incr("sim.cycles", self._now - now_before)
        TELEMETRY.metrics.gauge("sim.queue_depth", self._live_events)
        return result

    def _run(self, until: Optional[int], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        queue = self._queue
        hook = self.probe_hook
        try:
            while queue:
                entry = queue[0]
                if entry[2] is None:
                    heapq.heappop(queue)
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(queue)
                fn, args = entry[2], entry[3]
                entry[2] = None  # see step(): protects against cancel-after-run
                entry[3] = ()
                self._now = entry[0]
                if hook is not None and entry[0] >= hook.next_due:
                    hook.sample(entry[0])
                self._events_executed += 1
                self._live_events -= 1
                executed += 1
                fn(*args)
                if self._stop_requested:
                    self._stop_requested = False
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain; guard against runaway simulations."""
        self.run(max_events=max_events)
        if not self.empty():
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
        return self._now

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero.

        Entries are nulled before the queue is dropped so that Event
        handles still held by callers become inert: cancelling one after a
        reset must not touch the fresh live-event counter.
        """
        self._now = 0
        self._seq = 0
        for entry in self._queue:
            entry[2] = None
            entry[3] = ()
        self._queue.clear()
        self._events_executed = 0
        self._live_events = 0
        self._stop_requested = False


# -- engine selection ---------------------------------------------------------


def default_engine_kind() -> str:
    """The engine kind to use when none is requested explicitly.

    ``REPRO_SIM_ENGINE`` overrides the built-in default (``calendar``); an
    unknown value raises :class:`SimEngineError` rather than silently falling
    back, so typos in CI configs are caught immediately.
    """
    requested = os.environ.get(SIM_ENGINE_ENV_VAR, "").strip().lower()
    if requested:
        if requested not in SIM_ENGINE_KINDS:
            raise SimEngineError(
                f"unknown simulation engine {requested!r} (from "
                f"{SIM_ENGINE_ENV_VAR}); known engines: {', '.join(SIM_ENGINE_KINDS)}"
            )
        return requested
    return "calendar"


def _numpy_available() -> bool:
    """True when NumPy can be imported (the batch engine requires it)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def effective_engine_kind(kind: Optional[str] = None) -> str:
    """Resolve ``kind`` (default: env/built-in) to the engine actually used.

    The only adjustment is the NumPy gate: a ``batch`` request degrades to
    ``calendar`` when NumPy is unavailable, exactly as
    :func:`make_simulator` will.  Cost models use this so planning reflects
    the engine a run will really execute on.
    """
    if kind is None:
        kind = default_engine_kind()
    if kind == "batch" and not _numpy_available():
        return "calendar"
    return kind


def make_simulator(kind: Optional[str] = None) -> Simulator:
    """Build a simulator of the requested (or default) engine kind.

    All engines honour the exact same (time, scheduling-order) execution
    contract, so they are interchangeable; ``reference`` is kept as the
    parity baseline for the equivalence suite in ``tests/test_flit_engine.py``.
    The ``batch`` engine requires NumPy and falls back to ``calendar`` with
    a structured-log warning when it is missing (same idiom as the
    ``REPRO_FLOW_SOLVER`` vectorized/reference fallback).
    """
    if kind is None:
        kind = default_engine_kind()
    if kind == "reference":
        return Simulator()
    if kind == "calendar":
        from repro.sim.calendar import CalendarSimulator

        return CalendarSimulator()
    if kind == "batch":
        if not _numpy_available():
            import logging

            from repro.telemetry.log import get_logger, log_event

            log_event(
                get_logger("sim.engine"),
                "sim.engine.fallback",
                level=logging.WARNING,
                requested="batch",
                selected="calendar",
                reason="numpy-unavailable",
            )
            from repro.sim.calendar import CalendarSimulator

            return CalendarSimulator()
        from repro.sim.batch import BatchSimulator

        return BatchSimulator()
    raise SimEngineError(
        f"unknown simulation engine {kind!r}; known engines: "
        f"{', '.join(SIM_ENGINE_KINDS)}"
    )
