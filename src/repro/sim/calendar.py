"""Calendar-queue (bucketed) event engine.

The reference engine keeps one binary heap entry per event, so every
schedule/execute pays an O(log n) sift over ``[time, seq, fn, args]`` lists.
Flit simulations schedule huge numbers of events at a small set of *distinct*
times, though — serialization boundaries, wire latencies and coalesced credit
returns all land whole groups of callbacks on the same cycle.  This engine
exploits that: events live in per-cycle FIFO buckets (``dict`` keyed by
absolute time), and only the *distinct times* go through a heap.

Buckets are flat ``[fn, args, fn, args, ...]`` lists — scheduling a callback
is two list appends, with no per-event entry object at all.  Cancellable
events (:meth:`schedule`) get a :class:`BucketEvent` handle that tombstones
the callback slot in place.

Ordering contract
-----------------
The reference engine executes events in (time, sequence) order, where the
sequence number increases monotonically with each ``schedule`` call.  Bucket
appends happen in exactly that call order, so FIFO-per-bucket reproduces the
contract precisely — including callbacks that schedule zero-delay work while
their own cycle is being drained (the new entry lands at the tail of the
live bucket and runs in the same pass, just as a freshly pushed heap entry
with a larger sequence number would).

A cursor (current bucket + index) persists across :meth:`step` and
:meth:`run` calls so callers that drive the simulator one event at a time
(``MpiJob``) interoperate with bucket draining.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import SimulationError, Simulator


class BucketEvent:
    """Cancellation handle for one slot of a calendar bucket.

    Duck-compatible with :class:`repro.sim.engine.Event` (``time``,
    ``cancelled``, ``cancel``).
    """

    __slots__ = ("_bucket", "_index", "_time", "_sim")

    def __init__(self, bucket: list, index: int, time: int, sim: "CalendarSimulator"):
        self._bucket = bucket
        self._index = index
        self._time = time
        self._sim = sim

    @property
    def time(self) -> int:
        """Absolute simulation time the event fires at."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event ran)."""
        return self._bucket[self._index] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it.

        Idempotent, and a no-op on an event that already executed — the
        live-event counter is only decremented for a genuinely pending
        event.
        """
        bucket = self._bucket
        index = self._index
        if bucket[index] is None:
            return
        bucket[index] = None
        bucket[index + 1] = None
        self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<BucketEvent t={self._time}{state}>"


class CalendarSimulator(Simulator):
    """Drop-in replacement for :class:`~repro.sim.engine.Simulator`.

    Executes the exact same event order as the reference engine (see module
    docstring) while doing one heap operation per distinct event *time*
    instead of per event.
    """

    engine_kind = "calendar"

    def __init__(self) -> None:
        super().__init__()
        # The inherited ``_queue``/``_seq`` stay unused (kept so repr-style
        # introspection of the base class does not explode).
        self._buckets: Dict[int, List[Any]] = {}
        self._times: List[int] = []
        self._cur_bucket: Optional[List[Any]] = None
        self._cur_time: int = 0
        self._cur_i: int = 0

    # -- inspection ---------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones, like the base)."""
        total = sum(len(bucket) for bucket in self._buckets.values())
        if self._cur_bucket is not None:
            total -= self._cur_i
        return total // 2

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay, fn: Callable[..., None], *args: Any) -> BucketEvent:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if isinstance(delay, float):
            delay = -int(-delay // 1)
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = [fn, args]
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
            index = 0
        else:
            index = len(bucket)
            bucket.append(fn)
            bucket.append(args)
        self._live_events += 1
        return BucketEvent(bucket, index, time, self)

    def schedule_call(self, delay, fn: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if isinstance(delay, float):
            delay = -int(-delay // 1)
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [fn, args]
            heapq.heappush(self._times, time)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._live_events += 1

    # -- execution ----------------------------------------------------------

    def _open_next_bucket(self, until: Optional[int]) -> bool:
        """Advance the cursor to the next non-empty bucket; False when done.

        The bucket stays registered in ``_buckets`` while it drains so that
        zero-delay schedules from its own callbacks append to it (and run in
        the same pass), matching the reference engine.
        """
        times = self._times
        while True:
            if not times:
                return False
            time = times[0]
            if until is not None and time > until:
                return False
            heapq.heappop(times)
            bucket = self._buckets[time]
            if bucket:
                self._cur_bucket = bucket
                self._cur_time = time
                self._cur_i = 0
                return True
            del self._buckets[time]

    def step(self) -> bool:
        while True:
            bucket = self._cur_bucket
            if bucket is None:
                if not self._open_next_bucket(None):
                    return False
                bucket = self._cur_bucket
            i = self._cur_i
            while i < len(bucket):
                fn = bucket[i]
                if fn is None:
                    i += 2
                    continue
                args = bucket[i + 1]
                bucket[i] = None
                bucket[i + 1] = None
                self._cur_i = i + 2
                self._now = self._cur_time
                hook = self.probe_hook
                if hook is not None and self._cur_time >= hook.next_due:
                    hook.sample(self._cur_time)
                self._events_executed += 1
                self._live_events -= 1
                fn(*args)
                return True
            self._cur_i = i
            if i >= len(bucket):
                self._cur_bucket = None
                del self._buckets[self._cur_time]

    def _run(self, until: Optional[int], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        limit = (1 << 62) if max_events is None else max_events
        executed = 0
        exhausted = False
        hook = self.probe_hook
        try:
            while not exhausted:
                bucket = self._cur_bucket
                if bucket is None:
                    if not self._open_next_bucket(until):
                        break
                    bucket = self._cur_bucket
                elif until is not None and self._cur_time > until:
                    # Resuming with a cursor parked past the horizon (a prior
                    # run stopped on max_events mid-bucket).
                    break
                time = self._cur_time
                # One probe check per bucket (per distinct time) rather than
                # per event: same grid alignment, far fewer branches.
                if hook is not None and time >= hook.next_due:
                    hook.sample(time)
                i = self._cur_i
                while i < len(bucket):
                    fn = bucket[i]
                    if fn is None:
                        i += 2
                        continue
                    if executed >= limit:
                        exhausted = True
                        break
                    args = bucket[i + 1]
                    bucket[i] = None
                    bucket[i + 1] = None
                    i += 2
                    self._now = time
                    self._events_executed += 1
                    self._live_events -= 1
                    executed += 1
                    fn(*args)
                    if self._stop_requested:
                        self._stop_requested = False
                        exhausted = True
                        break
                self._cur_i = i
                if not exhausted and i >= len(bucket):
                    self._cur_bucket = None
                    del self._buckets[time]
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def reset(self) -> None:
        self._now = 0
        # Tombstone every pending slot so stale BucketEvent handles cannot
        # corrupt the live-event counter of the next epoch.
        for bucket in self._buckets.values():
            for i in range(0, len(bucket), 2):
                bucket[i] = None
                bucket[i + 1] = None
        self._buckets.clear()
        self._times.clear()
        self._cur_bucket = None
        self._cur_i = 0
        self._cur_time = 0
        self._events_executed = 0
        self._live_events = 0
        self._stop_requested = False
