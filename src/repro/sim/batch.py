"""Batch flit engine: calendar scheduling plus a fused network fast path.

:class:`BatchSimulator` *is* the calendar-queue scheduler — PR 7's profile
showed that after the calendar move the scheduler is no longer where the
time goes, so the batch engine inherits it unchanged and spends its budget
where the cost actually is: the per-packet Python work between events.

Selecting this engine (``REPRO_SIM_ENGINE=batch`` or
``make_simulator("batch")``) switches the *network build*, not the event
loop: :class:`~repro.network.network.Network` checks ``sim.engine_kind``
and constructs :class:`~repro.network.batch_core.BatchLink` objects whose
event callbacks are rebound to fused module-level handlers (one stack
frame per hop instead of a five-call chain through link, router and NIC
methods), NumPy-precomputed serialization tables, and a
:class:`~repro.routing.ugal.BatchUgalSelector` with a fused congestion
probe and a vectorized candidate scorer.

Because every fused handler transcribes the object-plane semantics
statement for statement — same state mutations, same schedule sites, same
delays, same callback order — the batch engine is event-for-event
deterministic with the ``calendar`` and ``reference`` engines, which is
strictly stronger than the observable-state parity contract the
equivalence suite asserts.

The engine requires NumPy; :func:`repro.sim.engine.make_simulator` falls
back to the calendar engine (with a structured-log warning) when NumPy is
unavailable, mirroring the ``REPRO_FLOW_SOLVER`` fallback idiom.
"""

from __future__ import annotations

from repro.sim.calendar import CalendarSimulator


class BatchSimulator(CalendarSimulator):
    """Calendar-queue scheduler marking the fused batch network plane."""

    engine_kind = "batch"
