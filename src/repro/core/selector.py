"""Algorithm 1: application-aware selection of the routing mode.

Before each message is sent, the selector decides whether to route it with
**Adaptive** (``ADAPTIVE_0``, or Increasingly-Minimal-Bias for Alltoall
traffic) or **Adaptive with High Bias** (``ADAPTIVE_3``), using the latency
``L`` and stall ratio ``s`` observed through the NIC counters for previously
sent messages:

* while running with Adaptive, the observed ``(L_ad, s_ad)`` are up to date
  and the High-Bias operating point is *estimated* by scaling them with the
  factors ``λ_ad`` and ``σ_ad`` (derived from median behaviour across many
  allocations) — unless a sufficiently recent direct observation of the
  High-Bias point exists, in which case that is used;
* the message is routed with High Bias when Equation 2 predicts a lower
  transmission time for the High-Bias point, which for the threshold form of
  the paper means ``f < (L_ad - L_bs)/(s_bs - s_ad) · (p + W/2)/W``;
* observations older than ``max_age_samples`` decisions are discarded so the
  algorithm does not act on data from a different application phase;
* messages are not inspected individually: a cumulative byte counter is kept
  and the algorithm only runs once it exceeds ``threshold_bytes`` (4 KiB);
  below the threshold traffic defaults to High Bias, because small messages
  are latency-bound and High Bias has the lower latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import NicConfig
from repro.core.perf_model import estimate_transmission_cycles, flits_and_packets
from repro.network.packet import RdmaOp
from repro.routing.modes import RoutingMode


@dataclass(frozen=True)
class SelectorParams:
    """Tunables of Algorithm 1.

    The scaling factors encode the median relationship between the two
    routing modes observed across microbenchmark runs: High Bias tends to
    have a *lower* packet latency (fewer hops, no needless detours) but a
    *higher* stall ratio (less path diversity), hence ``lambda_ad < 1`` and
    ``sigma_ad > 1``.
    """

    #: Cumulative message bytes after which the algorithm is (re)evaluated.
    threshold_bytes: int = 4096
    #: λ_ad — estimated High-Bias latency as a fraction of the Adaptive one.
    lambda_ad: float = 0.80
    #: σ_ad — estimated High-Bias stall ratio as a multiple of the Adaptive one.
    sigma_ad: float = 1.60
    #: Observations older than this many decisions are considered stale.
    max_age_samples: int = 64
    #: Additive smoothing applied to stall ratios before scaling, so a zero
    #: observed stall ratio still produces distinct operating points.
    stall_floor: float = 0.02

    def __post_init__(self) -> None:
        if self.threshold_bytes < 0:
            raise ValueError("threshold_bytes must be non-negative")
        if self.lambda_ad <= 0 or self.sigma_ad <= 0:
            raise ValueError("scaling factors must be positive")
        if self.max_age_samples < 1:
            raise ValueError("max_age_samples must be >= 1")

    @property
    def lambda_bs(self) -> float:
        """Dual factor: estimated Adaptive latency from a High-Bias observation."""
        return 1.0 / self.lambda_ad

    @property
    def sigma_bs(self) -> float:
        """Dual factor: estimated Adaptive stall ratio from a High-Bias observation."""
        return 1.0 / self.sigma_ad


@dataclass
class _Observation:
    """Latest counters observed while running under one routing family."""

    latency: Optional[float] = None
    stall_ratio: Optional[float] = None
    age: int = 0

    def valid(self, max_age: int) -> bool:
        return self.latency is not None and self.age <= max_age

    def tick(self) -> None:
        if self.latency is not None:
            self.age += 1

    def update(self, latency: float, stall_ratio: float) -> None:
        self.latency = latency
        self.stall_ratio = stall_ratio
        self.age = 0

    def invalidate(self) -> None:
        self.latency = None
        self.stall_ratio = None
        self.age = 0


class AppAwareSelector:
    """Per-process implementation of Algorithm 1."""

    def __init__(
        self,
        nic_config: NicConfig,
        params: Optional[SelectorParams] = None,
        initial_mode: RoutingMode = RoutingMode.ADAPTIVE_0,
    ):
        if initial_mode not in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3):
            raise ValueError(
                "the selector alternates between ADAPTIVE_0 and ADAPTIVE_3; "
                f"{initial_mode} is not a valid starting mode"
            )
        self.nic_config = nic_config
        self.params = params or SelectorParams()
        self.current_mode = initial_mode
        self._adaptive_obs = _Observation()
        self._bias_obs = _Observation()
        self._cumulative_bytes = 0
        self.decisions = 0
        self.switches = 0
        #: Bytes routed with each family (reported as the "% Default traffic").
        self.bytes_default = 0
        self.bytes_high_bias = 0

    # -- observation feed ------------------------------------------------------

    def observe(self, latency: float, stall_ratio: float, mode: Optional[RoutingMode] = None) -> None:
        """Record the NIC counters measured for the last sent message.

        ``mode`` identifies which routing family produced the observation;
        when omitted, the selector's current mode is assumed (the normal
        situation: counters are read right after a send).
        """
        family = mode or self.current_mode
        if family in (RoutingMode.ADAPTIVE_3,):
            self._bias_obs.update(latency, stall_ratio)
        else:
            self._adaptive_obs.update(latency, stall_ratio)

    # -- Algorithm 1 -------------------------------------------------------------

    def select_routing(
        self,
        msg_size_bytes: int,
        is_alltoall: bool = False,
        op: RdmaOp = RdmaOp.PUT,
    ) -> RoutingMode:
        """Choose the routing mode for the next message of ``msg_size_bytes``."""
        params = self.params
        self._cumulative_bytes += msg_size_bytes
        self.decisions += 1
        self._adaptive_obs.tick()
        self._bias_obs.tick()

        if self._cumulative_bytes < params.threshold_bytes:
            # Small cumulative traffic: latency-bound, send with High Bias
            # without paying the counter-reading overhead.
            mode = RoutingMode.ADAPTIVE_3
            self._account(msg_size_bytes, mode)
            return mode
        # The algorithm runs: reset the cumulative counter.
        self._cumulative_bytes = 0

        previous = self.current_mode
        if previous == RoutingMode.ADAPTIVE_0:
            latency_ad, stall_ad, latency_bs, stall_bs = self._operating_points_from_adaptive()
        else:
            latency_ad, stall_ad, latency_bs, stall_bs = self._operating_points_from_bias()

        if latency_ad is None:
            # No observation at all yet: keep the current mode.
            mode = previous
        else:
            t_adaptive = estimate_transmission_cycles(
                msg_size_bytes, latency_ad, stall_ad, self.nic_config, op
            )
            t_bias = estimate_transmission_cycles(
                msg_size_bytes, latency_bs, stall_bs, self.nic_config, op
            )
            mode = RoutingMode.ADAPTIVE_3 if t_bias < t_adaptive else RoutingMode.ADAPTIVE_0
        if mode != self.current_mode:
            self.switches += 1
        self.current_mode = mode
        self._account(msg_size_bytes, mode)
        if mode == RoutingMode.ADAPTIVE_0 and is_alltoall:
            # MPI_Alltoall keeps its own default: Increasingly Minimal Bias.
            return RoutingMode.ADAPTIVE_1
        return mode

    def _operating_points_from_adaptive(self):
        """Current mode is Adaptive: L_ad/s_ad measured, L_bs/s_bs estimated."""
        params = self.params
        obs = self._adaptive_obs
        if obs.latency is None:
            return None, None, None, None
        latency_ad = obs.latency
        stall_ad = obs.stall_ratio
        if self._bias_obs.valid(params.max_age_samples):
            latency_bs = self._bias_obs.latency
            stall_bs = self._bias_obs.stall_ratio
        else:
            self._bias_obs.invalidate()
            latency_bs = latency_ad * params.lambda_ad
            stall_bs = (stall_ad + params.stall_floor) * params.sigma_ad
        return latency_ad, stall_ad, latency_bs, stall_bs

    def _operating_points_from_bias(self):
        """Current mode is High Bias: L_bs/s_bs measured, L_ad/s_ad estimated."""
        params = self.params
        obs = self._bias_obs
        if obs.latency is None:
            return None, None, None, None
        latency_bs = obs.latency
        stall_bs = obs.stall_ratio
        if self._adaptive_obs.valid(params.max_age_samples):
            latency_ad = self._adaptive_obs.latency
            stall_ad = self._adaptive_obs.stall_ratio
        else:
            self._adaptive_obs.invalidate()
            latency_ad = latency_bs * params.lambda_bs
            stall_ad = max(0.0, (stall_bs + params.stall_floor) * params.sigma_bs - params.stall_floor)
        return latency_ad, stall_ad, latency_bs, stall_bs

    # -- reporting -----------------------------------------------------------------

    def _account(self, size_bytes: int, mode: RoutingMode) -> None:
        if mode == RoutingMode.ADAPTIVE_3:
            self.bytes_high_bias += size_bytes
        else:
            self.bytes_default += size_bytes

    @property
    def default_traffic_fraction(self) -> float:
        """Fraction of bytes sent with the Default (Adaptive/IMB) family.

        This is the percentage annotated under each test in Figures 8–10.
        """
        total = self.bytes_default + self.bytes_high_bias
        if total == 0:
            return 0.0
        return self.bytes_default / total

    def flit_threshold(self, latency_ad: float, stall_ad: float, latency_bs: float, stall_bs: float, packets: int) -> float:
        """The threshold form of Algorithm 1 (Equation 4).

        Returns the flit count below which High Bias is predicted to win:
        ``(L_ad - L_bs)/(s_bs - s_ad) · (p + W/2)/W``.  Provided mainly for
        tests demonstrating equivalence with the direct Equation-2 comparison;
        callers must ensure ``s_bs != s_ad``.
        """
        if stall_bs == stall_ad:
            raise ZeroDivisionError("threshold undefined when both stall ratios match")
        window = self.nic_config.max_outstanding_packets
        return (latency_ad - latency_bs) / (stall_bs - stall_ad) * (packets + window / 2.0) / window

    def reset(self) -> None:
        """Forget all observations and statistics (e.g. between phases)."""
        self._adaptive_obs.invalidate()
        self._bias_obs.invalidate()
        self._cumulative_bytes = 0
        self.decisions = 0
        self.switches = 0
        self.bytes_default = 0
        self.bytes_high_bias = 0
        self.current_mode = RoutingMode.ADAPTIVE_0
