"""The paper's primary contribution.

* :mod:`repro.core.perf_model` — the LogP-inspired transmission-time model of
  Section 2.4 (Equations 1 and 2) built on the NIC counters ``L`` (packet
  latency) and ``s`` (stall cycles per flit);
* :mod:`repro.core.selector` — Algorithm 1, the application-aware routing
  selection performed before every message send;
* :mod:`repro.core.policy` — per-rank routing policies (static Default /
  High-Bias and the Application-Aware policy) consumed by the MPI layer;
* :mod:`repro.core.runtime` — the uGNI-shim runtime, the simulated analogue
  of the LD_PRELOAD library of Section 4.3.
"""

from repro.core.perf_model import (
    estimate_transmission_cycles,
    estimate_transmission_cycles_simple,
    model_correlation,
)
from repro.core.selector import AppAwareSelector, SelectorParams
from repro.core.policy import (
    ApplicationAwarePolicy,
    RoutingPolicy,
    StaticRoutingPolicy,
    default_policy,
    high_bias_policy,
)
from repro.core.runtime import AppAwareRuntime

__all__ = [
    "estimate_transmission_cycles",
    "estimate_transmission_cycles_simple",
    "model_correlation",
    "AppAwareSelector",
    "SelectorParams",
    "RoutingPolicy",
    "StaticRoutingPolicy",
    "ApplicationAwarePolicy",
    "default_policy",
    "high_bias_policy",
    "AppAwareRuntime",
]
