"""Per-rank routing policies.

A :class:`RoutingPolicy` answers one question — *which routing mode should
the next message use?* — and receives counter feedback after each send.  The
MPI layer holds one policy instance per rank, which mirrors how the paper's
library is loaded per process via ``LD_PRELOAD``.

Three policies are provided:

* :func:`default_policy` — the system default: ``ADAPTIVE_0`` for everything,
  ``ADAPTIVE_1`` (Increasingly Minimal Bias) for Alltoall traffic.  This is
  the "Default" series of Figures 8–10.
* :func:`high_bias_policy` — ``ADAPTIVE_3`` for everything: the "Adaptive
  with High Bias" series.
* :class:`ApplicationAwarePolicy` — Algorithm 1: the "Application-Aware"
  series.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.config import NicConfig
from repro.core.selector import AppAwareSelector, SelectorParams
from repro.network.counters import CounterSnapshot
from repro.routing.modes import RoutingMode


class RoutingPolicy(ABC):
    """Strategy deciding the routing mode of each outgoing message."""

    @abstractmethod
    def mode_for(
        self,
        size_bytes: int,
        dst_node: int,
        collective: Optional[str] = None,
    ) -> RoutingMode:
        """Routing mode for the next message.

        ``collective`` names the MPI operation generating the traffic (e.g.
        ``"alltoall"``) or is ``None`` for point-to-point sends.
        """

    def observe(self, counters: CounterSnapshot, mode: RoutingMode) -> None:
        """Feed back the NIC counters measured for a completed message."""
        # Static policies ignore feedback.

    def default_traffic_fraction(self) -> float:
        """Fraction of bytes sent with the Default family (for reporting)."""
        return 1.0

    def describe(self) -> str:
        """Short label used by the experiment harness."""
        return type(self).__name__


class StaticRoutingPolicy(RoutingPolicy):
    """Always use one mode (optionally a different one for Alltoall)."""

    def __init__(
        self,
        mode: RoutingMode,
        alltoall_mode: Optional[RoutingMode] = None,
        label: Optional[str] = None,
    ):
        self.mode = mode
        self.alltoall_mode = alltoall_mode or mode
        self._label = label
        self._bytes_default = 0
        self._bytes_other = 0

    def mode_for(
        self,
        size_bytes: int,
        dst_node: int,
        collective: Optional[str] = None,
    ) -> RoutingMode:
        mode = self.alltoall_mode if collective == "alltoall" else self.mode
        if mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_1):
            self._bytes_default += size_bytes
        else:
            self._bytes_other += size_bytes
        return mode

    def default_traffic_fraction(self) -> float:
        total = self._bytes_default + self._bytes_other
        if total == 0:
            return 1.0 if self.mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_1) else 0.0
        return self._bytes_default / total

    def describe(self) -> str:
        if self._label:
            return self._label
        return f"Static[{self.mode.value}]"


def default_policy() -> StaticRoutingPolicy:
    """The "Default" configuration of the evaluation section."""
    return StaticRoutingPolicy(
        RoutingMode.ADAPTIVE_0,
        alltoall_mode=RoutingMode.ADAPTIVE_1,
        label="Default",
    )


def high_bias_policy() -> StaticRoutingPolicy:
    """The "Adaptive with High Bias" configuration."""
    return StaticRoutingPolicy(RoutingMode.ADAPTIVE_3, label="HighBias")


class ApplicationAwarePolicy(RoutingPolicy):
    """Algorithm 1 wrapped as a routing policy (one selector per rank)."""

    def __init__(
        self,
        nic_config: NicConfig,
        params: Optional[SelectorParams] = None,
    ):
        self.selector = AppAwareSelector(nic_config, params)

    def mode_for(
        self,
        size_bytes: int,
        dst_node: int,
        collective: Optional[str] = None,
    ) -> RoutingMode:
        return self.selector.select_routing(
            size_bytes, is_alltoall=(collective == "alltoall")
        )

    def observe(self, counters: CounterSnapshot, mode: RoutingMode) -> None:
        if counters.responses_received == 0:
            return
        self.selector.observe(
            latency=counters.avg_packet_latency,
            stall_ratio=counters.stall_ratio,
            mode=mode,
        )

    def default_traffic_fraction(self) -> float:
        return self.selector.default_traffic_fraction

    def describe(self) -> str:
        return "AppAware"
