"""LogP-inspired performance model of Section 2.4.

The model estimates the transmission time of a message from two NIC-counter
derived quantities:

* ``L`` — the average request→response packet latency (cycles), and
* ``s`` — the average number of cycles a flit stalls before transmission,

plus two quantities derivable from the message itself: ``f`` (number of
request flits) and ``p`` (number of request packets).

Equation 1 (small messages, everything fits in the outstanding window)::

    T_msg = L/2 + f * (s + 1)

Equation 2 (general case, at most ``W`` = 1024 outstanding packets)::

    T_msg ≈ (p + W/2) / W * L + f * (s + 1)

The paper validated Equation 2 against ping-pong runs over 40 allocations on
Piz Daint and obtained an average correlation of 79 %;
:func:`model_correlation` reproduces that validation on the simulator.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from repro.config import NicConfig
from repro.network.packet import RdmaOp, packetize


def estimate_transmission_cycles_simple(
    size_bytes: int,
    latency_cycles: float,
    stall_ratio: float,
    nic: NicConfig,
    op: RdmaOp = RdmaOp.PUT,
) -> float:
    """Equation 1: ``T = L/2 + f (s + 1)`` — ignores the outstanding window."""
    _, request_flits, _ = packetize(size_bytes, op, nic)
    return latency_cycles / 2.0 + request_flits * (stall_ratio + 1.0)


def estimate_transmission_cycles(
    size_bytes: int,
    latency_cycles: float,
    stall_ratio: float,
    nic: NicConfig,
    op: RdmaOp = RdmaOp.PUT,
) -> float:
    """Equation 2: ``T ≈ (p + W/2)/W · L + f (s + 1)``.

    ``W`` is the NIC's maximum number of outstanding packets (1024 on Aries).
    For ``p <= W`` the first term reduces to roughly ``L/2``…``1.5 L`` and the
    equation degenerates to Equation 1 plus the extra window stalls.
    """
    if latency_cycles < 0:
        raise ValueError("latency must be non-negative")
    if stall_ratio < 0:
        raise ValueError("stall ratio must be non-negative")
    packets, request_flits, _ = packetize(size_bytes, op, nic)
    window = nic.max_outstanding_packets
    return (packets + window / 2.0) / window * latency_cycles + request_flits * (
        stall_ratio + 1.0
    )


def flits_and_packets(size_bytes: int, nic: NicConfig, op: RdmaOp = RdmaOp.PUT) -> Tuple[int, int]:
    """Convenience: ``(f, p)`` for a message, as used by Algorithm 1."""
    packets, request_flits, _ = packetize(size_bytes, op, nic)
    return request_flits, packets


def model_correlation(
    estimates: Sequence[float], measured: Sequence[float]
) -> float:
    """Pearson correlation between model estimates and measured times.

    Returns 0.0 when either sequence is constant (correlation undefined);
    raises ``ValueError`` on length mismatch or fewer than two samples.
    """
    if len(estimates) != len(measured):
        raise ValueError("estimates and measurements must have the same length")
    n = len(estimates)
    if n < 2:
        raise ValueError("need at least two samples to compute a correlation")
    mean_e = sum(estimates) / n
    mean_m = sum(measured) / n
    cov = sum((e - mean_e) * (m - mean_m) for e, m in zip(estimates, measured))
    var_e = sum((e - mean_e) ** 2 for e in estimates)
    var_m = sum((m - mean_m) ** 2 for m in measured)
    if var_e == 0 or var_m == 0:
        return 0.0
    return cov / math.sqrt(var_e * var_m)


def better_mode_by_model(
    size_bytes: int,
    nic: NicConfig,
    latency_a: float,
    stall_a: float,
    latency_b: float,
    stall_b: float,
    op: RdmaOp = RdmaOp.PUT,
) -> int:
    """Compare two (latency, stall) operating points under Equation 2.

    Returns ``-1`` if the first point predicts a lower transmission time,
    ``1`` if the second one does, and ``0`` on a tie.  Algorithm 1 is exactly
    this comparison with point A = Adaptive and point B = Adaptive with High
    Bias (or vice versa).
    """
    ta = estimate_transmission_cycles(size_bytes, latency_a, stall_a, nic, op)
    tb = estimate_transmission_cycles(size_bytes, latency_b, stall_b, nic, op)
    if ta < tb:
        return -1
    if tb < ta:
        return 1
    return 0
