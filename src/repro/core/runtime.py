"""The uGNI-shim runtime: per-message routing control over a raw network.

On the real system the application-aware library interposes on the uGNI /
DMAPP send functions via ``LD_PRELOAD`` (Section 4.3): before every send it
runs Algorithm 1, passes the chosen routing mode to the real uGNI call, and
reads the NIC counters afterwards.  :class:`AppAwareRuntime` is the simulated
analogue for code that talks to the :class:`~repro.network.network.Network`
directly (the MPI layer uses :mod:`repro.core.policy` instead, which is the
same logic behind the MPI-shaped interface).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.policy import RoutingPolicy
from repro.core.selector import SelectorParams
from repro.core.policy import ApplicationAwarePolicy
from repro.network.network import Network
from repro.network.packet import Message, RdmaOp
from repro.routing.modes import RoutingMode


class AppAwareRuntime:
    """Wraps one node's sends with a routing policy and counter feedback.

    Parameters
    ----------
    network:
        The simulated system.
    node_id:
        The node whose NIC this runtime controls.
    policy:
        Any :class:`~repro.core.policy.RoutingPolicy`; defaults to the
        application-aware policy (Algorithm 1).
    """

    def __init__(
        self,
        network: Network,
        node_id: int,
        policy: Optional[RoutingPolicy] = None,
        selector_params: Optional[SelectorParams] = None,
    ):
        self.network = network
        self.node_id = node_id
        self.policy = policy or ApplicationAwarePolicy(
            network.config.nic, selector_params
        )
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(
        self,
        dst_node: int,
        size_bytes: int,
        op: RdmaOp = RdmaOp.PUT,
        collective: Optional[str] = None,
        on_delivered: Optional[Callable[[Message], None]] = None,
        on_acked: Optional[Callable[[Message], None]] = None,
        tag: Optional[object] = None,
    ) -> Message:
        """Send a message, letting the policy pick the routing mode.

        The NIC counters are snapshotted before the send and their delta is
        fed back to the policy when the message has been fully acknowledged —
        the same "read counters after the send, use them for the next
        decision" loop as the real library.
        """
        mode = self.policy.mode_for(size_bytes, dst_node, collective)
        nic = self.network.nic(self.node_id)
        before = nic.counters.snapshot()

        def _feedback(message: Message) -> None:
            after = nic.counters.snapshot()
            self.policy.observe(after.delta(before), mode)
            if on_acked is not None:
                on_acked(message)

        message = self.network.send(
            src_node=self.node_id,
            dst_node=dst_node,
            size_bytes=size_bytes,
            routing_mode=mode,
            op=op,
            on_delivered=on_delivered,
            on_acked=_feedback,
            tag=tag,
        )
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        return message

    @property
    def default_traffic_fraction(self) -> float:
        """Fraction of bytes routed with the Default family."""
        return self.policy.default_traffic_fraction()

    def describe(self) -> str:
        """Label of the underlying policy."""
        return self.policy.describe()
