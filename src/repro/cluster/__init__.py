"""Cluster-level multi-tenant replay.

The paper's experiments study one victim job against one aggressor; this
package replays whole *job traces* — many jobs arriving, running and
departing concurrently on a shared Dragonfly — the setting of the workload
interference studies in PAPERS.md.  See :mod:`repro.cluster.trace` for the
trace model (synthetic generators and an SWF-style parser) and
:mod:`repro.cluster.scheduler` for the FIFO scheduler with per-job
slowdown/stretch/fairness metrics.
"""

from repro.cluster.scheduler import (
    ClusterReplayError,
    ClusterResult,
    ClusterScheduler,
    JobRecord,
    jain_fairness,
)
from repro.cluster.trace import (
    LOAD_MEAN_INTERARRIVAL,
    WORKLOAD_NAMES,
    JobTrace,
    TraceError,
    TraceJob,
)

__all__ = [
    "ClusterReplayError",
    "ClusterResult",
    "ClusterScheduler",
    "JobRecord",
    "JobTrace",
    "LOAD_MEAN_INTERARRIVAL",
    "TraceError",
    "TraceJob",
    "WORKLOAD_NAMES",
    "jain_fairness",
]
