"""Multi-tenant replay: a FIFO cluster scheduler over one shared network.

:class:`ClusterScheduler` replays a :class:`~repro.cluster.trace.JobTrace`
on a single :class:`~repro.model.base.NetworkModel` (in practice the flow
backend — its incremental solver is exactly shaped for flows churning as
jobs start and stop):

* each arrival is a simulator event at the job's submit cycle;
* admission is first-come-first-served: the head job gets nodes from the
  shared allocation policy (:mod:`repro.allocation.policies` with the
  ``occupied`` free-node view) or waits until a completion frees them;
* every admitted job is an :class:`~repro.mpi.job.MpiJob` running its
  workload program concurrently with all other resident jobs — the
  interference under study;
* completions (via ``MpiJob.on_finished``, inside the event loop) free
  nodes and immediately re-try admission at the same cycle.

Per-job metrics come out as :class:`JobRecord` rows — wait time, runtime,
slowdown/stretch against a memoized isolated baseline (the same job, same
placement, same seeds, alone on a fresh network) — and trace-level
aggregates (makespan, mean/p95 slowdown, Jain fairness) via
:meth:`ClusterResult.metrics`, shaped for the campaign store's flat metric
columns.

Everything is driven by seeded named RNG streams, so a replay is a pure
function of (trace, network config, policy, routing mode) — serial,
parallel and distributed campaign executions produce identical artifacts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.allocation.policies import (
    AllocationPolicy,
    MachineFullError,
    allocate,
)
from repro.analysis.reporting import Table
from repro.analysis.stats import percentile
from repro.cluster.trace import JobTrace, TraceJob
from repro.core.policy import StaticRoutingPolicy
from repro.model.base import NetworkModel
from repro.mpi.job import MpiJob
from repro.routing.modes import RoutingMode
from repro.telemetry.core import TELEMETRY

#: Default event budget for one replay (same order as MpiJob.run's default).
DEFAULT_MAX_EVENTS = 500_000_000


class ClusterReplayError(RuntimeError):
    """Raised when a replay cannot make progress or exceeds its budget."""


@dataclass
class JobRecord:
    """Lifecycle and metrics of one trace job through the replay."""

    job: TraceJob
    #: Nodes the job ran on (empty until admitted).
    nodes: Tuple[int, ...] = ()
    #: Cycle the arrival event fired (== job.submit_time for a fresh sim).
    submit_time: Optional[int] = None
    start_time: Optional[int] = None
    finish_time: Optional[int] = None
    #: Cycles the same job takes alone on a fresh network (None: no baseline).
    isolated_cycles: Optional[int] = None
    iteration_times: List[int] = field(default_factory=list)

    @property
    def wait_time(self) -> Optional[int]:
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime(self) -> Optional[int]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> Optional[float]:
        """Shared runtime over isolated runtime (>= ~1 under interference)."""
        if self.runtime is None or not self.isolated_cycles:
            return None
        return self.runtime / self.isolated_cycles

    @property
    def stretch(self) -> Optional[float]:
        """Turnaround (wait + runtime) over isolated runtime."""
        if (
            self.wait_time is None
            or self.runtime is None
            or not self.isolated_cycles
        ):
            return None
        return (self.wait_time + self.runtime) / self.isolated_cycles

    def row(self) -> Dict[str, object]:
        """A flat JSON-safe row (the per-job table stored per cell)."""
        return {
            "job_id": self.job.job_id,
            "workload": self.job.workload,
            "num_nodes": self.job.num_nodes,
            "submit": self.submit_time,
            "start": self.start_time,
            "finish": self.finish_time,
            "wait": self.wait_time,
            "runtime": self.runtime,
            "isolated": self.isolated_cycles,
            "slowdown": None if self.slowdown is None else round(self.slowdown, 6),
            "stretch": None if self.stretch is None else round(self.stretch, 6),
        }


def jain_fairness(values: List[float]) -> Optional[float]:
    """Jain's fairness index: 1.0 when everyone is slowed equally."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares <= 0:
        return None
    return square_of_sum / (len(values) * sum_of_squares)


@dataclass
class ClusterResult:
    """Everything a replay produced, with metric/report helpers."""

    trace_name: str
    policy: str
    routing_mode: str
    records: List[JobRecord]
    makespan: int

    def job_rows(self) -> List[Dict[str, object]]:
        """Per-job rows in job-id order (the stored per-job table)."""
        return [r.row() for r in sorted(self.records, key=lambda r: r.job.job_id)]

    def metrics(self) -> Dict[str, float]:
        """Flat trace-level aggregates (campaign store metric columns)."""
        waits = [float(r.wait_time) for r in self.records if r.wait_time is not None]
        runtimes = [float(r.runtime) for r in self.records if r.runtime is not None]
        out: Dict[str, float] = {
            "jobs": float(len(self.records)),
            "makespan": float(self.makespan),
            "mean_wait": sum(waits) / len(waits) if waits else 0.0,
            "max_wait": max(waits) if waits else 0.0,
            "mean_runtime": sum(runtimes) / len(runtimes) if runtimes else 0.0,
        }
        slowdowns = [r.slowdown for r in self.records if r.slowdown is not None]
        if slowdowns:
            out["mean_slowdown"] = sum(slowdowns) / len(slowdowns)
            out["p95_slowdown"] = percentile(slowdowns, 95)
            out["max_slowdown"] = max(slowdowns)
            fairness = jain_fairness(slowdowns)
            if fairness is not None:
                out["fairness"] = fairness
        stretches = [r.stretch for r in self.records if r.stretch is not None]
        if stretches:
            out["mean_stretch"] = sum(stretches) / len(stretches)
        return {name: round(value, 6) for name, value in out.items()}

    def slowdown_table(self) -> str:
        """The per-job slowdown table (one row per job, job-id order)."""
        table = Table(
            title=(
                f"cluster trace {self.trace_name} — policy {self.policy}, "
                f"routing {self.routing_mode}"
            ),
            columns=[
                "job", "workload", "nodes", "submit", "wait", "runtime",
                "slowdown", "stretch",
            ],
        )
        for row in self.job_rows():
            table.add_row(
                row["job_id"],
                row["workload"],
                row["num_nodes"],
                row["submit"],
                row["wait"],
                row["runtime"],
                "-" if row["slowdown"] is None else f"{row['slowdown']:.3f}",
                "-" if row["stretch"] is None else f"{row['stretch']:.3f}",
            )
        return table.render()


class ClusterScheduler:
    """FIFO scheduler replaying a job trace on one shared network."""

    def __init__(
        self,
        network: NetworkModel,
        trace: JobTrace,
        *,
        allocation_policy: AllocationPolicy = AllocationPolicy.SCATTERED,
        routing_mode: RoutingMode = RoutingMode.ADAPTIVE_3,
        name: str = "cluster",
        baseline_factory: Optional[Callable[[], NetworkModel]] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        self.network = network
        self.sim = network.sim
        self.trace = trace
        self.policy = AllocationPolicy(allocation_policy)
        self.routing_mode = RoutingMode(routing_mode)
        self.name = name
        self.max_events = max_events
        self.topo = network.config.topology
        trace.validate(self.topo.num_nodes)
        #: Builds a fresh, empty twin network for isolated baselines.  When
        #: None, slowdown/stretch stay unset and only wait/runtime metrics
        #: are produced.
        self.baseline_factory = baseline_factory
        self._records: List[JobRecord] = [JobRecord(job) for job in trace.jobs]
        self._queue: Deque[JobRecord] = deque()
        self._running: Dict[int, Tuple[JobRecord, MpiJob, object, object]] = {}
        self._done: List[JobRecord] = []
        self._occupied: set = set()
        self._failures: List[BaseException] = []
        # One allocation stream per scheduler, derived from the network's
        # master seed — draws happen only on successful admission (the
        # policies raise MachineFullError before sampling), so retries
        # cannot skew the sequence.
        self._alloc_rng = network.streams.stream(f"{name}:alloc")
        self._baseline_cache: Dict[Tuple, int] = {}

    # -- inspection -------------------------------------------------------------

    @property
    def jobs_running(self) -> int:
        """Jobs currently resident on the machine."""
        return len(self._running)

    @property
    def jobs_queued(self) -> int:
        """Jobs submitted but not yet admitted."""
        return len(self._queue)

    @property
    def occupied_nodes(self) -> Tuple[int, ...]:
        """Sorted view of nodes held by running jobs."""
        return tuple(sorted(self._occupied))

    # -- replay -----------------------------------------------------------------

    def replay(self) -> ClusterResult:
        """Run the whole trace; returns the collected records and metrics."""
        if self._done or self._running or self._queue:
            raise ClusterReplayError("a scheduler instance replays exactly once")
        start_cycle = self.sim.now
        for record in self._records:
            self.sim.schedule_at(
                start_cycle + record.job.submit_time, self._arrive, record
            )
        span = (
            TELEMETRY.tracer.span(
                "cluster.replay", cat="cluster",
                trace=self.trace.name, jobs=len(self._records),
                policy=self.policy.value, mode=self.routing_mode.value,
            )
            if TELEMETRY.enabled
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            self._drive()
        finally:
            if span is not None:
                span.add(completed=len(self._done))
                span.__exit__(None, None, None)
        makespan = max(
            (r.finish_time for r in self._done if r.finish_time is not None),
            default=self.sim.now,
        ) - start_cycle
        if self.baseline_factory is not None:
            # Post-pass in job-id order: baselines run on fresh networks
            # with the same job names (hence the same derived RNG streams),
            # so they are order-independent and memoizable.
            for record in sorted(self._done, key=lambda r: r.job.job_id):
                record.isolated_cycles = self._isolated_cycles(record)
        return ClusterResult(
            trace_name=self.trace.name,
            policy=self.policy.value,
            routing_mode=self.routing_mode.value,
            records=list(self._records),
            makespan=makespan,
        )

    def _drive(self) -> None:
        total = len(self._records)
        remaining = self.max_events
        sim = self.sim
        while len(self._done) < total:
            if self._failures:
                raise self._failures[0]
            before = sim.events_executed
            sim.run(max_events=remaining)
            remaining -= sim.events_executed - before
            if self._failures:
                raise self._failures[0]
            if len(self._done) >= total:
                break
            if sim.empty():
                raise ClusterReplayError(
                    f"{self.name}: simulation drained with "
                    f"{len(self._queue)} queued and {len(self._running)} "
                    "running job(s) — a job is stuck"
                )
            if remaining <= 0:
                raise ClusterReplayError(
                    f"{self.name}: exceeded {self.max_events} events with "
                    f"{total - len(self._done)} job(s) unfinished"
                )

    # -- event handlers ---------------------------------------------------------

    def _arrive(self, record: JobRecord) -> None:
        record.submit_time = self.sim.now
        self._queue.append(record)
        if TELEMETRY.enabled:
            TELEMETRY.metrics.incr("cluster.jobs_submitted")
        self._admit_ready()

    def _admit_ready(self) -> None:
        # FIFO: the head job either fits now or blocks the queue until a
        # completion frees nodes (no backfilling — deterministic and
        # starvation-free).
        while self._queue:
            record = self._queue[0]
            try:
                allocation = allocate(
                    self.policy,
                    self.topo,
                    record.job.num_nodes,
                    rng=self._alloc_rng,
                    occupied=self.occupied_nodes,
                )
            except MachineFullError:
                break
            self._queue.popleft()
            self._start_job(record, tuple(allocation))
        if TELEMETRY.enabled:
            TELEMETRY.metrics.gauge("cluster.jobs_running", len(self._running))
            TELEMETRY.metrics.gauge("cluster.jobs_queued", len(self._queue))

    def _job_name(self, job: TraceJob) -> str:
        return f"{self.name}:{job.name}"

    def _start_job(self, record: JobRecord, nodes: Tuple[int, ...]) -> None:
        record.nodes = nodes
        record.start_time = self.sim.now
        self._occupied.update(nodes)
        workload = record.job.build_workload()
        mode = self.routing_mode
        mpi_job = MpiJob(
            self.network,
            list(nodes),
            policy_factory=lambda: StaticRoutingPolicy(mode),
            name=self._job_name(record.job),
        )
        mpi_job.on_finished = lambda job, record=record: self._job_done(record, job)
        span = None
        if TELEMETRY.enabled:
            span = TELEMETRY.tracer.span(
                "cluster.job",
                cat="cluster",
                job=record.job.name,
                workload=record.job.workload,
                nodes=record.job.num_nodes,
                submit=record.submit_time,
                start=record.start_time,
            )
            span.__enter__()
        self._running[record.job.job_id] = (record, mpi_job, workload, span)
        mpi_job.start(workload.program)

    def _job_done(self, record: JobRecord, mpi_job: MpiJob) -> None:
        entry = self._running.pop(record.job.job_id, None)
        if entry is None:  # defensive: double completion
            return
        _, _, workload, span = entry
        if mpi_job.failures:
            self._failures.extend(mpi_job.failures)
            if span is not None:
                span.add(error=type(mpi_job.failures[0]).__name__)
                span.__exit__(None, None, None)
            return
        record.finish_time = self.sim.now
        record.iteration_times = list(getattr(workload, "iteration_times", []))
        self._occupied.difference_update(record.nodes)
        self._done.append(record)
        if span is not None:
            span.add(
                finish=record.finish_time,
                wait=record.wait_time,
                runtime=record.runtime,
            )
            span.__exit__(None, None, None)
        if TELEMETRY.enabled:
            TELEMETRY.metrics.incr("cluster.jobs_completed")
            if record.wait_time is not None:
                TELEMETRY.metrics.observe("cluster.job_wait_cycles", record.wait_time)
            if record.runtime is not None:
                TELEMETRY.metrics.observe("cluster.job_runtime_cycles", record.runtime)
        self._admit_ready()

    # -- isolated baselines -----------------------------------------------------

    def _isolated_cycles(self, record: JobRecord) -> int:
        """Cycles the job takes alone on a fresh network (memoized).

        The baseline job reuses the shared run's node placement and job
        name; name-derived RNG streams make its host-noise draws identical,
        so the only difference from the shared run is the absence of other
        tenants.
        """
        key = (
            record.job.workload,
            record.job.iterations,
            record.job.size_bytes,
            record.nodes,
        )
        cached = self._baseline_cache.get(key)
        if cached is not None:
            return cached
        network = self.baseline_factory()
        workload = record.job.build_workload()
        mode = self.routing_mode
        mpi_job = MpiJob(
            network,
            list(record.nodes),
            policy_factory=lambda: StaticRoutingPolicy(mode),
            name=self._job_name(record.job),
        )
        started = network.sim.now
        finished_at = mpi_job.run(workload.program)
        cycles = max(1, finished_at - started)
        self._baseline_cache[key] = cycles
        return cycles
