"""Job traces for cluster-level replay.

A :class:`JobTrace` is an ordered set of :class:`TraceJob` arrivals — the
input of :class:`~repro.cluster.scheduler.ClusterScheduler`.  Two sources
are supported:

* :meth:`JobTrace.synthetic` — seeded generators with exponential
  interarrivals, log-uniform job sizes and a workload mix, the shape of the
  multi-tenant studies in Kang et al. (PAPERS.md);
* :meth:`JobTrace.from_swf` — a Standard Workload Format (SWF) style parser
  so real scheduler logs (Parallel Workloads Archive) replay on the
  simulated machine.

Times are NIC cycles (the simulator's clock).  All generation draws from a
single seeded :class:`random.Random` in a fixed per-job order, so a trace
is a pure function of its parameters — the campaign determinism contract
(identical store artifacts across serial/parallel/distributed execution)
inherits from that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.workloads.base import Workload
from repro.workloads.microbench import (
    ALLREDUCE_ELEMENT_BYTES,
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    PingPongBenchmark,
)

#: Workload vocabulary a trace job may name (see :meth:`TraceJob.build_workload`).
WORKLOAD_NAMES: Tuple[str, ...] = ("pingpong", "allreduce", "alltoall", "barrier")

#: Mean interarrival (cycles) per synthetic load level.  Jobs at the
#: default sizes run for a few tens of thousands of cycles on the flow
#: backend, so "heavy" keeps many jobs resident while "light" is mostly
#: one-at-a-time.
LOAD_MEAN_INTERARRIVAL: Dict[str, int] = {
    "light": 60_000,
    "medium": 20_000,
    "heavy": 6_000,
}

#: Message/input sizes (bytes) the synthetic generator samples from.
SYNTHETIC_SIZES: Tuple[int, ...] = (1024, 2048, 4096, 8192)


class TraceError(ValueError):
    """Raised for malformed traces or trace sources."""


@dataclass(frozen=True)
class TraceJob:
    """One job arrival: when it shows up, how big it is, what it runs."""

    job_id: int
    #: Cycle (relative to replay start) the job is submitted.
    submit_time: int
    #: Nodes requested — one rank per node.
    num_nodes: int
    #: Workload name (see :data:`WORKLOAD_NAMES`).
    workload: str
    #: Measured iterations of the workload (its duration knob).
    iterations: int = 1
    #: Message/input size in bytes.
    size_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise TraceError(f"job {self.job_id}: negative submit time")
        if self.num_nodes < 2:
            raise TraceError(
                f"job {self.job_id}: needs >= 2 nodes (got {self.num_nodes})"
            )
        if self.workload not in WORKLOAD_NAMES:
            raise TraceError(
                f"job {self.job_id}: unknown workload {self.workload!r} "
                f"(known: {', '.join(WORKLOAD_NAMES)})"
            )
        if self.iterations < 1:
            raise TraceError(f"job {self.job_id}: iterations must be >= 1")
        if self.size_bytes < 1:
            raise TraceError(f"job {self.job_id}: size_bytes must be >= 1")

    @property
    def name(self) -> str:
        """Stable per-job label (used for RNG stream derivation)."""
        return f"j{self.job_id:04d}-{self.workload}"

    def build_workload(self) -> Workload:
        """The concrete workload instance this job runs.

        Warm-up is zero: a trace job's duration should be exactly its
        measured work, and the isolated baseline runs the same program, so
        slowdowns stay a like-for-like ratio.
        """
        if self.workload == "pingpong":
            return PingPongBenchmark(
                size_bytes=self.size_bytes,
                iterations=self.iterations,
                warmup=0,
                pingpongs_per_iteration=2,
            )
        if self.workload == "allreduce":
            return AllreduceBenchmark(
                elements=max(1, self.size_bytes // ALLREDUCE_ELEMENT_BYTES),
                iterations=self.iterations,
                warmup=0,
            )
        if self.workload == "alltoall":
            return AlltoallBenchmark(
                size_bytes=self.size_bytes, iterations=self.iterations, warmup=0
            )
        return BarrierBenchmark(
            barriers_per_iteration=4, iterations=self.iterations, warmup=0
        )


@dataclass(frozen=True)
class JobTrace:
    """An ordered job trace (sorted by submit time, then job id)."""

    name: str
    jobs: Tuple[TraceJob, ...]
    #: Free-form provenance (generator parameters, SWF header, ...).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.jobs, key=lambda job: (job.submit_time, job.job_id))
        )
        object.__setattr__(self, "jobs", ordered)
        seen = set()
        for job in ordered:
            if job.job_id in seen:
                raise TraceError(f"duplicate job id {job.job_id}")
            seen.add(job.job_id)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[TraceJob]:
        return iter(self.jobs)

    def validate(self, machine_nodes: int) -> None:
        """Fail fast when any single job can never fit the machine."""
        for job in self.jobs:
            if job.num_nodes > machine_nodes:
                raise TraceError(
                    f"job {job.job_id} wants {job.num_nodes} nodes but the "
                    f"machine has {machine_nodes}"
                )

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        if not self.jobs:
            return f"{self.name}: empty trace"
        by_workload: Dict[str, int] = {}
        for job in self.jobs:
            by_workload[job.workload] = by_workload.get(job.workload, 0) + 1
        mix = ", ".join(f"{k}:{v}" for k, v in sorted(by_workload.items()))
        span = self.jobs[-1].submit_time - self.jobs[0].submit_time
        return (
            f"{self.name}: {len(self.jobs)} job(s) over {span} cycles "
            f"({mix}; {min(j.num_nodes for j in self.jobs)}-"
            f"{max(j.num_nodes for j in self.jobs)} nodes)"
        )

    # -- sources -----------------------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        seed: int,
        num_jobs: int,
        *,
        load: str = "medium",
        min_nodes: int = 2,
        max_nodes: int = 32,
        workloads: Sequence[str] = WORKLOAD_NAMES,
        sizes: Sequence[int] = SYNTHETIC_SIZES,
        name: Optional[str] = None,
    ) -> "JobTrace":
        """A seeded synthetic trace (Poisson-ish arrivals, log-uniform sizes).

        All draws come from one ``random.Random(seed)`` in a fixed per-job
        order, so the trace is identical across processes and platforms.
        """
        if num_jobs < 1:
            raise TraceError("num_jobs must be >= 1")
        if load not in LOAD_MEAN_INTERARRIVAL:
            raise TraceError(
                f"unknown load {load!r} "
                f"(known: {', '.join(sorted(LOAD_MEAN_INTERARRIVAL))})"
            )
        if not 2 <= min_nodes <= max_nodes:
            raise TraceError("need 2 <= min_nodes <= max_nodes")
        for wl in workloads:
            if wl not in WORKLOAD_NAMES:
                raise TraceError(f"unknown workload {wl!r} in mix")
        rng = Random(seed)
        mean_gap = LOAD_MEAN_INTERARRIVAL[load]
        lo, hi = math.log2(min_nodes), math.log2(max_nodes)
        jobs: List[TraceJob] = []
        clock = 0
        for job_id in range(num_jobs):
            clock += int(rng.expovariate(1.0 / mean_gap))
            num_nodes = max(min_nodes, min(max_nodes, int(2 ** rng.uniform(lo, hi))))
            jobs.append(
                TraceJob(
                    job_id=job_id,
                    submit_time=clock,
                    num_nodes=num_nodes,
                    workload=rng.choice(list(workloads)),
                    iterations=rng.choice((1, 1, 2)),
                    size_bytes=rng.choice(list(sizes)),
                )
            )
        return cls(
            name=name or f"synthetic-{load}-{num_jobs}x{seed}",
            jobs=tuple(jobs),
            meta={
                "source": "synthetic",
                "seed": seed,
                "load": load,
                "min_nodes": min_nodes,
                "max_nodes": max_nodes,
            },
        )

    @classmethod
    def from_swf(
        cls,
        text: str,
        *,
        cycles_per_second: int = 1_000,
        max_nodes: int = 32,
        size_bytes: int = 4096,
        name: str = "swf",
    ) -> "JobTrace":
        """Parse an SWF-style log (Parallel Workloads Archive field layout).

        Fields used per data line (whitespace separated, ``;`` comments):
        1 job number, 2 submit time (s), 4 run time (s), 5 allocated
        processors (falling back to field 8, requested processors).  Node
        counts are clamped to ``[2, max_nodes]``, submit seconds scale by
        ``cycles_per_second``, and run time picks the iteration count (the
        replay's duration knob — actual runtimes are simulated, not
        replayed verbatim).  Workloads are assigned from the job number, so
        a parsed trace is deterministic with no RNG at all.
        """
        jobs: List[TraceJob] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            fields = line.split()
            if len(fields) < 5:
                raise TraceError(
                    f"SWF line {lineno}: expected >= 5 fields, got {len(fields)}"
                )
            try:
                job_id = int(float(fields[0]))
                submit_s = float(fields[1])
                run_s = float(fields[3])
                procs = int(float(fields[4]))
                if procs <= 0 and len(fields) > 7:
                    procs = int(float(fields[7]))
            except ValueError as exc:
                raise TraceError(f"SWF line {lineno}: {exc}") from None
            if submit_s < 0:
                continue  # header sentinel rows use -1
            jobs.append(
                TraceJob(
                    job_id=job_id,
                    submit_time=int(submit_s * cycles_per_second),
                    num_nodes=max(2, min(max_nodes, procs)),
                    workload=WORKLOAD_NAMES[job_id % len(WORKLOAD_NAMES)],
                    iterations=1 if run_s < 3600 else 2,
                    size_bytes=size_bytes,
                )
            )
        if not jobs:
            raise TraceError("SWF text contains no job lines")
        return cls(
            name=name,
            jobs=tuple(jobs),
            meta={"source": "swf", "cycles_per_second": cycles_per_second},
        )
