"""Collective operations built from point-to-point messages.

The algorithms are the textbook ones used by production MPI libraries (and by
Cray MPICH for mid-sized messages), so the traffic patterns — and therefore
the interaction with the routing algorithm — match the microbenchmarks of the
paper's evaluation:

* barrier — dissemination;
* broadcast — binomial tree;
* reduce — binomial tree (leaves toward the root);
* allreduce — recursive doubling for power-of-two sizes, ring otherwise;
* alltoall — pairwise exchange (each step sends the per-pair buffer);
* allgather — ring.

Every function is a generator meant to be ``yield from``-ed inside a rank
program; tags are namespaced per call so overlapping collectives of the same
kind do not mismatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.job import RankContext

#: Bytes carried by a pure synchronization message (barrier tokens).
SYNC_MESSAGE_BYTES = 8


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def barrier(ctx: "RankContext", tag: object = "barrier"):
    """Dissemination barrier: ``ceil(log2(P))`` rounds of small messages."""
    size = ctx.size
    if size == 1:
        return
    rank = ctx.rank
    round_index = 0
    distance = 1
    while distance < size:
        peer_send = (rank + distance) % size
        peer_recv = (rank - distance) % size
        step_tag = (tag, round_index)
        yield [
            ctx.isend(peer_send, SYNC_MESSAGE_BYTES, tag=step_tag),
            ctx.irecv(peer_recv, tag=step_tag),
        ]
        distance <<= 1
        round_index += 1


def bcast(ctx: "RankContext", size_bytes: int, root: int = 0, tag: object = "bcast"):
    """Binomial-tree broadcast from ``root``."""
    size = ctx.size
    if size == 1:
        return
    rank = ctx.rank
    relative = (rank - root) % size
    # Receive from the parent (unless root), then forward to children.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative ^ mask) if (relative ^ mask) < size else None
            if parent is not None:
                src = (parent + root) % size
                yield ctx.irecv(src, tag=(tag, relative))
            break
        mask <<= 1
    # Children: all ranks whose relative id is obtained by setting a higher bit.
    mask >>= 1
    sends = []
    while mask > 0:
        child_relative = relative | mask
        if child_relative < size and child_relative != relative:
            dst = (child_relative + root) % size
            sends.append(ctx.isend(dst, size_bytes, tag=(tag, child_relative)))
        mask >>= 1
    if sends:
        yield sends


def reduce(ctx: "RankContext", size_bytes: int, root: int = 0, tag: object = "reduce"):
    """Binomial-tree reduction towards ``root`` (reverse of the broadcast tree)."""
    size = ctx.size
    if size == 1:
        return
    rank = ctx.rank
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            # Send the partial result to the parent and stop participating.
            parent = relative & ~mask
            dst = (parent + root) % size
            yield ctx.isend(dst, size_bytes, tag=(tag, relative))
            return
        # Receive from the child that will send at this round, if it exists.
        child_relative = relative | mask
        if child_relative < size:
            src = (child_relative + root) % size
            yield ctx.irecv(src, tag=(tag, child_relative))
        mask <<= 1


def allreduce(ctx: "RankContext", size_bytes: int, tag: object = "allreduce"):
    """Allreduce: recursive doubling (power-of-two ranks) or ring otherwise."""
    size = ctx.size
    if size == 1:
        return
    if _is_power_of_two(size):
        yield from _allreduce_recursive_doubling(ctx, size_bytes, tag)
    else:
        yield from _allreduce_ring(ctx, size_bytes, tag)


def _allreduce_recursive_doubling(ctx: "RankContext", size_bytes: int, tag: object):
    size = ctx.size
    rank = ctx.rank
    mask = 1
    round_index = 0
    while mask < size:
        peer = rank ^ mask
        step_tag = (tag, round_index)
        yield [
            ctx.isend(peer, size_bytes, tag=step_tag),
            ctx.irecv(peer, tag=step_tag),
        ]
        mask <<= 1
        round_index += 1


def _allreduce_ring(ctx: "RankContext", size_bytes: int, tag: object):
    """Ring allreduce: reduce-scatter followed by allgather, 2(P-1) steps."""
    size = ctx.size
    rank = ctx.rank
    chunk = max(1, size_bytes // size)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for phase, steps in (("rs", size - 1), ("ag", size - 1)):
        for step in range(steps):
            step_tag = (tag, phase, step)
            yield [
                ctx.isend(right, chunk, tag=step_tag),
                ctx.irecv(left, tag=step_tag),
            ]


def alltoall(ctx: "RankContext", size_bytes_per_pair: int, tag: object = "alltoall"):
    """Pairwise-exchange all-to-all.

    With a power-of-two number of ranks the partner at step ``k`` is
    ``rank XOR k`` (perfect pairing); otherwise the shifted pattern
    ``(rank ± k) mod P`` is used.  Traffic is tagged ``collective="alltoall"``
    so the routing layer can apply the Alltoall-specific default
    (Increasingly Minimal Bias) exactly as Cray MPICH does.
    """
    size = ctx.size
    if size == 1:
        return
    rank = ctx.rank
    if _is_power_of_two(size):
        for step in range(1, size):
            peer = rank ^ step
            step_tag = (tag, step)
            yield [
                ctx.isend(peer, size_bytes_per_pair, tag=step_tag, collective="alltoall"),
                ctx.irecv(peer, tag=step_tag),
            ]
    else:
        for step in range(1, size):
            send_peer = (rank + step) % size
            recv_peer = (rank - step) % size
            step_tag = (tag, step)
            yield [
                ctx.isend(send_peer, size_bytes_per_pair, tag=step_tag, collective="alltoall"),
                ctx.irecv(recv_peer, tag=step_tag),
            ]


def allgather(ctx: "RankContext", size_bytes_per_rank: int, tag: object = "allgather"):
    """Ring allgather: P-1 steps, each forwarding one rank's contribution."""
    size = ctx.size
    if size == 1:
        return
    rank = ctx.rank
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        step_tag = (tag, step)
        yield [
            ctx.isend(right, size_bytes_per_rank, tag=step_tag),
            ctx.irecv(left, tag=step_tag),
        ]
