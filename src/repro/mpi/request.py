"""Completion handles for non-blocking operations."""

from __future__ import annotations

from typing import Callable, List, Optional


class Request:
    """A handle for a pending send, receive, compute or collective step.

    A request completes exactly once; callbacks registered before completion
    fire at completion time, callbacks registered afterwards fire
    immediately.
    """

    __slots__ = ("kind", "rank", "done", "completion_time", "_callbacks", "payload")

    def __init__(self, kind: str, rank: int):
        self.kind = kind
        self.rank = rank
        self.done = False
        self.completion_time: Optional[int] = None
        self._callbacks: List[Callable[["Request"], None]] = []
        #: Optional data attached at completion (e.g. the delivered Message).
        self.payload = None

    def add_callback(self, callback: Callable[["Request"], None]) -> None:
        """Invoke ``callback(request)`` when (or if already) complete."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def complete(self, time: int, payload=None) -> None:
        """Mark the request complete at simulation time ``time``."""
        if self.done:
            raise RuntimeError(f"request {self!r} completed twice")
        self.done = True
        self.completion_time = time
        self.payload = payload
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} rank={self.rank} {state}>"
