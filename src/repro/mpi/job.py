"""The MPI-like job: rank placement, progress engine and point-to-point layer.

An :class:`MpiJob` binds a set of ranks to compute nodes of any
:class:`~repro.model.base.NetworkModel` backend (flit-level or flow-level),
gives each rank a :class:`~repro.core.policy.RoutingPolicy`, and drives rank
*programs* (Python generators yielding :class:`~repro.mpi.request.Request`
objects).

Point-to-point semantics
------------------------

* ``isend`` — posts an RDMA PUT through the node's NIC.  The send request
  completes when all response packets have returned to the sender (source-
  side completion, as uGNI reports it).  Intra-node sends bypass the network
  and use the host model (shared-memory copy + contention + OS noise).
* ``irecv`` — completes when a matching message has been fully delivered to
  the destination NIC, plus the host-side receive overhead.
* matching is FIFO per ``(source rank, destination rank, tag)``.

Host-side effects (software overhead, OS noise, intra-node memory-bandwidth
contention) are modelled explicitly because Section 3.3 of the paper shows
they are easily mistaken for network noise.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import HostConfig
from repro.core.policy import RoutingPolicy, default_policy
from repro.model.base import NetworkModel
from repro.mpi.request import Request
from repro.network.packet import Message, RdmaOp
from repro.routing.modes import RoutingMode
from repro.sim.rng import RandomStreams
from repro.telemetry.core import TELEMETRY

ProgramFactory = Callable[["RankContext"], "object"]
PolicyFactory = Callable[[], RoutingPolicy]

_job_counter = 0


class MpiJob:
    """A set of ranks running a program over the simulated network."""

    def __init__(
        self,
        network: NetworkModel,
        rank_nodes: Sequence[int],
        policy_factory: Optional[PolicyFactory] = None,
        host_config: Optional[HostConfig] = None,
        name: Optional[str] = None,
        streams: Optional[RandomStreams] = None,
    ):
        global _job_counter
        if not rank_nodes:
            raise ValueError("a job needs at least one rank")
        for node in rank_nodes:
            if not 0 <= node < network.num_nodes:
                raise ValueError(f"rank placed on unknown node {node}")
        self.network = network
        self.sim = network.sim
        self.rank_nodes: List[int] = list(rank_nodes)
        self.size = len(self.rank_nodes)
        self.name = name or f"job{_job_counter}"
        self.job_id = _job_counter
        _job_counter += 1
        self.host = host_config or network.config.host
        self.streams = streams or network.streams.spawn(self.name)
        factory = policy_factory or default_policy
        self.policies: List[RoutingPolicy] = [factory() for _ in range(self.size)]
        self.contexts: List[RankContext] = [
            RankContext(self, rank) for rank in range(self.size)
        ]
        # Matching structures: (src_rank, dst_rank, tag) -> FIFO queues.
        self._pending_recvs: Dict[Tuple[int, int, object], Deque[Request]] = defaultdict(deque)
        self._unexpected: Dict[Tuple[int, int, object], Deque[Message]] = defaultdict(deque)
        self._ranks_per_node: Dict[int, int] = defaultdict(int)
        for node in self.rank_nodes:
            self._ranks_per_node[node] += 1
        self._active_ranks = 0
        self._finished = False
        self._failures: List[BaseException] = []
        #: Invoked (with this job) from inside the event loop when the last
        #: rank finishes — the hook a cluster scheduler uses to free nodes
        #: and admit queued jobs at the exact completion cycle.
        self.on_finished: Optional[Callable[["MpiJob"], None]] = None
        #: Per-node count of in-flight host operations (contention model).
        self._host_inflight: Dict[int, int] = defaultdict(int)
        self._msg_seq = 0

    # -- rank placement helpers ------------------------------------------------

    def node_of(self, rank: int) -> int:
        """Node hosting a rank."""
        return self.rank_nodes[rank]

    def ranks_on_node(self, node: int) -> int:
        """How many of this job's ranks share the given node."""
        return self._ranks_per_node[node]

    # -- program execution --------------------------------------------------------

    def start(self, program: ProgramFactory) -> None:
        """Launch ``program(ctx)`` on every rank (non-blocking)."""
        if self._active_ranks:
            raise RuntimeError("job already has running ranks")
        self._finished = False
        self._failures = []
        for rank in range(self.size):
            generator = program(self.contexts[rank])
            if generator is None:
                continue
            self._active_ranks += 1
            # Stagger program starts by a tiny per-rank offset: real job
            # launches are never perfectly synchronous.
            self.sim.schedule(rank % 3, self._advance, rank, generator, None)

    def run(self, program: ProgramFactory, max_events: int = 200_000_000) -> int:
        """Launch a program on all ranks and run until they all finish.

        Returns the simulation time at which the last rank finished.  Events
        belonging to other traffic (background jobs) keep executing while the
        job runs and simply remain queued afterwards.
        """
        if not TELEMETRY.enabled:
            return self._run(program, max_events)
        cycles_before = self.sim.now
        with TELEMETRY.tracer.span("sim.run", cat="sim", job=self.name) as sp:
            result = self._run(program, max_events)
            sp.add(events=self.sim.events_executed,
                   cycles=result - cycles_before,
                   queue_depth=self.sim.live_events,
                   ranks=self.size)
        return result

    def _run(self, program: ProgramFactory, max_events: int) -> int:
        self.start(program)
        sim = self.sim
        remaining = max_events
        # The simulator's run loop is much cheaper per event than stepping
        # one event at a time; _rank_done/_fail request a stop from inside
        # the callback, so the loop still returns at the exact event that
        # finishes (or fails) the job.
        while not self._finished:
            if self._failures:
                raise self._failures[0]
            before = sim.events_executed
            sim.run(max_events=remaining)
            ran = sim.events_executed - before
            remaining -= ran
            if self._failures:
                raise self._failures[0]
            if self._finished:
                break
            if sim.empty():
                raise RuntimeError(
                    f"{self.name}: simulation ran out of events before all ranks "
                    "finished — a rank is waiting for a message that was never sent"
                )
            if remaining <= 0:
                raise RuntimeError(f"{self.name}: exceeded {max_events} events")
        if self._failures:
            raise self._failures[0]
        return self.sim.now

    @property
    def finished(self) -> bool:
        """True once every rank's program has returned."""
        return self._finished

    @property
    def failures(self) -> List[BaseException]:
        """Program exceptions collected so far (empty on the happy path)."""
        return list(self._failures)

    def _advance(self, rank: int, generator, value) -> None:
        try:
            yielded = generator.send(value)
        except StopIteration:
            self._rank_done()
            return
        except BaseException as exc:  # propagate program bugs to the caller
            self._failures.append(exc)
            self.sim.stop()  # surface the failure without draining the queue
            self._rank_done()
            return
        requests = yielded if isinstance(yielded, (list, tuple)) else [yielded]
        self._wait_all(rank, generator, list(requests), yielded)

    def _wait_all(self, rank: int, generator, requests: List[Request], original) -> None:
        remaining = len(requests)
        if remaining == 0:
            self.sim.schedule(0, self._advance, rank, generator, original)
            return
        state = {"remaining": remaining}

        def _one_done(_req: Request) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                # Resume through the event queue (never synchronously) so deep
                # chains of already-completed requests cannot overflow the
                # Python call stack.
                self.sim.schedule(0, self._advance, rank, generator, original)

        for request in requests:
            if not isinstance(request, Request):
                self._failures.append(
                    TypeError(f"rank {rank} yielded {request!r}, expected Request")
                )
                self.sim.stop()
                self._rank_done()
                return
            request.add_callback(_one_done)

    def _rank_done(self) -> None:
        self._active_ranks -= 1
        if self._active_ranks == 0:
            self._finished = True
            self.sim.stop()
            if self.on_finished is not None:
                self.on_finished(self)

    # -- point-to-point engine -------------------------------------------------------

    def _next_tag(self) -> int:
        self._msg_seq += 1
        return self._msg_seq

    def post_send(
        self,
        src_rank: int,
        dst_rank: int,
        size_bytes: int,
        tag: object = 0,
        collective: Optional[str] = None,
    ) -> Request:
        """Non-blocking send from ``src_rank`` to ``dst_rank``."""
        self._check_rank(src_rank)
        self._check_rank(dst_rank)
        request = Request("send", src_rank)
        src_node = self.node_of(src_rank)
        dst_node = self.node_of(dst_rank)
        overhead = self._host_delay(src_node, self.host.send_overhead)
        if src_node == dst_node:
            self.sim.schedule(
                overhead,
                self._intra_node_transfer,
                src_rank,
                dst_rank,
                size_bytes,
                tag,
                request,
            )
        else:
            self.sim.schedule(
                overhead,
                self._network_send,
                src_rank,
                dst_rank,
                size_bytes,
                tag,
                collective,
                request,
            )
        return request

    def post_recv(self, dst_rank: int, src_rank: int, tag: object = 0) -> Request:
        """Non-blocking receive posted by ``dst_rank`` for a message from ``src_rank``."""
        self._check_rank(src_rank)
        self._check_rank(dst_rank)
        request = Request("recv", dst_rank)
        key = (src_rank, dst_rank, tag)
        unexpected = self._unexpected.get(key)
        if unexpected:
            unexpected.popleft()
            overhead = self._host_delay(self.node_of(dst_rank), self.host.recv_overhead)
            self.sim.schedule(overhead, request.complete, self.sim.now)
        else:
            self._pending_recvs[key].append(request)
        return request

    def post_compute(self, rank: int, cycles: int) -> Request:
        """A local computation burst of ``cycles`` cycles (plus OS noise)."""
        self._check_rank(rank)
        request = Request("compute", rank)
        delay = self._host_delay(self.node_of(rank), max(0, int(cycles)))
        self.sim.schedule(delay, request.complete, self.sim.now)
        return request

    # -- internal transfer paths ---------------------------------------------------------

    def _network_send(
        self,
        src_rank: int,
        dst_rank: int,
        size_bytes: int,
        tag: object,
        collective: Optional[str],
        request: Request,
    ) -> None:
        src_node = self.node_of(src_rank)
        dst_node = self.node_of(dst_rank)
        policy = self.policies[src_rank]
        mode = policy.mode_for(size_bytes, dst_node, collective)
        nic = self.network.nic(src_node)
        before = nic.counters.snapshot()
        key = (src_rank, dst_rank, tag)

        def _on_acked(message: Message) -> None:
            after = nic.counters.snapshot()
            policy.observe(after.delta(before), mode)
            request.complete(self.sim.now, message)

        def _on_delivered(message: Message) -> None:
            self._match_delivery(key, message)

        self.network.send(
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=size_bytes,
            routing_mode=mode,
            op=RdmaOp.PUT,
            on_delivered=_on_delivered,
            on_acked=_on_acked,
            tag=(self.job_id, *key, self._next_tag()),
        )

    def _intra_node_transfer(
        self,
        src_rank: int,
        dst_rank: int,
        size_bytes: int,
        tag: object,
        request: Request,
    ) -> None:
        """Shared-memory transfer between two ranks of the same node."""
        node = self.node_of(src_rank)
        concurrent = max(1, self._host_inflight[node] + 1)
        self._host_inflight[node] += 1
        contention = 1.0 + self.host.contention_factor * (concurrent - 1)
        copy_cycles = int(
            self.host.intra_node_latency
            + size_bytes / self.host.intra_node_bytes_per_cycle * contention
        )
        copy_cycles = self._with_os_noise(node, copy_cycles)
        key = (src_rank, dst_rank, tag)

        def _complete() -> None:
            self._host_inflight[node] -= 1
            request.complete(self.sim.now)
            self._match_delivery(key, None)

        self.sim.schedule(copy_cycles, _complete)

    def _match_delivery(self, key: Tuple[int, int, object], message: Optional[Message]) -> None:
        """Complete a posted receive or store the message as unexpected."""
        pending = self._pending_recvs.get(key)
        if pending:
            request = pending.popleft()
            dst_rank = key[1]
            overhead = self._host_delay(self.node_of(dst_rank), self.host.recv_overhead)
            self.sim.schedule(overhead, request.complete, self.sim.now, message)
        else:
            self._unexpected[key].append(message)

    # -- host-side noise model ----------------------------------------------------------------

    def _host_delay(self, node: int, base_cycles: int) -> int:
        """Base host delay plus OS-noise detours."""
        return self._with_os_noise(node, base_cycles)

    def _with_os_noise(self, node: int, cycles: int) -> int:
        host = self.host
        rng = self.streams
        if host.os_noise_probability > 0 and rng.random("os-noise") < host.os_noise_probability:
            cycles += int(rng.expovariate("os-noise-duration", host.os_noise_mean))
        return max(0, int(cycles))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for job of size {self.size}")

    # -- reporting ---------------------------------------------------------------------------

    def default_traffic_fraction(self) -> float:
        """Byte-weighted fraction of traffic sent with the Default family."""
        fractions = [p.default_traffic_fraction() for p in self.policies]
        return sum(fractions) / len(fractions)

    def policy_label(self) -> str:
        """Label of the routing policy in use (assumed uniform across ranks)."""
        return self.policies[0].describe()


class RankContext:
    """Per-rank facade handed to rank programs.

    All methods return :class:`Request` objects (to be yielded) or are
    generators themselves (``yield from`` them) for blocking/collective
    semantics.
    """

    def __init__(self, job: MpiJob, rank: int):
        self.job = job
        self.rank = rank

    # -- basics ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks in the job."""
        return self.job.size

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self.job.sim.now

    @property
    def node(self) -> int:
        """The node this rank runs on."""
        return self.job.node_of(self.rank)

    # -- non-blocking primitives --------------------------------------------------

    def isend(
        self,
        dst_rank: int,
        size_bytes: int,
        tag: object = 0,
        collective: Optional[str] = None,
    ) -> Request:
        """Post a non-blocking send."""
        return self.job.post_send(self.rank, dst_rank, size_bytes, tag, collective)

    def irecv(self, src_rank: int, tag: object = 0) -> Request:
        """Post a non-blocking receive."""
        return self.job.post_recv(self.rank, src_rank, tag)

    def compute(self, cycles: int) -> Request:
        """Post a local compute burst."""
        return self.job.post_compute(self.rank, cycles)

    # -- blocking helpers (generators) ----------------------------------------------

    def send(self, dst_rank: int, size_bytes: int, tag: object = 0, collective: Optional[str] = None):
        """Blocking send (waits for source-side completion)."""
        yield self.isend(dst_rank, size_bytes, tag, collective)

    def recv(self, src_rank: int, tag: object = 0):
        """Blocking receive."""
        yield self.irecv(src_rank, tag)

    def sendrecv(
        self,
        dst_rank: int,
        src_rank: int,
        size_bytes: int,
        tag: object = 0,
        collective: Optional[str] = None,
        recv_size: Optional[int] = None,
    ):
        """Simultaneous send and receive (completes when both do)."""
        del recv_size  # sizes are symmetric in all our workloads
        yield [
            self.isend(dst_rank, size_bytes, tag, collective),
            self.irecv(src_rank, tag),
        ]

    # -- collectives -------------------------------------------------------------------

    def barrier(self, tag: object = "barrier"):
        """Dissemination barrier."""
        from repro.mpi.collectives import barrier

        yield from barrier(self, tag=tag)

    def bcast(self, size_bytes: int, root: int = 0, tag: object = "bcast"):
        """Binomial-tree broadcast."""
        from repro.mpi.collectives import bcast

        yield from bcast(self, size_bytes, root=root, tag=tag)

    def allreduce(self, size_bytes: int, tag: object = "allreduce"):
        """Allreduce (recursive doubling / ring)."""
        from repro.mpi.collectives import allreduce

        yield from allreduce(self, size_bytes, tag=tag)

    def alltoall(self, size_bytes_per_pair: int, tag: object = "alltoall"):
        """Pairwise-exchange all-to-all."""
        from repro.mpi.collectives import alltoall

        yield from alltoall(self, size_bytes_per_pair, tag=tag)

    def allgather(self, size_bytes_per_rank: int, tag: object = "allgather"):
        """Ring allgather."""
        from repro.mpi.collectives import allgather

        yield from allgather(self, size_bytes_per_rank, tag=tag)

    def reduce(self, size_bytes: int, root: int = 0, tag: object = "reduce"):
        """Binomial-tree reduction."""
        from repro.mpi.collectives import reduce

        yield from reduce(self, size_bytes, root=root, tag=tag)
