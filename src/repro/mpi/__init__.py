"""A small MPI-like message-passing layer on top of the simulated network.

Rank programs are written as Python generators that yield
:class:`~repro.mpi.request.Request` objects (or lists of them); the
:class:`~repro.mpi.job.MpiJob` scheduler resumes a rank once the requests it
waited on have completed.  Collective operations (barrier, broadcast,
allreduce, alltoall, allgather, reduce) are built from point-to-point
messages with the textbook algorithms, so their traffic patterns — and
therefore their sensitivity to routing — resemble the MPI implementations
used in the paper's evaluation.

Every outgoing message consults the job's per-rank
:class:`~repro.core.policy.RoutingPolicy`, which is how the three evaluated
configurations (Default, Adaptive with High Bias, Application-Aware) differ.
"""

from repro.mpi.request import Request
from repro.mpi.job import MpiJob, RankContext

__all__ = ["Request", "MpiJob", "RankContext"]
