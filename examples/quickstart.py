#!/usr/bin/env python
"""Quickstart: build a Dragonfly, send messages, read the NIC counters.

This example walks through the lowest layer of the library:

1. configure and build a small Aries-like Dragonfly network;
2. send RDMA PUT messages between nodes under different routing modes;
3. read the four NIC counters the paper relies on (request flits, stall
   cycles, request packets, cumulative latency) and feed them into the
   Section 2.4 performance model;
4. let the application-aware runtime (Algorithm 1) pick the routing mode.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AppAwareRuntime,
    Network,
    RoutingMode,
    SimulationConfig,
    estimate_transmission_cycles,
)


def send_and_measure(network: Network, mode: RoutingMode, size_bytes: int) -> None:
    """Send one message with a fixed routing mode and print its counters."""
    src, dst = 0, network.num_nodes - 1
    nic = network.nic(src)
    before = nic.counters.snapshot()
    message = network.send(src, dst, size_bytes, routing_mode=mode)
    network.run_until_idle()
    delta = nic.counters.snapshot().delta(before)
    estimate = estimate_transmission_cycles(
        size_bytes, delta.avg_packet_latency, delta.stall_ratio, network.config.nic
    )
    print(
        f"  {mode.value:12s} T_msg={message.transmission_time:>8} cycles   "
        f"L={delta.avg_packet_latency:8.1f}  s={delta.stall_ratio:6.3f}  "
        f"model={estimate:8.1f}  minimal={message.minimal_fraction():.0%}"
    )


def main() -> None:
    # A 4-group Dragonfly: 2 chassis x 4 blades per group, 4 nodes per blade.
    config = SimulationConfig.small(seed=7)
    print(f"building a Dragonfly with {config.topology.num_nodes} nodes "
          f"in {config.topology.num_groups} groups")

    print("\n1) one 64 KiB PUT between two groups, per routing mode:")
    for mode in (RoutingMode.ADAPTIVE_0, RoutingMode.ADAPTIVE_3, RoutingMode.MIN_HASH):
        # A fresh network per mode keeps the comparison clean.
        send_and_measure(Network(config), mode, 64 * 1024)

    print("\n2) the application-aware runtime (Algorithm 1) picking the mode:")
    network = Network(config)
    runtime = AppAwareRuntime(network, node_id=0)
    dst = network.num_nodes - 1
    for index in range(6):
        done = []
        runtime.send(dst, 64 * 1024, on_acked=lambda m: done.append(m))
        while not done and network.sim.step():
            pass
        message = done[0]
        print(
            f"  send {index}: mode={message.routing_mode.value:12s} "
            f"T_msg={message.transmission_time} cycles"
        )
    print(
        f"  fraction of bytes sent with the Default family: "
        f"{runtime.default_traffic_fraction:.0%}"
    )


if __name__ == "__main__":
    main()
