#!/usr/bin/env python
"""Domain-science scenario: a 3D stencil (halo3d) across routing modes.

halo3d is the Ember nearest-neighbour exchange the paper uses as a heavy
communication microbenchmark (its traffic resembles MILC's, but without the
computation that lets MILC absorb noise).  This example sweeps the domain
size and shows how the best routing mode changes with traffic intensity —
the core observation motivating application-aware routing.

Run with::

    python examples/halo3d_scaling.py
"""

from __future__ import annotations

import random

from repro.allocation.policies import allocate_scattered
from repro.analysis.reporting import Table
from repro.experiments.harness import ExperimentScale, compare_policies
from repro.noise.background import NoiseLevel
from repro.workloads.stencils import Halo3DBenchmark


def main() -> None:
    scale = ExperimentScale.smoke().with_seed(99)
    topo = scale.topology()
    allocation = allocate_scattered(
        topo, num_nodes=8, rng=random.Random(17), name="halo3d-alloc"
    )
    print(f"allocation: {allocation.describe(topo)}")

    table = Table(
        title="halo3d: normalized median time per routing configuration",
        columns=["domain", "Default", "HighBias", "AppAware", "best"],
    )
    for domain in (16, 32, 64):
        comparison = compare_policies(
            scale,
            allocation,
            lambda domain=domain: Halo3DBenchmark(domain=domain, iterations=3),
            noise_level=NoiseLevel.MODERATE,
        )
        normalized = comparison.normalized_medians()
        table.add_row(
            f"{domain}^3",
            normalized["Default"],
            normalized["HighBias"],
            normalized["AppAware"],
            comparison.best_policy(),
        )
        print(f"domain {domain}^3 done (best: {comparison.best_policy()})")
    print()
    print(table.render())
    print(
        "\nSmall domains are latency-bound (minimal-biased routing helps); "
        "large domains inject enough traffic that spreading packets over "
        "non-minimal paths pays off — no static choice wins everywhere."
    )


if __name__ == "__main__":
    main()
