#!/usr/bin/env python
"""Application-aware routing on MPI-style collectives.

This example runs a small suite of collectives (alltoall, allreduce,
broadcast) on a scattered multi-group allocation with cross traffic, under
the three routing configurations of the paper's evaluation:

* ``Default``   — ADAPTIVE_0, ADAPTIVE_1 for Alltoall (the system default);
* ``HighBias``  — ADAPTIVE_3 for everything;
* ``AppAware``  — Algorithm 1 deciding per message.

and prints the normalized medians exactly like a row of Figure 8/9.

Run with::

    python examples/app_aware_collectives.py
"""

from __future__ import annotations

import random

from repro.allocation.policies import allocate_scattered
from repro.analysis.reporting import Table
from repro.experiments.harness import ExperimentScale, compare_policies
from repro.noise.background import NoiseLevel
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BroadcastBenchmark,
)


def main() -> None:
    scale = ExperimentScale.smoke().with_seed(2023)
    topo = scale.topology()
    allocation = allocate_scattered(
        topo, num_nodes=8, rng=random.Random(3), name="example-alloc"
    )
    print(f"allocation: {allocation.describe(topo)}")

    suite = [
        ("alltoall 1KiB", lambda: AlltoallBenchmark(size_bytes=1024, iterations=3)),
        ("allreduce 2048 elems", lambda: AllreduceBenchmark(elements=2048, iterations=3)),
        ("broadcast 32KiB", lambda: BroadcastBenchmark(size_bytes=32 * 1024, iterations=3)),
    ]

    table = Table(
        title="Collectives under the three routing configurations "
        "(times normalized to the Default median)",
        columns=["benchmark", "Default", "HighBias", "AppAware",
                 "% default traffic (AppAware)", "best"],
    )
    for label, factory in suite:
        comparison = compare_policies(
            scale, allocation, factory, noise_level=NoiseLevel.MODERATE
        )
        normalized = comparison.normalized_medians()
        fraction = comparison.app_aware_fraction_default() or 0.0
        table.add_row(
            label,
            normalized["Default"],
            normalized["HighBias"],
            normalized["AppAware"],
            fraction * 100.0,
            comparison.best_policy(),
        )
        print(f"finished {label}: best = {comparison.best_policy()}")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
