#!/usr/bin/env python
"""Network-noise study: how allocation and cross traffic shape a ping-pong.

Reproduces, at example scale, the methodology of Sections 3 and 4:

* run a ping-pong in the four placements of Figure 3 (same blade, different
  blades, different chassis, different groups) with background traffic and
  compare medians and dispersion (QCD);
* show that the *network-side* variability derived from NIC counters is
  smaller than the end-to-end variability (the Section 3.3 rule).

Run with::

    python examples/noise_study.py
"""

from __future__ import annotations

from repro import MpiJob, Network, NoiseLevel, BackgroundTraffic, SimulationConfig
from repro.allocation.policies import figure3_allocations
from repro.analysis.reporting import BOXPLOT_COLUMNS, Table, boxplot_row
from repro.analysis.stats import quartile_coefficient_of_dispersion, summarize
from repro.workloads.microbench import PingPongBenchmark

MESSAGE_BYTES = 16 * 1024
REPETITIONS = 20


def run_placement(config: SimulationConfig, allocation) -> tuple:
    """Run the ping-pong in one placement; return (times, latency QCD)."""
    network = Network(config)
    noise = BackgroundTraffic.for_level(
        network, list(allocation), NoiseLevel.MODERATE, max_nodes=16,
        name=f"noise-{allocation.name}",
    )
    if noise is not None:
        noise.start()
    job = MpiJob(network, list(allocation), name=f"pp-{allocation.name}")
    sender = network.nic(allocation[0])

    latencies = []
    state = {"before": sender.counters.snapshot()}
    workload = PingPongBenchmark(size_bytes=MESSAGE_BYTES, iterations=REPETITIONS, warmup=1)

    def record(_index: int, _elapsed: int) -> None:
        after = sender.counters.snapshot()
        delta = after.delta(state["before"])
        state["before"] = after
        if delta.responses_received:
            latencies.append(delta.avg_packet_latency)

    workload.on_iteration = record
    result = workload.run(job)
    if noise is not None:
        noise.stop()
    latency_qcd = quartile_coefficient_of_dispersion(latencies) if latencies else 0.0
    return result.iteration_times, latency_qcd


def main() -> None:
    config = SimulationConfig.small(seed=11)
    table = Table(
        title=f"Ping-pong ({MESSAGE_BYTES} B) under cross traffic, per placement",
        columns=BOXPLOT_COLUMNS + ["latency QCD"],
    )
    for allocation in figure3_allocations(config.topology):
        times, latency_qcd = run_placement(config, allocation)
        table.add_row(*boxplot_row(allocation.name, times), latency_qcd)
        stats = summarize(times)
        print(
            f"{allocation.name:14s} median={stats.median:9.0f} cycles  "
            f"time QCD={stats.qcd:.3f}  latency QCD={latency_qcd:.3f}"
        )
    print()
    print(table.render())
    print(
        "\nNote how both the median and the dispersion grow with topological "
        "distance, and how the counter-based (network-side) variability is "
        "smaller than the end-to-end one — measuring noise from execution "
        "times alone overestimates it."
    )


if __name__ == "__main__":
    main()
