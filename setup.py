"""Setuptools shim.

Kept so that legacy editable installs (``pip install -e . --no-use-pep517``
or ``python setup.py develop``) work on systems without the ``wheel``
package; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
