"""Section 2.4 — performance-model validation (correlation vs. measurements)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import model_validation


def test_model_validation(benchmark, scale, results_dir):
    """Regenerate the Equation-2 validation (paper: ≈ 79 % correlation)."""
    result = benchmark.pedantic(
        model_validation.run, args=(scale,), rounds=1, iterations=1
    )
    report = model_validation.report(result)
    emit(results_dir, "model_validation", report)
    assert result.correlation() > 0.5
