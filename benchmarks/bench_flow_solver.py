"""Reference vs. vectorized fair-share solver: throughput across flow counts.

The workload is the shape the flow backend produces on a large Dragonfly:
flows occupying a handful of links each, clustered so the sharing graph
splits into many components (jobs/placements), with heterogeneous link
capacities and a mix of finite/infinite flow caps.  Each size measures

* a **full solve** from scratch (the cost of the first allocation), and
* **incremental churn** — remove one flow, add one flow, re-solve — which
  is what every message arrival/completion costs during a simulation.

A JSON artifact with the series is written to
``benchmarks/results/BENCH_flow_solver.json``::

    python -m pytest benchmarks/bench_flow_solver.py -q -s
    python benchmarks/bench_flow_solver.py            # standalone, same JSON
    python benchmarks/bench_flow_solver.py --smoke    # 100/1k flows (CI)

The default (non-smoke) run covers 100 / 1k / 10k / 100k concurrent flows;
the reference solver is only timed up to ``REFERENCE_MAX_FLOWS`` (a full
pure-Python solve at 100k flows takes minutes and proves nothing new).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_flow_solver.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.model.flow.engine import make_engine
from repro.model.flow.solver import FlowState

#: Concurrent-flow counts of the full sweep (smoke keeps the first two).
SIZES = (100, 1_000, 10_000, 100_000)
SMOKE_SIZES = (100, 1_000)

#: Largest size the pure-Python reference solver is timed at.
REFERENCE_MAX_FLOWS = 10_000

#: Incremental churn steps timed per engine.
CHURN_STEPS = 50
REFERENCE_CHURN_STEPS = 5

#: Acceptance bars asserted by the pytest wrapper (and CI).
MIN_SPEEDUP_AT_10K = 10.0
MIN_SPEEDUP_SMOKE = 2.0

LINKS_PER_CLUSTER = 24
SEED = 2019


def build_workload(n_flows: int, seed: int = SEED):
    """Deterministic clustered instance: (capacity map, flow specs, clusters)."""
    rng = random.Random(seed)
    clusters = max(1, n_flows // 200)
    capacities = {}
    for cluster in range(clusters):
        for i in range(LINKS_PER_CLUSTER):
            capacities[("l", cluster, i)] = rng.choice([0.333, 1.0, 3.0])
    specs = []
    for fid in range(n_flows):
        cluster = rng.randrange(clusters)
        links = tuple(
            ("l", cluster, i)
            for i in rng.sample(range(LINKS_PER_CLUSTER), rng.randint(3, 8))
        )
        cap = rng.choice([float("inf"), float("inf"), 1.0, 0.5])
        specs.append((fid, links, cap))
    return capacities, specs, clusters


def _flows(specs):
    return [FlowState(fid, links, 100.0, cap=cap) for fid, links, cap in specs]


def _churn(engine, live, specs, steps: int, seed: int) -> float:
    """Remove/add/solve ``steps`` times; returns seconds per step.

    Victim picks and replacement flows are precomputed so the timed window
    contains only engine work — sorting 100k flow ids per step would
    otherwise dominate the measurement and mask solver regressions.
    """
    rng = random.Random(seed)
    next_id = len(specs)
    ordered = sorted(live)
    operations = []
    for _ in range(steps):
        victim_id = ordered.pop(rng.randrange(len(ordered)))
        _fid, links, cap = specs[rng.randrange(len(specs))]
        operations.append((live[victim_id], FlowState(next_id, links, 100.0, cap=cap)))
        ordered.append(next_id)
        live[next_id] = operations[-1][1]
        next_id += 1
    start = time.perf_counter()
    for victim, replacement in operations:
        engine.remove_flow(victim)
        engine.add_flow(replacement)
        engine.solve()
    return (time.perf_counter() - start) / steps


def run_engine(kind: str, n_flows: int, churn_steps: int) -> dict:
    """Time one engine on one size; returns the series sub-entry."""
    capacities, specs, _clusters = build_workload(n_flows)
    engine = make_engine(kind, capacities.__getitem__)
    live = {}
    start = time.perf_counter()
    for flow in _flows(specs):
        engine.add_flow(flow)
        live[flow.flow_id] = flow
    add_s = time.perf_counter() - start
    start = time.perf_counter()
    engine.solve()
    full_s = time.perf_counter() - start
    step_s = _churn(engine, live, specs, churn_steps, seed=SEED + 1)
    return {
        "engine": kind,
        "add_s": round(add_s, 4),
        "full_solve_s": round(full_s, 4),
        "full_solves_per_sec": round(1.0 / max(1e-9, full_s), 2),
        "incremental_step_ms": round(step_s * 1e3, 3),
        "incremental_solves_per_sec": round(1.0 / max(1e-9, step_s), 1),
        "churn_steps": churn_steps,
        "stats": dict(engine.stats),
    }


def measure_sizes(sizes) -> dict:
    """Run both engines across the sizes; returns the JSON payload."""
    series = []
    for n_flows in sizes:
        _capacities, _specs, clusters = build_workload(n_flows)
        entry = {
            "flows": n_flows,
            "clusters": clusters,
            "vectorized": run_engine("vectorized", n_flows, CHURN_STEPS),
        }
        if n_flows <= REFERENCE_MAX_FLOWS:
            entry["reference"] = run_engine(
                "reference", n_flows, REFERENCE_CHURN_STEPS
            )
            entry["speedup_full"] = round(
                entry["reference"]["full_solve_s"]
                / max(1e-9, entry["vectorized"]["full_solve_s"]),
                2,
            )
            entry["speedup_incremental"] = round(
                entry["reference"]["incremental_step_ms"]
                / max(1e-9, entry["vectorized"]["incremental_step_ms"]),
                2,
            )
        else:
            entry["reference"] = None
            entry["reference_skipped"] = (
                f"reference solver not timed above {REFERENCE_MAX_FLOWS} flows"
            )
        series.append(entry)
    compared = [e for e in series if e.get("reference")]
    return {
        "benchmark": "flow_solver",
        "workload": (
            f"clustered random paths ({LINKS_PER_CLUSTER} links/cluster, "
            "3-8 links/flow, heterogeneous capacities)"
        ),
        "sizes": list(sizes),
        "max_speedup_full": max((e["speedup_full"] for e in compared), default=None),
        "max_speedup_incremental": max(
            (e["speedup_incremental"] for e in compared), default=None
        ),
        "series": series,
    }


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_flow_solver.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [f"flow-solver throughput — {payload['workload']}"]
    for entry in payload["series"]:
        vec = entry["vectorized"]
        line = (
            f"  {entry['flows']:>6d} flows: vectorized full {vec['full_solve_s']*1e3:8.1f} ms, "
            f"churn {vec['incremental_step_ms']:7.2f} ms/step"
        )
        ref = entry.get("reference")
        if ref:
            line += (
                f" | reference full {ref['full_solve_s']*1e3:9.1f} ms "
                f"-> {entry['speedup_full']:.1f}x full, "
                f"{entry['speedup_incremental']:.1f}x churn"
            )
        else:
            line += " | reference skipped"
        lines.append(line)
    return "\n".join(lines)


def _assert_bars(payload: dict) -> None:
    """The acceptance bars, shared by pytest and the CI step."""
    compared = [e for e in payload["series"] if e.get("reference")]
    assert compared, "no size ran both engines"
    largest = max(compared, key=lambda e: e["flows"])
    if largest["flows"] >= 10_000:
        assert largest["speedup_full"] >= MIN_SPEEDUP_AT_10K, (
            f"vectorized solver regressed: {largest['speedup_full']}x at "
            f"{largest['flows']} flows (bar: {MIN_SPEEDUP_AT_10K}x)"
        )
    else:  # smoke sizes: a softer sanity bar
        assert largest["speedup_full"] >= MIN_SPEEDUP_SMOKE, (
            f"vectorized solver regressed: {largest['speedup_full']}x at "
            f"{largest['flows']} flows (bar: {MIN_SPEEDUP_SMOKE}x)"
        )


def test_flow_solver_throughput(benchmark, scale, results_dir):
    """Reference vs vectorized at increasing flow counts; JSON emitted."""
    sizes = SMOKE_SIZES if scale.name == "smoke" else SIZES
    payload = benchmark.pedantic(measure_sizes, args=(sizes,), rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "flow_solver", _render(payload))
    _assert_bars(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="only the 100/1k-flow sizes (CI-friendly, ~seconds)",
    )
    args = parser.parse_args()
    payload = measure_sizes(SMOKE_SIZES if args.smoke else SIZES)
    path = _write_json(payload, RESULTS_DIR)
    print(_render(payload))
    _assert_bars(payload)
    print(f"wrote {path}")
