"""Probe overhead: probed vs unprobed flit-backend smoke campaign.

Runs the same serial grid of flit ping-pong cells with network probes
disabled and enabled (default interval and decision rate), and asserts the
probed run stays within 5% of the baseline.  The measurement protocol is
the same defensive one as ``bench_telemetry_overhead``: CPU time, runs
interleaved in order-flipping pairs, the minimum per mode, and up to three
attempts (noise only inflates overhead, so retries are sound while a real
regression keeps failing).

The disabled fast path is bounded separately: with probes off the only
instrumentation cost is one ``probe_hook is not None`` check per executed
event in the sim engines plus one ``PROBES.enabled`` check per adaptive
routing decision.  The bench microbenchmarks that guard, counts how many
times one grid actually hits it (executed events + decisions seen, both
read from an instrumented run), and asserts the implied disabled-mode
overhead is under 1% of the baseline.  A JSON artifact goes to
``benchmarks/results/BENCH_probe_overhead.json``::

    python benchmarks/bench_probe_overhead.py            # 4-cell grid
    python benchmarks/bench_probe_overhead.py --smoke    # CI grid (2)
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_probe_overhead.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.campaign import CampaignPlan, RunSpec, ensure_builtin_scenarios, run_cell
from repro.telemetry import disable as telemetry_disable
from repro.telemetry import enable as telemetry_enable
from repro.telemetry.probes import PROBES, disable_probes, enable_probes

ENABLED_CEILING_PCT = 5.0
DISABLED_CEILING_PCT = 1.0
REPEATS = 8
ATTEMPTS = 3
GUARD_ITERS = 200_000


def _bench_plan(cells: int) -> CampaignPlan:
    """A serial flit-backend grid: distinct seeds, identical work per cell."""
    ensure_builtin_scenarios()
    specs = tuple(
        RunSpec.make(
            "pingpong-placement",
            {"placement": "inter-groups", "message_kib": 16, "noise": "light"},
            seed=4100 + i,
            backend="flit",
        )
        for i in range(cells)
    )
    return CampaignPlan(name="bench-probes", specs=specs)


def _run_grid(plan: CampaignPlan) -> float:
    """Execute every cell serially in-process; returns CPU seconds."""
    start = time.process_time()
    for spec in plan.specs:
        record = run_cell(spec)
        assert record.ok, record.error
    return time.process_time() - start


def _run_mode(plan: CampaignPlan, probed: bool) -> float:
    if probed:
        enable_probes()
    else:
        disable_probes()
    try:
        return _run_grid(plan)
    finally:
        disable_probes()


def _guard_ns() -> float:
    """Cost of the disabled-path guard per hit.

    The loop alternates the two guard shapes the hot paths use — the
    engines' ``hook is not None`` and the router's ``PROBES.enabled`` —
    and includes loop overhead, which overestimates the guard: the
    conservative direction for the <1% disabled bound.
    """
    hook = None
    start = time.perf_counter()
    for _ in range(GUARD_ITERS):
        if hook is not None:
            raise AssertionError("unreachable")
        if PROBES.enabled:
            raise AssertionError("probes must be off for the guard bench")
    return (time.perf_counter() - start) / GUARD_ITERS * 1e9


def _guard_checks_per_run(plan: CampaignPlan) -> int:
    """How many disabled-path guard hits one grid performs.

    The engines check ``probe_hook`` once per executed event (telemetry's
    ``sim.events`` counter) and the router checks ``PROBES.enabled`` once
    per adaptive decision (the recorder's ``decisions_seen``); one
    instrumented cell measures both.
    """
    telemetry_enable()
    enable_probes()
    try:
        record = run_cell(plan.specs[0])
        assert record.ok and record.telemetry is not None
        events = int(record.telemetry["counters"].get("sim.events", 0))
        decisions = int((record.probes or {}).get("decisions_seen", 0))
    finally:
        disable_probes()
        telemetry_disable()
    return (events + decisions) * len(plan.specs)


def _measure_once(plan: CampaignPlan, repeats: int) -> dict:
    """One attempt: interleaved order-flipping pairs, minimum per mode."""
    disabled_runs, enabled_runs = [], []
    for pair in range(repeats):
        first_probed = pair % 2 == 1
        for probed in (first_probed, not first_probed):
            (enabled_runs if probed else disabled_runs).append(
                _run_mode(plan, probed)
            )
    baseline = min(disabled_runs)
    probed = min(enabled_runs)
    return {
        "disabled_s": [round(v, 4) for v in disabled_runs],
        "enabled_s": [round(v, 4) for v in enabled_runs],
        "baseline_s": round(baseline, 4),
        "probed_s": round(probed, 4),
        "enabled_overhead_pct": round((probed / baseline - 1.0) * 100.0, 3),
    }


def measure_overhead(
    cells: int, repeats: int = REPEATS, attempts: int = ATTEMPTS
) -> dict:
    """Time the grid unprobed and probed; returns the JSON payload."""
    plan = _bench_plan(cells)
    _run_grid(plan)  # warm caches/imports outside both measured modes

    trials = []
    for _ in range(attempts):
        trials.append(_measure_once(plan, repeats))
        if trials[-1]["enabled_overhead_pct"] <= ENABLED_CEILING_PCT:
            break
    best = min(trials, key=lambda t: t["enabled_overhead_pct"])

    guard_ns = _guard_ns()
    guard_checks = _guard_checks_per_run(plan)
    disabled_pct = guard_checks * guard_ns / (best["baseline_s"] * 1e9) * 100.0

    payload = {
        "benchmark": "probe_overhead",
        "backend": "flit",
        "probe_interval": PROBES.interval,
        "decision_rate": PROBES.decision_rate,
        "grid_cells": len(plan),
        "repeats": repeats,
        "attempts": len(trials),
        "trials": trials,
        "enabled_ceiling_pct": ENABLED_CEILING_PCT,
        "guard_ns_per_check": round(guard_ns, 2),
        "guard_checks_per_run": guard_checks,
        "disabled_overhead_pct": round(disabled_pct, 4),
        "disabled_ceiling_pct": DISABLED_CEILING_PCT,
    }
    payload.update(best)  # the attempt the assertion runs against
    return payload


def check_overhead(payload: dict) -> None:
    """Assert both overhead ceilings."""
    assert payload["enabled_overhead_pct"] <= payload["enabled_ceiling_pct"], (
        f"probes slow the flit campaign by {payload['enabled_overhead_pct']}% "
        f"(ceiling: {payload['enabled_ceiling_pct']}%)"
    )
    assert payload["disabled_overhead_pct"] < payload["disabled_ceiling_pct"], (
        f"disabled probe guard costs {payload['disabled_overhead_pct']}% "
        f"(ceiling: {payload['disabled_ceiling_pct']}%)"
    )


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_probe_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    return "\n".join(
        [
            f"probe overhead ({payload['grid_cells']}-cell "
            f"{payload['backend']} grid, interval {payload['probe_interval']}, "
            f"min of {payload['repeats']} interleaved runs, "
            f"{payload['attempts']} attempt(s))",
            f"  unprobed: {payload['baseline_s']:.3f} s CPU",
            f"  probed:   {payload['probed_s']:.3f} s CPU "
            f"({payload['enabled_overhead_pct']:+.2f}%, "
            f"ceiling {payload['enabled_ceiling_pct']:.0f}%)",
            f"  disabled guard: {payload['guard_ns_per_check']:.0f} ns/check x "
            f"{payload['guard_checks_per_run']} checks = "
            f"{payload['disabled_overhead_pct']:.4f}% "
            f"(ceiling {payload['disabled_ceiling_pct']:.0f}%)",
        ]
    )


def test_probe_overhead(benchmark, results_dir):
    """Probed-vs-unprobed grid; BENCH JSON emitted, 5%/1% bars asserted."""
    payload = benchmark.pedantic(measure_overhead, args=(2,), rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "probe_overhead", _render(payload))
    check_overhead(payload)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = measure_overhead(cells=2 if smoke else 4)
    path = _write_json(payload, RESULTS_DIR)
    print(_render(payload))
    print(f"wrote {path}")
    check_overhead(payload)
