"""Figure 9 — microbenchmark suite on the small allocation (Cori-like)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure9


def test_figure9_microbenchmarks_small(benchmark, scale, results_dir):
    """Regenerate the Figure 9 matrix on the small allocation."""
    result = benchmark.pedantic(figure9.run, args=(scale,), rounds=1, iterations=1)
    report = figure9.report(result)
    emit(results_dir, "figure9", report)
    assert result.job_nodes == scale.small_job_nodes
    assert result.rows()
