"""Table 1 — idle application vs. observed flits/stalls (correlation ≠ causation)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import table1


def test_table1_idle_counters(benchmark, scale, results_dir):
    """Regenerate Table 1."""
    result = benchmark.pedantic(table1.run, args=(scale,), rounds=1, iterations=1)
    report = table1.report(result)
    emit(results_dir, "table1", report)
    # Doubling the (idle) observation time roughly doubles the observed flits…
    assert 1.2 <= result.flit_ratio() <= 2.8
    # …while the per-unit rate stays roughly constant once normalized.
    assert 0.5 <= result.normalized_ratio() <= 1.5
