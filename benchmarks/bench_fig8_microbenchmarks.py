"""Figure 8 — microbenchmark suite on the large allocation (Piz-Daint-like)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure8


def test_figure8_microbenchmarks(benchmark, scale, results_dir):
    """Regenerate the Figure 8 matrix (normalized times + % Default traffic)."""
    result = benchmark.pedantic(figure8.run, args=(scale,), rounds=1, iterations=1)
    report = figure8.report(result)
    emit(results_dir, "figure8", report)
    rows = result.rows()
    assert len(rows) == len(figure8.benchmark_matrix())
    # The Default series is the normalization baseline by construction.
    assert all(abs(row[3] - 1.0) < 1e-9 for row in rows)
    # Routing matters: at least one configuration shows a ≥10 % gap between
    # the two static modes (the paper reports up to 2x).
    assert any(abs(row[4] - 1.0) > 0.10 for row in rows)
