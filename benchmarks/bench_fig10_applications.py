"""Figure 10 — application proxies under the three routing configurations."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure10


def test_figure10_applications(benchmark, scale, results_dir):
    """Regenerate the Figure 10 table (all application proxies + FFT contrast)."""
    result = benchmark.pedantic(figure10.run, args=(scale,), rounds=1, iterations=1)
    report = figure10.report(result)
    emit(results_dir, "figure10", report)
    assert set(result.comparisons) == set(figure10.APPLICATIONS)
    # The FFT experiment is repeated on a smaller allocation.
    assert result.fft_small is not None
