"""Ablation — phantom congestion (stale credit information).

Section 2.2 attributes part of the Adaptive mode's noise to *phantom
congestion*: far-end congestion information carried by credits arrives late,
so routers divert packets to non-minimal paths even after the congestion has
drained.  The simulator exposes the staleness directly
(``RoutingConfig.credit_info_delay``); this ablation measures how the
fraction of needlessly diverted packets grows with the delay.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.reporting import Table
from repro.network.network import Network
from repro.routing.modes import RoutingMode


def _diverted_fraction(scale, delay: int) -> float:
    """Non-minimal fraction of probe traffic sent after congestion drained."""
    config = scale.simulation_config().with_routing(credit_info_delay=delay)
    network = Network(config)
    nodes_per_router = config.topology.nodes_per_router
    # Phase 1: a burst congests the minimal path between routers 0 and 1.
    network.send(0, nodes_per_router, scale.scaled_size(128 * 1024))
    network.run(until=30_000)
    # Phase 2: the burst has mostly drained; probes should route minimally,
    # but stale credit information still reports the old congestion.
    probes = []
    for slot in range(1, nodes_per_router):
        probes.append(
            network.send(
                slot,
                nodes_per_router + slot,
                scale.scaled_size(16 * 1024),
                routing_mode=RoutingMode.ADAPTIVE_0,
            )
        )
    network.run_until_idle()
    nonminimal = sum(m.nonminimal_packets for m in probes)
    total = sum(m.minimal_packets + m.nonminimal_packets for m in probes)
    return nonminimal / total


def run_phantom_ablation(scale, delays=(0, 1_000, 10_000, 50_000)):
    """Needlessly-diverted fraction as a function of the information delay."""
    return {delay: _diverted_fraction(scale, delay) for delay in delays}


def test_ablation_phantom_congestion(benchmark, scale, results_dir):
    """Stale congestion information increases needless non-minimal routing."""
    fractions = benchmark.pedantic(
        run_phantom_ablation, args=(scale,), rounds=1, iterations=1
    )
    table = Table(
        title="Ablation — phantom congestion: diverted traffic vs. credit-info delay",
        columns=["credit info delay (cycles)", "non-minimal fraction of probes"],
    )
    for delay, fraction in fractions.items():
        table.add_row(delay, fraction)
    emit(results_dir, "ablation_phantom", table.render())
    delays = sorted(fractions)
    assert fractions[delays[-1]] >= fractions[delays[0]]
