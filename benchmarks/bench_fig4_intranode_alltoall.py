"""Figure 4 — intra-node Alltoall variability without any network involvement."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure4


def test_figure4_intranode_alltoall(benchmark, scale, results_dir):
    """Regenerate Figure 4."""
    result = benchmark.pedantic(figure4.run, args=(scale,), rounds=1, iterations=1)
    report = figure4.report(result)
    emit(results_dir, "figure4", report)
    # Even with zero network traffic, host-side contention and OS noise make
    # the collective's execution time vary.
    assert any(qcd > 0.0 for qcd in result.qcds().values())
