"""Ablation — sweep of the minimal-path bias value.

The paper only exposes three bias levels (none / low / high) because that is
what ``MPICH_GNI_ROUTING_MODE`` offers, and argues that ``ADAPTIVE_2``'s
behaviour lies between ``ADAPTIVE_0`` and ``ADAPTIVE_3``.  The simulator lets
us sweep the bias continuously and check the claimed monotonicity: a larger
bias yields a monotonically larger fraction of minimally routed packets.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.reporting import Table
from repro.network.network import Network
from repro.routing.modes import RoutingMode


def _minimal_fraction_for_bias(scale, bias: float) -> float:
    """Fraction of minimally routed packets under a synthetic hot spot."""
    config = scale.simulation_config().with_routing(high_bias=bias)
    network = Network(config)
    nodes_per_router = config.topology.nodes_per_router
    messages = []
    # Several senders on router 0 target router 1 so the shared minimal links
    # congest and the bias decides how much traffic diverts.
    for slot in range(nodes_per_router):
        messages.append(
            network.send(
                slot,
                nodes_per_router + slot,
                scale.scaled_size(64 * 1024),
                routing_mode=RoutingMode.ADAPTIVE_3,
            )
        )
    network.run_until_idle()
    minimal = sum(m.minimal_packets for m in messages)
    total = sum(m.minimal_packets + m.nonminimal_packets for m in messages)
    return minimal / total


def run_bias_sweep(scale, biases=(0.0, 8.0, 16.0, 32.0, 64.0, 128.0)):
    """Minimal-path fraction as a function of the bias value."""
    return {bias: _minimal_fraction_for_bias(scale, bias) for bias in biases}


def test_ablation_bias_sweep(benchmark, scale, results_dir):
    """The minimal-path fraction grows (weakly) monotonically with the bias."""
    fractions = benchmark.pedantic(run_bias_sweep, args=(scale,), rounds=1, iterations=1)
    table = Table(
        title="Ablation — minimal-path fraction vs. non-minimal bias",
        columns=["bias (flits)", "minimal fraction"],
    )
    for bias, fraction in fractions.items():
        table.add_row(bias, fraction)
    emit(results_dir, "ablation_bias_sweep", table.render())
    biases = sorted(fractions)
    # Allow small non-monotonic wiggles from sampling randomness.
    assert fractions[biases[-1]] >= fractions[biases[0]] - 0.02
    assert fractions[biases[-1]] > 0.5
