"""Cluster-trace replay throughput and determinism on the flow backend.

Replays a seeded synthetic multi-tenant trace (hundreds of jobs arriving,
queueing and departing) on a 1056-node Dragonfly flow model and reports
jobs replayed per second.  The replay runs twice on fresh networks and the
SHA-256 digest of the canonical per-job rows must match — the determinism
contract the campaign cache and the serial/parallel/distributed execution
paths all lean on.  A JSON artifact goes to
``benchmarks/results/BENCH_cluster_trace.json``::

    python benchmarks/bench_cluster_trace.py            # 200-job trace
    python benchmarks/bench_cluster_trace.py --smoke    # 32-job CI trace
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_cluster_trace.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.cluster import ClusterScheduler, JobTrace
from repro.config import SimulationConfig, TopologyConfig

FULL_JOBS = 200
SMOKE_JOBS = 32
SEED = 7
#: Conservative replay-throughput floor (jobs/s) on the 1056-node model.
JOBS_PER_SEC_FLOOR = 1.0


def _machine(seed: int = SEED) -> SimulationConfig:
    """The 11-group, 1056-node flow-backend Dragonfly the sweeps use."""
    return SimulationConfig(
        topology=TopologyConfig(
            num_groups=11,
            chassis_per_group=6,
            blades_per_chassis=4,
            nodes_per_router=4,
        ),
        seed=seed,
        backend="flow",
    )


def _replay_once(num_jobs: int) -> dict:
    """One full replay on a fresh network; returns timing + rows digest."""
    from repro.model.base import build_network_model

    config = _machine()
    network = build_network_model(config)
    trace = JobTrace.synthetic(SEED, num_jobs, load="heavy", max_nodes=32)
    scheduler = ClusterScheduler(network, trace)
    start = time.perf_counter()
    result = scheduler.replay()
    elapsed = time.perf_counter() - start
    rows = result.job_rows()
    digest = hashlib.sha256(
        json.dumps(rows, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "elapsed_s": round(elapsed, 4),
        "jobs_per_sec": round(num_jobs / elapsed, 3),
        "makespan_cycles": result.makespan,
        "max_wait_cycles": max((r.wait_time or 0) for r in result.records),
        "digest": digest,
    }


def measure_replay(num_jobs: int) -> dict:
    """Replay the trace twice; both runs must produce identical rows."""
    first = _replay_once(num_jobs)
    second = _replay_once(num_jobs)
    return {
        "benchmark": "cluster_trace",
        "backend": "flow",
        "nodes": 1056,
        "jobs": num_jobs,
        "seed": SEED,
        "load": "heavy",
        "jobs_per_sec_floor": JOBS_PER_SEC_FLOOR,
        "deterministic": first["digest"] == second["digest"],
        "digest": first["digest"],
        "series": [first, second],
    }


def check_bars(payload: dict) -> None:
    """Determinism is mandatory; throughput has a conservative floor."""
    assert payload["deterministic"], (
        "cluster replay diverged between two identical runs: "
        f"{payload['series'][0]['digest']} vs {payload['series'][1]['digest']}"
    )
    slowest = min(entry["jobs_per_sec"] for entry in payload["series"])
    assert slowest >= JOBS_PER_SEC_FLOOR, (
        f"cluster replay regressed: {slowest} jobs/s "
        f"(floor: {JOBS_PER_SEC_FLOOR} jobs/s on {payload['nodes']} nodes)"
    )


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_cluster_trace.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [
        f"cluster-trace replay ({payload['jobs']} jobs, {payload['nodes']} "
        f"nodes, {payload['backend']} backend)"
    ]
    for i, entry in enumerate(payload["series"]):
        lines.append(
            f"  run {i}: {entry['jobs_per_sec']:.2f} jobs/s "
            f"({entry['elapsed_s']:.2f} s, makespan "
            f"{entry['makespan_cycles']} cycles)"
        )
    lines.append(
        f"  deterministic: {payload['deterministic']} "
        f"(digest {payload['digest'][:16]})"
    )
    return "\n".join(lines)


def test_cluster_trace_replay(benchmark, results_dir, scale):
    """Replay throughput + determinism digest; BENCH JSON emitted."""
    num_jobs = SMOKE_JOBS if scale.name == "smoke" else FULL_JOBS
    payload = benchmark.pedantic(
        measure_replay, args=(num_jobs,), rounds=1, iterations=1
    )
    _write_json(payload, results_dir)
    emit(results_dir, "cluster_trace", _render(payload))
    check_bars(payload)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = measure_replay(SMOKE_JOBS if smoke else FULL_JOBS)
    path = _write_json(payload, RESULTS_DIR)
    print(_render(payload))
    print(f"wrote {path}")
    check_bars(payload)
