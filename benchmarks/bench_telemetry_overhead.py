"""Telemetry overhead: traced vs untraced flow-backend smoke campaign.

Runs the same serial grid of flow ping-pong cells with telemetry disabled
and enabled, and asserts the enabled run stays within 5% of the untraced
baseline.  Measuring a few percent on a shared machine needs care, so the
protocol is deliberately defensive: CPU time (``time.process_time``)
instead of wall clock, interleaved runs whose mode order flips every pair
(so thermal/frequency drift cannot systematically land on one mode), the
minimum over all runs per mode (the least-disturbed sample), and up to
three measurement attempts — ambient noise can only spuriously *inflate*
the estimate, so retrying a failed attempt is sound while a genuine
regression keeps failing.  The
disabled fast path is also bounded: the instrumentation's only cost when
off is one ``TELEMETRY.enabled`` attribute check per hot-path entry, so
the bench microbenchmarks that guard, counts how many times an enabled run
actually hits it, and asserts the implied disabled-mode overhead is under
1% of the baseline.  A JSON artifact goes to
``benchmarks/results/BENCH_telemetry_overhead.json``::

    python benchmarks/bench_telemetry_overhead.py            # 8-cell grid
    python benchmarks/bench_telemetry_overhead.py --smoke    # CI grid (4)
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_telemetry_overhead.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.campaign import CampaignPlan, RunSpec, ensure_builtin_scenarios, run_cell
from repro.telemetry import TELEMETRY, disable, enable

ENABLED_CEILING_PCT = 5.0
DISABLED_CEILING_PCT = 1.0
REPEATS = 8
ATTEMPTS = 3
GUARD_ITERS = 200_000


def _bench_plan(cells: int) -> CampaignPlan:
    """A serial flow-backend grid: distinct seeds, identical work per cell."""
    ensure_builtin_scenarios()
    specs = tuple(
        RunSpec.make(
            "pingpong-placement",
            {"placement": "inter-groups", "message_kib": 16, "noise": "light"},
            seed=4000 + i,
            backend="flow",
        )
        for i in range(cells)
    )
    return CampaignPlan(name="bench-telemetry", specs=specs)


def _run_grid(plan: CampaignPlan) -> float:
    """Execute every cell serially in-process; returns CPU seconds."""
    start = time.process_time()
    for spec in plan.specs:
        record = run_cell(spec)
        assert record.ok, record.error
    return time.process_time() - start


def _run_mode(plan: CampaignPlan, traced: bool) -> float:
    if traced:
        enable()
    else:
        disable()
    try:
        return _run_grid(plan)
    finally:
        disable()


def _guard_ns() -> float:
    """Cost of the disabled-path guard (`TELEMETRY.enabled` check) per hit.

    Includes the loop overhead, which overestimates the guard — the
    conservative direction for the <1% disabled bound.
    """
    start = time.perf_counter()
    for _ in range(GUARD_ITERS):
        if TELEMETRY.enabled:
            raise AssertionError("telemetry must be off for the guard bench")
    return (time.perf_counter() - start) / GUARD_ITERS * 1e9


def _guard_checks_per_run(plan: CampaignPlan) -> int:
    """How many hot-path entries one cell grid performs.

    Every span recorded by an enabled run corresponds to one
    ``TELEMETRY.enabled`` branch that a disabled run would take instead,
    so the aggregate span counts of a traced run measure the disabled
    run's guard traffic.
    """
    enable()
    try:
        record = run_cell(plan.specs[0])
        assert record.ok and record.telemetry is not None
        per_cell = sum(
            agg["count"] for agg in record.telemetry["spans"].values()
        )
    finally:
        disable()
    return per_cell * len(plan.specs)


def _measure_once(plan: CampaignPlan, repeats: int) -> dict:
    """One attempt: interleaved order-flipping pairs, minimum per mode."""
    disabled_runs, enabled_runs = [], []
    for pair in range(repeats):
        first_traced = pair % 2 == 1
        for traced in (first_traced, not first_traced):
            (enabled_runs if traced else disabled_runs).append(
                _run_mode(plan, traced)
            )
    baseline = min(disabled_runs)
    traced = min(enabled_runs)
    return {
        "disabled_s": [round(v, 4) for v in disabled_runs],
        "enabled_s": [round(v, 4) for v in enabled_runs],
        "baseline_s": round(baseline, 4),
        "traced_s": round(traced, 4),
        "enabled_overhead_pct": round((traced / baseline - 1.0) * 100.0, 3),
    }


def measure_overhead(
    cells: int, repeats: int = REPEATS, attempts: int = ATTEMPTS
) -> dict:
    """Time the grid untraced and traced; returns the JSON payload."""
    plan = _bench_plan(cells)
    _run_grid(plan)  # warm caches/imports outside both measured modes

    trials = []
    for _ in range(attempts):
        trials.append(_measure_once(plan, repeats))
        if trials[-1]["enabled_overhead_pct"] <= ENABLED_CEILING_PCT:
            break
    best = min(trials, key=lambda t: t["enabled_overhead_pct"])

    guard_ns = _guard_ns()
    guard_checks = _guard_checks_per_run(plan)
    disabled_pct = guard_checks * guard_ns / (best["baseline_s"] * 1e9) * 100.0

    payload = {
        "benchmark": "telemetry_overhead",
        "backend": "flow",
        "grid_cells": len(plan),
        "repeats": repeats,
        "attempts": len(trials),
        "trials": trials,
        "enabled_ceiling_pct": ENABLED_CEILING_PCT,
        "guard_ns_per_check": round(guard_ns, 2),
        "guard_checks_per_run": guard_checks,
        "disabled_overhead_pct": round(disabled_pct, 4),
        "disabled_ceiling_pct": DISABLED_CEILING_PCT,
    }
    payload.update(best)  # the attempt the assertion runs against
    return payload


def check_overhead(payload: dict) -> None:
    """Assert both overhead ceilings."""
    assert payload["enabled_overhead_pct"] <= payload["enabled_ceiling_pct"], (
        f"tracing slows the flow campaign by {payload['enabled_overhead_pct']}% "
        f"(ceiling: {payload['enabled_ceiling_pct']}%)"
    )
    assert payload["disabled_overhead_pct"] < payload["disabled_ceiling_pct"], (
        f"disabled telemetry guard costs {payload['disabled_overhead_pct']}% "
        f"(ceiling: {payload['disabled_ceiling_pct']}%)"
    )


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_telemetry_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    return "\n".join(
        [
            f"telemetry overhead ({payload['grid_cells']}-cell "
            f"{payload['backend']} grid, min of {payload['repeats']} "
            f"interleaved runs, {payload['attempts']} attempt(s))",
            f"  untraced: {payload['baseline_s']:.3f} s CPU",
            f"  traced:   {payload['traced_s']:.3f} s CPU "
            f"({payload['enabled_overhead_pct']:+.2f}%, "
            f"ceiling {payload['enabled_ceiling_pct']:.0f}%)",
            f"  disabled guard: {payload['guard_ns_per_check']:.0f} ns/check x "
            f"{payload['guard_checks_per_run']} checks = "
            f"{payload['disabled_overhead_pct']:.4f}% "
            f"(ceiling {payload['disabled_ceiling_pct']:.0f}%)",
        ]
    )


def test_telemetry_overhead(benchmark, results_dir):
    """Traced-vs-untraced grid; BENCH JSON emitted, 5%/1% bars asserted."""
    payload = benchmark.pedantic(measure_overhead, args=(4,), rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "telemetry_overhead", _render(payload))
    check_overhead(payload)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = measure_overhead(cells=4 if smoke else 8)
    path = _write_json(payload, RESULTS_DIR)
    print(_render(payload))
    print(f"wrote {path}")
    check_overhead(payload)
