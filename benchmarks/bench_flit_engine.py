"""Flit-engine benchmark: three-engine parity matrix, speedup over the seed.

Measurements on the ``bench_backends`` scenario (noisy inter-group
16 KiB ping-pong), flit backend only:

1. **Parity** — the scenario runs once under each engine kind
   (``reference`` binary heap, ``calendar`` bucketed queue, ``batch`` fused
   network plane).  All runs must be event-for-event equivalent: identical
   event counts, simulated cycles, per-iteration timelines, NIC counter
   blocks and routing-decision tallies.  The digests are compared
   byte-for-byte and the benchmark *fails* on any mismatch — the speedup
   numbers are meaningless without it.
2. **Engine matrix** — wall-clock, events and events/s per engine;
   ``calendar_speedup_vs_reference`` isolates the scheduler data structure,
   ``batch_speedup_vs_calendar`` isolates the fused/NumPy network plane.
3. **Seed speedup** — the fastest engine (``batch``) vs the *frozen
   pre-optimization tree* (``SEED_REV``), materialized from git history into
   a temp directory via ``git archive`` and run in a subprocess.  This
   captures the aggregate effect of PR 7 + PR 8 (calendar scheduler,
   event-count reduction, callback slimming, fused batch plane).  When the
   seed commit is absent from history (shallow clone, sdist) the section is
   skipped with a notice; any *other* rebuild failure raises loudly instead
   of silently writing ``null``.

JSON artifact: ``benchmarks/results/BENCH_flit_engine.json``::

    python -m pytest benchmarks/bench_flit_engine.py -q -s
    python benchmarks/bench_flit_engine.py            # standalone, same JSON
    python benchmarks/bench_flit_engine.py --smoke    # tiny scenario (CI)
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

if __package__ in (None, ""):  # `python benchmarks/bench_flit_engine.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.experiments.harness import ExperimentScale
from repro.model import build_network_model
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.sim.engine import SIM_ENGINE_ENV_VAR, SIM_ENGINE_KINDS
from repro.workloads.microbench import PingPongBenchmark

#: The pre-optimization tree this PR started from (kept runnable from git
#: history so the speedup baseline is measured, not remembered).
SEED_REV = "1db438ac73c347f8a8b1be20c4db375bc1e5f97c"

#: Self-asserted floor for the end-to-end speedup of the fastest engine
#: (batch) over the seed tree.  The measured value on the development
#: machine is ~1.9x (smoke); the floor leaves room for machine noise.  The
#: original 5x target was not reached in pure CPython: the event count is
#: already within ~5% of the information-theoretic floor (one arrival per
#: hop), and with exact decision parity every remaining cycle is per-packet
#: routing/NIC bookkeeping that must run at its simulated time (queue
#: depths are probed signals), so it cannot be batched across cycles (see
#: README "Flit engine").
MIN_SEED_SPEEDUP = 1.5

#: The calendar engine must never regress against the reference engine
#: (0.9 rather than 1.0 absorbs timer noise on loaded CI machines; the
#: measured ratio is ~1.1-1.2x).
MIN_ENGINE_SPEEDUP = 0.9

#: The batch engine must never regress against the calendar engine.  The
#: measured ratio is ~1.07-1.11x (smoke and paper scale) — far short of the
#: 3x target for the same reason the seed target was missed: with an exact
#: parity contract the fused plane can only remove call/dispatch overhead,
#: not the per-event state updates themselves.  The floor (0.95) asserts
#: non-regression with room for timer noise.
MIN_BATCH_SPEEDUP = 0.95


def run_flit(engine: str, scale: ExperimentScale) -> dict:
    """Run the flit scenario under one engine kind; returns a series entry.

    The run digest covers everything observable from the outside: event
    count, simulated cycles, the per-iteration timeline, both endpoint NIC
    counter blocks and the selector's decision tallies.  Two engines that
    execute the same events in the same order produce identical digests.
    """
    config = scale.simulation_config().with_backend("flit")
    previous = os.environ.get(SIM_ENGINE_ENV_VAR)
    os.environ[SIM_ENGINE_ENV_VAR] = engine
    try:
        network = build_network_model(config)
    finally:
        if previous is None:
            os.environ.pop(SIM_ENGINE_ENV_VAR, None)
        else:
            os.environ[SIM_ENGINE_ENV_VAR] = previous
    allocation = [0, network.num_nodes - 1]
    noise = BackgroundTraffic.for_level(
        network, allocation, NoiseLevel.MODERATE, name="bench-noise"
    )
    if noise is not None:
        noise.start()
    # Same job name under every engine: the name seeds the job's random
    # streams, so it must be identical for runs to be comparable.
    job = MpiJob(network, allocation, name="bench-flit")
    workload = PingPongBenchmark(
        size_bytes=scale.scaled_size(16 * 1024),
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    start = time.perf_counter()
    result = workload.run(job)
    if noise is not None:
        noise.stop()
    elapsed = time.perf_counter() - start
    selector = network.selector
    observable = {
        "events": network.sim.events_executed,
        "simulated_cycles": network.sim.now,
        "iteration_times": list(result.iteration_times),
        "counters": [
            dataclasses.asdict(network.nic(node).counters.snapshot())
            for node in allocation
        ],
        "decisions": [
            selector.decisions,
            selector.minimal_decisions,
            selector.nonminimal_decisions,
        ],
    }
    digest = hashlib.sha256(
        json.dumps(observable, sort_keys=True).encode()
    ).hexdigest()
    return {
        "engine": engine,
        "wall_s": round(elapsed, 4),
        "events": observable["events"],
        "events_per_sec": round(observable["events"] / max(1e-9, elapsed), 1),
        "simulated_cycles": observable["simulated_cycles"],
        "median_iteration_cycles": result.median_time(),
        "digest": digest,
    }


def run_seed(scale: ExperimentScale) -> dict | None:
    """Run the frozen seed tree on the same scenario.

    Returns ``None`` only for the one *legitimate* unavailability: the seed
    commit is absent from history (shallow clone, sdist tarball).  Every
    other failure — ``git archive`` refusing a commit that exists, the
    extracted tree failing to run — indicates a broken benchmark setup and
    raises with the captured stderr, so a regression in this path cannot
    masquerade as "seed unavailable" in the JSON artifact.
    """
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    probe = subprocess.run(
        ["git", "-C", str(repo_root), "cat-file", "-e", f"{SEED_REV}^{{commit}}"],
        capture_output=True,
    )
    if probe.returncode != 0:
        print(
            f"seed commit {SEED_REV[:12]} not in history "
            "(shallow clone?) — skipping the seed comparison",
            file=sys.stderr,
        )
        return None
    with tempfile.TemporaryDirectory(prefix="seed-flit-") as tmp:
        tar = subprocess.run(
            ["git", "-C", str(repo_root), "archive", SEED_REV],
            capture_output=True,
        )
        if tar.returncode != 0:
            raise RuntimeError(
                f"git archive {SEED_REV[:12]} failed although the commit "
                f"exists:\n{tar.stderr.decode(errors='replace')}"
            )
        subprocess.run(
            ["tar", "-x", "-C", tmp], input=tar.stdout, check=True
        )
        script = (
            "import json, sys\n"
            "from benchmarks.bench_backends import run_backend\n"
            "from repro.experiments.harness import ExperimentScale\n"
            "scale = ExperimentScale.from_env('REPRO_BENCH_SCALE')\n"
            "print(json.dumps(run_backend('flit', scale)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(tmp) / "src")
        env["REPRO_BENCH_SCALE"] = scale.name
        env.pop(SIM_ENGINE_ENV_VAR, None)  # the seed predates engine selection
        run = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=tmp,
            env=env,
        )
        if run.returncode != 0:
            raise RuntimeError(
                f"seed tree {SEED_REV[:12]} failed to run the flit "
                f"scenario:\n{run.stderr}"
            )
        entry = json.loads(run.stdout.strip().splitlines()[-1])
        return {
            "rev": SEED_REV,
            "wall_s": entry["wall_s"],
            "events": entry["events"],
            "events_per_sec": entry["events_per_sec"],
            "median_iteration_cycles": entry["median_iteration_cycles"],
        }


def measure_flit_engine(scale: ExperimentScale, with_seed: bool = True) -> dict:
    """Run every engine (and optionally the seed tree); returns the payload."""
    series = [run_flit(engine, scale) for engine in SIM_ENGINE_KINDS]
    by_engine = {entry["engine"]: entry for entry in series}
    reference = by_engine["reference"]
    calendar = by_engine["calendar"]
    batch = by_engine["batch"]
    engines_agree = len({entry["digest"] for entry in series}) == 1
    engine_speedup = reference["wall_s"] / max(1e-9, calendar["wall_s"])
    batch_speedup = calendar["wall_s"] / max(1e-9, batch["wall_s"])
    seed = run_seed(scale) if with_seed else None
    payload = {
        "benchmark": "flit_engine",
        "scale": scale.name,
        "scenario": "noisy inter-group 16 KiB ping-pong (flit backend)",
        "engines_agree": engines_agree,
        "run_digest": calendar["digest"],
        "calendar_speedup_vs_reference": round(engine_speedup, 3),
        "batch_speedup_vs_calendar": round(batch_speedup, 3),
        "series": series,
        "seed": seed,
    }
    # The headline seed comparison uses the fastest engine (batch): it is
    # the engine a throughput-sensitive campaign would select.
    if seed is not None:
        payload["speedup_vs_seed"] = round(
            seed["wall_s"] / max(1e-9, batch["wall_s"]), 3
        )
        payload["event_reduction_vs_seed"] = round(
            seed["events"] / max(1, batch["events"]), 3
        )
    else:
        payload["speedup_vs_seed"] = None
        payload["event_reduction_vs_seed"] = None
    return payload


def check_bars(payload: dict) -> None:
    """Self-asserted acceptance bars (raises AssertionError on regression).

    Parity is asserted unconditionally — it is exact and noise-free.  The
    wall-clock floors are asserted at smoke scale only (the CI scale, where
    the runs are short enough to be retried cheaply); a single paper-scale
    sample on a loaded machine can swing by 30%, so there they are reported
    but not enforced.
    """
    assert payload["engines_agree"], (
        "flit engines diverged: "
        + ", ".join(f"{e['engine']}={e['digest'][:12]}" for e in payload["series"])
    )
    if payload["scale"] != "smoke":
        return
    assert payload["calendar_speedup_vs_reference"] >= MIN_ENGINE_SPEEDUP, (
        f"calendar engine regressed vs reference: "
        f"{payload['calendar_speedup_vs_reference']:.2f}x < {MIN_ENGINE_SPEEDUP}x"
    )
    assert payload["batch_speedup_vs_calendar"] >= MIN_BATCH_SPEEDUP, (
        f"batch engine regressed vs calendar: "
        f"{payload['batch_speedup_vs_calendar']:.2f}x < {MIN_BATCH_SPEEDUP}x"
    )
    if payload["speedup_vs_seed"] is not None:
        assert payload["speedup_vs_seed"] >= MIN_SEED_SPEEDUP, (
            f"speedup vs seed tree below the floor: "
            f"{payload['speedup_vs_seed']:.2f}x < {MIN_SEED_SPEEDUP}x"
        )


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_flit_engine.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [f"flit engine — {payload['scenario']} ({payload['scale']} scale)"]
    for entry in payload["series"]:
        lines.append(
            f"  {entry['engine']:9s}: {entry['wall_s']:8.3f} s wall, "
            f"{entry['events']:8d} events ({entry['events_per_sec']:>12.1f} ev/s)"
        )
    agree = "identical" if payload["engines_agree"] else "DIVERGED"
    lines.append(f"  parity: run digests {agree} ({payload['run_digest'][:12]})")
    lines.append(
        f"  calendar speedup vs reference: "
        f"{payload['calendar_speedup_vs_reference']:.2f}x"
    )
    lines.append(
        f"  batch speedup vs calendar: "
        f"{payload['batch_speedup_vs_calendar']:.2f}x"
    )
    seed = payload["seed"]
    if seed is not None:
        lines.append(
            f"  seed tree ({seed['rev'][:7]}): {seed['wall_s']:.3f} s wall, "
            f"{seed['events']} events"
        )
        lines.append(
            f"  speedup vs seed: {payload['speedup_vs_seed']:.2f}x wall, "
            f"{payload['event_reduction_vs_seed']:.2f}x fewer events"
        )
    else:
        lines.append("  seed tree unavailable (shallow clone?) — section skipped")
    return "\n".join(lines)


def test_flit_engine(benchmark, scale, results_dir):
    """Engine parity + speedup trajectory; JSON emitted per PR."""
    payload = benchmark.pedantic(
        measure_flit_engine, args=(scale,), rounds=1, iterations=1
    )
    _write_json(payload, results_dir)
    emit(results_dir, "flit_engine", _render(payload))
    check_bars(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="force the tiny smoke scale regardless of REPRO_BENCH_SCALE",
    )
    parser.add_argument(
        "--no-seed",
        action="store_true",
        help="skip the frozen-seed subprocess comparison",
    )
    args = parser.parse_args()
    bench_scale = (
        ExperimentScale.smoke() if args.smoke else ExperimentScale.from_env()
    )
    result = measure_flit_engine(bench_scale, with_seed=not args.no_seed)
    path = _write_json(result, RESULTS_DIR)
    print(_render(result))
    print(f"wrote {path}")
    check_bars(result)
