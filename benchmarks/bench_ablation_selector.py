"""Ablation — sensitivity of Algorithm 1 to its tunables.

Two knobs are swept:

* the cumulative-size threshold below which messages default to High Bias
  (the paper uses 4 KiB);
* the λ/σ scaling factors used to estimate the not-currently-measured
  operating point.

The metric is the median time of an inter-group ping-pong driven through the
:class:`~repro.core.runtime.AppAwareRuntime`, normalized to the best static
mode for the same allocation — i.e. "how much of the achievable gain does
Algorithm 1 capture under each parameterization".
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.allocation.policies import allocate_inter_group_pair
from repro.analysis.reporting import Table
from repro.analysis.stats import median
from repro.core.policy import StaticRoutingPolicy
from repro.core.selector import SelectorParams
from repro.core.runtime import AppAwareRuntime
from repro.network.network import Network
from repro.routing.modes import RoutingMode


def _pingpong_median(scale, runtime_factory, repetitions=10, size=32 * 1024):
    """Median round-trip time of a runtime-driven ping-pong."""
    config = scale.simulation_config()
    network = Network(config)
    pair = allocate_inter_group_pair(config.topology)
    runtime = runtime_factory(network, pair[0])
    times = []
    size = scale.scaled_size(size)
    for _ in range(repetitions):
        start = network.sim.now
        done = []
        runtime.send(pair[1], size, on_acked=lambda m: done.append(m))
        while not done and network.sim.step():
            pass
        times.append(network.sim.now - start)
    return median(times)


def run_selector_ablation(scale):
    """Median ping-pong time for static modes and selector variants."""
    results = {}
    for label, mode in (("static-Adaptive", RoutingMode.ADAPTIVE_0),
                        ("static-HighBias", RoutingMode.ADAPTIVE_3)):
        results[label] = _pingpong_median(
            scale,
            lambda net, node, mode=mode: AppAwareRuntime(
                net, node, policy=StaticRoutingPolicy(mode)
            ),
        )
    for label, params in (
        ("appaware-default", SelectorParams()),
        ("appaware-threshold-0", SelectorParams(threshold_bytes=0)),
        ("appaware-threshold-64KiB", SelectorParams(threshold_bytes=64 * 1024)),
        ("appaware-lambda-1.0", SelectorParams(lambda_ad=1.0, sigma_ad=1.0)),
        ("appaware-aggressive", SelectorParams(lambda_ad=0.5, sigma_ad=3.0)),
    ):
        results[label] = _pingpong_median(
            scale,
            lambda net, node, params=params: AppAwareRuntime(
                net, node, selector_params=params
            ),
        )
    return results


def test_ablation_selector_sensitivity(benchmark, scale, results_dir):
    """Algorithm 1 stays within a reasonable factor of the best static mode."""
    results = benchmark.pedantic(run_selector_ablation, args=(scale,), rounds=1, iterations=1)
    best_static = min(results["static-Adaptive"], results["static-HighBias"])
    table = Table(
        title="Ablation — Algorithm 1 sensitivity (inter-group ping-pong)",
        columns=["configuration", "median time (cycles)", "vs. best static"],
    )
    for label, value in results.items():
        table.add_row(label, value, value / best_static)
    emit(results_dir, "ablation_selector", table.render())
    assert results["appaware-default"] <= best_static * 1.5
