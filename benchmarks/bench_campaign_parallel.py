"""Campaign executor throughput at 1, 2 and 4 workers.

Runs a fixed small scenario grid through the parallel executor (no store,
so every run actually executes) and reports runs/sec per worker count —
the perf trajectory of the fan-out machinery itself.  Besides the
pytest-benchmark timing, a JSON artifact with the throughput series is
written to ``benchmarks/results/campaign_parallel.json``::

    python -m pytest benchmarks/bench_campaign_parallel.py -q -s
    python benchmarks/bench_campaign_parallel.py   # standalone, same JSON
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.conftest import RESULTS_DIR, emit
from repro.campaign import ensure_builtin_scenarios, execute_plan, plan_campaign

WORKER_COUNTS = (1, 2, 4)


def _bench_plan():
    """A small but non-trivial grid: 8 ping-pong cells (4 placements x 2 sizes)."""
    ensure_builtin_scenarios()
    return plan_campaign(
        ["pingpong-placement"],
        overrides={"message_kib": (4, 16), "noise": ("light",)},
        name="bench-parallel",
    )


def measure_throughput(worker_counts=WORKER_COUNTS) -> dict:
    """Execute the grid at each worker count; returns the JSON payload."""
    plan = _bench_plan()
    series = []
    for workers in worker_counts:
        start = time.perf_counter()
        result = execute_plan(plan, store=None, workers=workers)
        elapsed = time.perf_counter() - start
        assert result.failed == 0, result.summary()
        series.append(
            {
                "workers": workers,
                "runs": len(plan),
                "elapsed_s": round(elapsed, 4),
                "runs_per_sec": round(len(plan) / elapsed, 3),
            }
        )
    base = series[0]["runs_per_sec"]
    for entry in series:
        entry["speedup_vs_serial"] = round(entry["runs_per_sec"] / base, 3)
    return {
        "benchmark": "campaign_parallel",
        "grid_runs": len(plan),
        # Speedup is bounded by the machine: on a 1-core box the parallel
        # executor can only match serial throughput.
        "cpu_count": os.cpu_count(),
        "series": series,
    }


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "campaign_parallel.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [f"campaign executor throughput ({payload['grid_runs']}-run grid)"]
    for entry in payload["series"]:
        lines.append(
            f"  {entry['workers']} worker(s): {entry['runs_per_sec']:.2f} runs/s "
            f"({entry['elapsed_s']:.2f} s, {entry['speedup_vs_serial']:.2f}x vs serial)"
        )
    return "\n".join(lines)


def test_campaign_parallel_throughput(benchmark, results_dir):
    """Throughput at 1/2/4 workers; JSON emitted for the perf trajectory."""
    payload = benchmark.pedantic(measure_throughput, rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "campaign_parallel", _render(payload))
    by_workers = {entry["workers"]: entry for entry in payload["series"]}
    assert set(by_workers) == set(WORKER_COUNTS)
    # Parallel fan-out should not be slower than serial by more than noise.
    assert by_workers[4]["runs_per_sec"] >= 0.5 * by_workers[1]["runs_per_sec"]


if __name__ == "__main__":
    result = measure_throughput()
    path = _write_json(result, RESULTS_DIR)
    print(_render(result))
    print(f"wrote {path}")
