"""Distributed executor throughput: 1 vs 2 workers on a CPU-bound grid.

Runs a uniform grid of flit ping-pong cells (identical work per cell,
distinct seeds so nothing dedupes or caches) through the distributed
coordinator at 1 and 2 workers on the ``local`` (stdio subprocess)
transport, and reports cells/sec.  Because every cell is pure Python
simulation, two workers on two cores should approach 2x — the asserted
floor is >= 1.7x, the distribution overhead budget of the shard/lease
protocol.  A JSON artifact goes to
``benchmarks/results/BENCH_dist_executor.json``::

    python benchmarks/bench_dist_executor.py            # full grid (8 cells)
    python benchmarks/bench_dist_executor.py --smoke    # CI grid (6 cells)

On a single-core machine the speedup bar is skipped (reported as
``assert_skipped`` in the JSON) — the executor cannot beat physics.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_dist_executor.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.campaign import (
    CampaignPlan,
    DistOptions,
    RunSpec,
    ensure_builtin_scenarios,
    run_distributed,
)

WORKER_COUNTS = (1, 2)
SPEEDUP_FLOOR = 1.7


def _bench_plan(cells: int) -> CampaignPlan:
    """A uniform CPU-bound grid: one ~1s flit cell per distinct seed."""
    ensure_builtin_scenarios()
    specs = tuple(
        RunSpec.make(
            "pingpong-placement",
            {"placement": "inter-groups", "message_kib": 16, "noise": "light"},
            seed=3000 + i,
        )
        for i in range(cells)
    )
    return CampaignPlan(name="bench-dist", specs=specs)


def measure_throughput(cells: int, worker_counts=WORKER_COUNTS) -> dict:
    """Execute the grid at each worker count; returns the JSON payload."""
    plan = _bench_plan(cells)
    series = []
    for workers in worker_counts:
        start = time.perf_counter()
        result = run_distributed(
            plan,
            store=None,
            options=DistOptions(workers=workers, transport="local"),
        )
        elapsed = time.perf_counter() - start
        assert result.failed == 0, result.summary()
        assert result.executed == len(plan), result.summary()
        series.append(
            {
                "workers": workers,
                "cells": len(plan),
                "elapsed_s": round(elapsed, 4),
                "cells_per_sec": round(len(plan) / elapsed, 3),
            }
        )
    base = series[0]["cells_per_sec"]
    for entry in series:
        entry["speedup_vs_1_worker"] = round(entry["cells_per_sec"] / base, 3)
    multi = max(series, key=lambda entry: entry["workers"])
    can_assert = (os.cpu_count() or 1) >= 2 and multi["workers"] >= 2
    return {
        "benchmark": "dist_executor",
        "transport": "local",
        "grid_cells": len(plan),
        "cpu_count": os.cpu_count(),
        "speedup_floor": SPEEDUP_FLOOR,
        "assert_skipped": not can_assert,
        "series": series,
    }


def check_speedup(payload: dict) -> None:
    """Assert the 2-worker bar unless the machine cannot express it."""
    if payload["assert_skipped"]:
        return
    multi = max(payload["series"], key=lambda entry: entry["workers"])
    speedup = multi["speedup_vs_1_worker"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"distributed executor regressed: {multi['workers']} workers reach "
        f"only {speedup}x over 1 worker (floor: {SPEEDUP_FLOOR}x)"
    )


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_dist_executor.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [
        f"distributed executor throughput ({payload['grid_cells']}-cell grid, "
        f"{payload['transport']} transport)"
    ]
    for entry in payload["series"]:
        lines.append(
            f"  {entry['workers']} worker(s): {entry['cells_per_sec']:.2f} cells/s "
            f"({entry['elapsed_s']:.2f} s, {entry['speedup_vs_1_worker']:.2f}x "
            "vs 1 worker)"
        )
    if payload["assert_skipped"]:
        lines.append("  (single-core machine: speedup bar not asserted)")
    return "\n".join(lines)


def test_dist_executor_throughput(benchmark, results_dir):
    """Throughput at 1/2 workers; BENCH JSON emitted, >=1.7x bar asserted."""
    payload = benchmark.pedantic(measure_throughput, args=(6,), rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "dist_executor", _render(payload))
    check_speedup(payload)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    payload = measure_throughput(cells=6 if smoke else 8)
    path = _write_json(payload, RESULTS_DIR)
    print(_render(payload))
    print(f"wrote {path}")
    check_speedup(payload)
