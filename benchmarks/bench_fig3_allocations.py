"""Figure 3 — ping-pong across allocations (median/IQR/outliers vs. placement)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure3


def test_figure3_allocations(benchmark, scale, results_dir):
    """Regenerate the allocation sweep of Figure 3."""
    result = benchmark.pedantic(figure3.run, args=(scale,), rounds=1, iterations=1)
    report = figure3.report(result)
    emit(results_dir, "figure3", report)
    medians = result.medians()
    # The paper's headline observation: inter-group placement is slower and
    # noisier than same-blade placement.
    assert medians["inter-groups"] > medians["inter-nodes"]
    assert result.qcds()["inter-groups"] >= result.qcds()["inter-nodes"]
