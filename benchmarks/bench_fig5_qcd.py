"""Figure 5 — QCD of execution time vs. QCD of packet latency (inter-group)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.stats import median
from repro.experiments import figure5


def test_figure5_qcd(benchmark, scale, results_dir):
    """Regenerate Figure 5."""
    result = benchmark.pedantic(figure5.run, args=(scale,), rounds=1, iterations=1)
    report = figure5.report(result)
    emit(results_dir, "figure5", report)
    qcds = result.qcds()
    # Execution-time variability generally overestimates the network-side
    # variability (the latency QCD) — check the sweep-wide medians.
    time_qcds = [pair[0] for pair in qcds.values()]
    latency_qcds = [pair[1] for pair in qcds.values()]
    assert median(time_qcds) >= 0.0
    assert len(latency_qcds) == len(time_qcds)
