"""Figure 7 — routing impact on a large-message ping-pong (4 panels)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import figure7


def test_figure7_routing_pingpong(benchmark, scale, results_dir):
    """Regenerate the four series of Figure 7."""
    result = benchmark.pedantic(figure7.run, args=(scale,), rounds=1, iterations=1)
    report = figure7.report(result)
    emit(results_dir, "figure7", report)
    # Shape check: intra-group the zero-bias Adaptive mode should not lose by
    # much (the paper finds it wins thanks to fewer stalls); inter-group the
    # High-Bias latency should not exceed the Adaptive latency by much
    # (the paper finds it is lower).
    intra_adaptive = result.median_time("intra-group", "Adaptive")
    intra_bias = result.median_time("intra-group", "HighBias")
    assert intra_adaptive <= intra_bias * 1.15
    from repro.analysis.stats import median

    lat_adaptive = median(result.series[("inter-groups", "Adaptive")].latencies)
    lat_bias = median(result.series[("inter-groups", "HighBias")].latencies)
    assert lat_bias <= lat_adaptive * 1.15
