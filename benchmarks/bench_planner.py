"""Planner throughput: blind vs. cost-routed campaign planning.

Planning used to be pure grid expansion; with ``backend="auto"`` every cell
is profiled, costed under each backend and routed under a budget.  This
benchmark measures what that costs on a synthetic three-axis grid:

* ``blind`` — fixed-backend expansion (the pre-cost-model planner path);
* ``auto`` — cost estimation + fidelity routing for every cell;
* ``auto+budget`` — the same plus the greedy budget-demotion pass.

A JSON artifact with the series is written to
``benchmarks/results/BENCH_planner.json``::

    python -m pytest benchmarks/bench_planner.py -q -s
    python benchmarks/bench_planner.py            # standalone, same JSON
    python benchmarks/bench_planner.py --smoke    # smaller grid (CI)

The bar: cost-routed planning must stay above ``MIN_CELLS_PER_SEC`` — the
point of the cost layer is to make *running* cheaper, so *planning* must
stay effectively free next to any real campaign execution.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_planner.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.campaign import BackendRouter, plan_campaign
from repro.campaign.registry import Scenario, ScenarioError, register

#: Acceptance bar: routed planning throughput, in cells per second.
MIN_CELLS_PER_SEC = 500.0


def _bench_runner(scale, **params):  # pragma: no cover - never executed
    return {"metrics": {}}


def _bench_cost(scale, *, a, b, c):
    """Heterogeneous volumes so budget demotion has a real greedy order."""
    return {
        "messages": 500.0 * (a + 1) * (b + 1),
        "message_bytes": 8192.0 * (c + 1),
        "concurrent_flows": 8.0,
    }


def ensure_scenario(axis_cells: int) -> str:
    """Register the synthetic benchmark grid (idempotent per size)."""
    name = f"_bench-planner-{axis_cells}"
    try:
        register(
            Scenario(
                name=name,
                description="synthetic planner-benchmark grid (never executed)",
                axes={
                    "a": tuple(range(axis_cells)),
                    "b": tuple(range(axis_cells)),
                    "c": tuple(range(4)),
                },
                runner=_bench_runner,
                cost_hints=_bench_cost,
            )
        )
    except ScenarioError:
        pass  # already registered in this process
    return name


def _timed_plan(name: str, **kwargs):
    start = time.perf_counter()
    plan = plan_campaign([name], **kwargs)
    return plan, time.perf_counter() - start


def measure_planner(axis_cells: int) -> dict:
    """Plan the grid blind, auto, and auto-under-budget; return the payload."""
    name = ensure_scenario(axis_cells)
    blind_plan, blind_s = _timed_plan(name)
    cells = len(blind_plan)

    auto_plan, auto_s = _timed_plan(name, backend="auto")
    flit_total = sum(cell.estimates["flit"].work for cell in auto_plan.costs)
    flow_total = sum(cell.estimates["flow"].work for cell in auto_plan.costs)
    budget = (flit_total + flow_total) / 2.0  # forces a real demotion pass
    budget_plan, budget_s = _timed_plan(
        name, backend="auto", router=BackendRouter(budget=budget)
    )
    demoted = sum(1 for cell in budget_plan.costs if cell.reason == "budget")

    series = [
        {"mode": "blind", "wall_s": round(blind_s, 4),
         "cells_per_sec": round(cells / max(1e-9, blind_s), 1)},
        {"mode": "auto", "wall_s": round(auto_s, 4),
         "cells_per_sec": round(cells / max(1e-9, auto_s), 1)},
        {"mode": "auto+budget", "wall_s": round(budget_s, 4),
         "cells_per_sec": round(cells / max(1e-9, budget_s), 1),
         "demoted_cells": demoted},
    ]
    return {
        "benchmark": "planner",
        "cells": cells,
        "flit_total_work": round(flit_total, 1),
        "flow_total_work": round(flow_total, 1),
        "budget": round(budget, 1),
        "auto_overhead_vs_blind": round(auto_s / max(1e-9, blind_s), 2),
        "routed_cells_per_sec": series[2]["cells_per_sec"],
        "series": series,
    }


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_planner.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [f"planner throughput — {payload['cells']} cell grid"]
    for entry in payload["series"]:
        extra = (
            f", {entry['demoted_cells']} demoted" if "demoted_cells" in entry else ""
        )
        lines.append(
            f"  {entry['mode']:12s}: {entry['wall_s']:8.4f} s "
            f"({entry['cells_per_sec']:>10.1f} cells/s{extra})"
        )
    lines.append(
        f"  auto overhead vs blind: {payload['auto_overhead_vs_blind']:.1f}x"
    )
    return "\n".join(lines)


def _assert_bars(payload: dict) -> None:
    routed = payload["routed_cells_per_sec"]
    assert routed >= MIN_CELLS_PER_SEC, (
        f"cost-routed planning too slow: {routed} cells/s "
        f"(bar: {MIN_CELLS_PER_SEC})"
    )


def test_planner_throughput(benchmark, results_dir):
    """Blind vs routed planning; JSON emitted for the perf trajectory."""
    payload = benchmark.pedantic(
        measure_planner, args=(16,), rounds=1, iterations=1
    )
    _write_json(payload, results_dir)
    emit(results_dir, "planner", _render(payload))
    _assert_bars(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="smaller grid for CI"
    )
    args = parser.parse_args()
    result = measure_planner(8 if args.smoke else 16)
    path = _write_json(result, RESULTS_DIR)
    print(_render(result))
    print(f"wrote {path}")
    _assert_bars(result)
