"""Flit vs. flow backend: wall-clock and events/sec on the same scenario.

The benchmark scenario is a noisy inter-group ping-pong (the Figure-3/7
shape): a two-node job exchanging 16 KiB messages while background traffic
crosses the same groups.  Both backends run the identical scenario — same
:class:`~repro.config.SimulationConfig`, allocation, noise level and
iteration count — so the comparison isolates the substrate.

Besides the pytest-benchmark timing, a JSON artifact with the series is
written to ``benchmarks/results/BENCH_backends.json``::

    python -m pytest benchmarks/bench_backends.py -q -s
    python benchmarks/bench_backends.py            # standalone, same JSON
    python benchmarks/bench_backends.py --smoke    # tiny scenario (CI)

This file seeds the backend-performance trajectory: the CI job uploads the
JSON per PR so regressions in either backend are visible.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_backends.py`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import RESULTS_DIR, emit
from repro.experiments.harness import ExperimentScale
from repro.model import build_network_model
from repro.mpi.job import MpiJob
from repro.noise.background import BackgroundTraffic, NoiseLevel
from repro.workloads.microbench import PingPongBenchmark

BACKENDS = ("flit", "flow")

#: The acceptance bar: the flow backend must beat flit by at least this
#: factor on the benchmark scenario (it typically wins by 50-100x).
MIN_FLOW_SPEEDUP = 10.0


def run_backend(backend: str, scale: ExperimentScale) -> dict:
    """Run the benchmark scenario on one backend; returns the series entry.

    Construction (fabric wiring, noise placement, job setup) is timed
    separately from the measured region so ``events_per_sec`` and the
    speedup reflect substrate throughput, not object construction.
    """
    config = scale.simulation_config().with_backend(backend)
    build_start = time.perf_counter()
    network = build_network_model(config)
    allocation = [0, network.num_nodes - 1]
    noise = BackgroundTraffic.for_level(
        network, allocation, NoiseLevel.MODERATE, name="bench-noise"
    )
    if noise is not None:
        noise.start()
    job = MpiJob(network, allocation, name=f"bench-{backend}")
    workload = PingPongBenchmark(
        size_bytes=scale.scaled_size(16 * 1024),
        iterations=scale.pingpong_repetitions,
        warmup=1,
    )
    start = time.perf_counter()
    build_s = start - build_start
    result = workload.run(job)
    if noise is not None:
        noise.stop()
    elapsed = time.perf_counter() - start
    counters = network.nic(allocation[0]).counters
    return {
        "backend": backend,
        "build_s": round(build_s, 4),
        "wall_s": round(elapsed, 4),
        "events": network.sim.events_executed,
        "events_per_sec": round(network.sim.events_executed / elapsed, 1),
        "simulated_cycles": network.sim.now,
        "median_iteration_cycles": result.median_time(),
        "stall_ratio": round(counters.stall_ratio, 4),
        "avg_packet_latency": round(counters.avg_packet_latency, 1),
    }


def measure_backends(scale: ExperimentScale) -> dict:
    """Run the scenario on every backend; returns the JSON payload."""
    series = [run_backend(backend, scale) for backend in BACKENDS]
    by_name = {entry["backend"]: entry for entry in series}
    speedup = by_name["flit"]["wall_s"] / max(1e-9, by_name["flow"]["wall_s"])
    return {
        "benchmark": "backends",
        "scale": scale.name,
        "scenario": "noisy inter-group 16 KiB ping-pong",
        "flow_speedup_vs_flit": round(speedup, 2),
        "series": series,
    }


def _write_json(payload: dict, results_dir: pathlib.Path) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    path = results_dir / "BENCH_backends.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _render(payload: dict) -> str:
    lines = [f"backend comparison — {payload['scenario']} ({payload['scale']} scale)"]
    for entry in payload["series"]:
        lines.append(
            f"  {entry['backend']:4s}: {entry['wall_s']:8.3f} s wall, "
            f"{entry['events']:8d} events ({entry['events_per_sec']:>12.1f} ev/s), "
            f"median {entry['median_iteration_cycles']:.0f} cycles"
        )
    lines.append(f"  flow speedup vs flit: {payload['flow_speedup_vs_flit']:.1f}x")
    return "\n".join(lines)


def test_backend_throughput(benchmark, scale, results_dir):
    """Same scenario on flit vs flow; JSON emitted for the perf trajectory."""
    payload = benchmark.pedantic(measure_backends, args=(scale,), rounds=1, iterations=1)
    _write_json(payload, results_dir)
    emit(results_dir, "backends", _render(payload))
    assert {entry["backend"] for entry in payload["series"]} == set(BACKENDS)
    assert payload["flow_speedup_vs_flit"] >= MIN_FLOW_SPEEDUP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="force the tiny smoke scale regardless of REPRO_BENCH_SCALE",
    )
    args = parser.parse_args()
    bench_scale = (
        ExperimentScale.smoke() if args.smoke else ExperimentScale.from_env()
    )
    result = measure_backends(bench_scale)
    path = _write_json(result, RESULTS_DIR)
    print(_render(result))
    print(f"wrote {path}")
