"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series, so running ``pytest benchmarks/ --benchmark-only``
produces both timing information (via pytest-benchmark) and the reproduced
results themselves (via stdout, use ``-s`` to see them live; they are also
written to ``benchmarks/results/``).

The experiment scale is selected with the ``REPRO_BENCH_SCALE`` environment
variable: ``paper`` (default; reduced-scale stand-in for the paper's runs) or
``smoke`` (minutes → seconds, for CI).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.harness import ExperimentScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by all benchmarks."""
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where each benchmark writes its reproduced table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a reproduced table and persist it under ``benchmarks/results``."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
