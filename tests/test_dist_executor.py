"""Distributed campaign execution: protocol, shards, coordinator, resume.

The end-to-end tests spawn real worker subprocesses (stdio and TCP
transports), so scenarios they execute must be importable by a fresh
interpreter: cheap test scenarios live in a generated module on
``sys.path`` handed to workers via ``--preload``, and the crash tests
SIGKILL actual worker processes mid-shard.
"""

from __future__ import annotations

import io
import json
import os
import signal
import sys
import threading

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignPlan,
    Coordinator,
    DistOptions,
    RunSpec,
    ShardPlanner,
    ensure_builtin_scenarios,
    execute_plan,
    plan_campaign,
    run_cell,
    run_distributed,
)
from repro.campaign.dist.protocol import (
    Channel,
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
)
from repro.campaign.registry import Scenario, ScenarioError, register
from repro.campaign.router import CellCost
from repro.experiments.cli import _parse_bind, campaign_main
from repro.model.cost import CostEstimate
from repro.sim.rng import RandomStreams

# -- the worker-visible scenario module ---------------------------------------------

#: Source of the scenario module preloaded into worker subprocesses.  The
#: runner derives its payload from the run seed (determinism assertions)
#: and sleeps so shards overlap with the crash window.
_SLEEPY_MODULE = "dist_sleepy_scenarios"
_SLEEPY_SOURCE = '''
"""Test scenarios for the distributed executor (worker-importable)."""
import time

from repro.campaign.registry import Scenario, ScenarioError, register
from repro.sim.rng import RandomStreams


def _sleepy_runner(scale, *, i=0, sleep_s=0.0):
    if sleep_s:
        time.sleep(float(sleep_s))
    streams = RandomStreams(scale.seed)
    values = [streams.randint("sleepy", 0, 10_000) for _ in range(4)]
    return {
        "metrics": {"total": float(sum(values)), "i": float(i)},
        "data": {"values": values},
        "report": f"sleepy i={i} total={sum(values)}",
    }


try:
    register(
        Scenario(
            name="_dist-sleepy",
            description="deterministic sleeper for distributed-executor tests",
            axes={"i": tuple(range(6)), "sleep_s": (0.0,)},
            runner=_sleepy_runner,
        )
    )
except ScenarioError:
    pass  # already registered in this process
'''


def _sleepy_runner(scale, *, i=0, sleep_s=0.0):
    """In-process twin of the preloaded module's runner (same semantics)."""
    import time

    if sleep_s:
        time.sleep(float(sleep_s))
    streams = RandomStreams(scale.seed)
    values = [streams.randint("sleepy", 0, 10_000) for _ in range(4)]
    return {
        "metrics": {"total": float(sum(values)), "i": float(i)},
        "data": {"values": values},
        "report": f"sleepy i={i} total={sum(values)}",
    }


@pytest.fixture(scope="module", autouse=True)
def _registered():
    ensure_builtin_scenarios()
    try:
        register(
            Scenario(
                name="_dist-sleepy",
                description="deterministic sleeper for distributed-executor tests",
                axes={"i": tuple(range(6)), "sleep_s": (0.0,)},
                runner=_sleepy_runner,
            )
        )
    except ScenarioError:
        pass  # already registered by a previous module run in this process
    yield


@pytest.fixture(scope="module")
def sleepy_env(tmp_path_factory):
    """Writes the worker-importable scenario module; returns worker env.

    The PYTHONPATH carries the repro package root too: worker subprocesses
    must import repro even when this test process got it from pytest's
    ``pythonpath`` config rather than an installed package or the
    environment.
    """
    import pathlib

    import repro

    root = tmp_path_factory.mktemp("dist-scenarios")
    (root / f"{_SLEEPY_MODULE}.py").write_text(_SLEEPY_SOURCE, encoding="utf-8")
    repro_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    python_path = os.pathsep.join(
        [str(root), repro_root]
        + [p for p in (os.environ.get("PYTHONPATH"),) if p]
    )
    yield {"PYTHONPATH": python_path}


def _sleepy_plan(cells=6, sleep_s=0.0, seed=2019):
    specs = tuple(
        RunSpec.make("_dist-sleepy", {"i": i, "sleep_s": sleep_s}, seed=seed)
        for i in range(cells)
    )
    return CampaignPlan(name="dist-sleepy", specs=specs, seed=seed)


def _options(workers=2, transport="local", **kwargs):
    kwargs.setdefault("heartbeat_s", 0.2)
    kwargs.setdefault("lease_timeout_s", 2.0)
    kwargs.setdefault("preload", _SLEEPY_MODULE)
    return DistOptions(workers=workers, transport=transport, **kwargs)


# -- protocol -----------------------------------------------------------------------

class _Loopback:
    """Two channels joined by OS pipes (no sockets needed)."""

    def __init__(self):
        r1, w1 = os.pipe()  # left -> right
        r2, w2 = os.pipe()  # right -> left
        self.left = Channel(os.fdopen(r2, "rb"), os.fdopen(w1, "wb"), name="left")
        self.right = Channel(os.fdopen(r1, "rb"), os.fdopen(w2, "wb"), name="right")

    def close(self):
        self.left.close()
        self.right.close()


class TestProtocol:
    def test_roundtrip_messages(self):
        loop = _Loopback()
        try:
            sent = {"type": "lease", "shard": 3, "specs": [{"scenario": "x"}]}
            loop.left.send(sent)
            loop.left.send({"type": "heartbeat", "shard": 3})
            assert loop.right.recv() == sent
            assert loop.right.recv()["type"] == "heartbeat"
        finally:
            loop.close()

    def test_clean_eof_returns_none(self):
        loop = _Loopback()
        loop.left.close()
        assert loop.right.recv() is None
        loop.close()

    def test_torn_frame_raises(self):
        frame = encode_frame({"type": "result"})
        channel = Channel(io.BytesIO(frame[: len(frame) - 2]), io.BytesIO())
        with pytest.raises(ProtocolError, match="mid-frame"):
            channel.recv()

    def test_oversized_length_rejected(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        channel = Channel(io.BytesIO(bogus), io.BytesIO())
        with pytest.raises(ProtocolError, match="exceeds"):
            channel.recv()

    def test_message_without_type_rejected(self):
        channel = Channel(io.BytesIO(encode_frame({"shard": 1})), io.BytesIO())
        with pytest.raises(ProtocolError, match="without a type"):
            channel.recv()

    def test_spec_wire_roundtrip(self):
        spec = RunSpec.make(
            "_dist-sleepy", {"i": 2, "sleep_s": 0.5}, scale="paper", seed=7
        )
        routed = RunSpec.make("_dist-sleepy", {"i": 1}, backend="auto").resolve("flow")
        for original in (spec, routed):
            wired = json.loads(json.dumps(original.to_wire()))
            rebuilt = RunSpec.from_wire(wired)
            assert rebuilt == original
            assert rebuilt.spec_hash() == original.spec_hash()

    def test_wire_rejects_non_scalar_params(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            RunSpec.from_wire(
                {"scenario": "x", "params": {"a": [1]}, "scale": "smoke",
                 "seed": 1, "backend": "flit"}
            )


# -- result batching ----------------------------------------------------------------

class TestResultBatching:
    """--batch-results N buffers worker results into result_batch frames."""

    def _serve(self, channel, batch):
        from repro.campaign.dist.worker import serve_channel

        # A 30 s heartbeat keeps liveness pings out of the frame sequence
        # the test asserts on.
        serve_channel(channel, name="batcher", heartbeat_s=30.0, batch_results=batch)

    def test_batch_frame_wire_roundtrip(self):
        """5 cells at N=2 travel as 2+2 batches plus one classic result."""
        loop = _Loopback()
        specs = [
            RunSpec.make("_dist-sleepy", {"i": i, "sleep_s": 0.0}) for i in range(5)
        ]
        server = threading.Thread(
            target=self._serve, args=(loop.right, 2), daemon=True
        )
        server.start()
        frames = []
        try:
            assert loop.left.recv()["type"] == "hello"
            loop.left.send(
                {
                    "type": "lease",
                    "shard": 7,
                    "specs": [spec.to_wire() for spec in specs],
                }
            )
            while True:
                frame = loop.left.recv()
                frames.append(frame)
                if frame["type"] == "shard_done":
                    break
            loop.left.send({"type": "shutdown"})
        finally:
            server.join(timeout=10)
            loop.close()
        assert [f["type"] for f in frames] == [
            "result_batch", "result_batch", "result", "shard_done"
        ]
        bodies = [
            entry
            for frame in frames[:2]
            for entry in frame["results"]
        ] + [frames[2]]
        assert all(frame["shard"] == 7 for frame in frames[:3])
        # Every cell came back exactly once, intact and in lease order.
        rebuilt = [RunSpec.from_wire(body["spec"]) for body in bodies]
        assert rebuilt == specs
        assert all(body["error"] == "" and "payload" in body for body in bodies)

    def test_single_cell_shard_uses_classic_frame(self):
        """A flush of one result degrades to the pre-batching frame type."""
        loop = _Loopback()
        spec = RunSpec.make("_dist-sleepy", {"i": 0, "sleep_s": 0.0})
        server = threading.Thread(
            target=self._serve, args=(loop.right, 8), daemon=True
        )
        server.start()
        try:
            assert loop.left.recv()["type"] == "hello"
            loop.left.send(
                {"type": "lease", "shard": 1, "specs": [spec.to_wire()]}
            )
            result = loop.left.recv()
            assert result["type"] == "result"
            assert RunSpec.from_wire(result["spec"]) == spec
            assert loop.left.recv()["type"] == "shard_done"
            loop.left.send({"type": "shutdown"})
        finally:
            server.join(timeout=10)
            loop.close()

    def test_batched_store_matches_streaming(self, tmp_path, sleepy_env):
        plan = _sleepy_plan(cells=6)
        batched_store = ArtifactStore(tmp_path / "batched")
        result = run_distributed(
            plan,
            store=batched_store,
            options=_options(workers=2, extra_env=sleepy_env, batch_results=3),
        )
        assert result.failed == 0 and result.executed == 6
        streamed_store = ArtifactStore(tmp_path / "streamed")
        run_distributed(
            plan, store=streamed_store, options=_options(workers=2, extra_env=sleepy_env)
        )
        for spec in plan:
            assert (
                batched_store.result_path(spec).read_bytes()
                == streamed_store.result_path(spec).read_bytes()
            ), f"artifact for {spec.label()} differs batched vs streamed"

    def test_coordinator_passes_flag_to_spawned_workers(self):
        coordinator = Coordinator(
            _sleepy_plan(1), options=_options(workers=1, batch_results=4)
        )
        command = coordinator._worker_command()
        assert command[command.index("--batch-results") + 1] == "4"
        plain = Coordinator(_sleepy_plan(1), options=_options(workers=1))
        assert "--batch-results" not in plain._worker_command()

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_results"):
            DistOptions(batch_results=0)
        from repro.campaign.dist.worker import serve_channel

        loop = _Loopback()
        try:
            with pytest.raises(ValueError, match="batch_results"):
                serve_channel(loop.right, batch_results=0)
        finally:
            loop.close()


# -- simulation-engine propagation --------------------------------------------------

class TestSimEnginePropagation:
    """DistOptions.sim_engine reaches spawned workers via the environment.

    Mirrors the REPRO_TELEMETRY inheritance: the coordinator asserts the
    engine into each worker's environment, and the worker's Network builds
    pick it up per cell.  Byte-equality of the store under a non-default
    engine is asserted end to end below — but note that equality alone
    cannot catch a propagation bug (the engines are event-for-event
    equivalent, so the bytes match either way), which is why the
    environment handoff itself is pinned first.
    """

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="sim engine"):
            DistOptions(sim_engine="warp-drive")

    def test_worker_env_carries_engine(self):
        from repro.sim.engine import SIM_ENGINE_ENV_VAR

        coordinator = Coordinator(
            _sleepy_plan(1), options=_options(workers=1, sim_engine="batch")
        )
        assert coordinator._worker_env()[SIM_ENGINE_ENV_VAR] == "batch"
        plain = Coordinator(_sleepy_plan(1), options=_options(workers=1))
        env = plain._worker_env()
        # No explicit engine: the worker inherits the coordinator's choice.
        assert env.get(SIM_ENGINE_ENV_VAR) == os.environ.get(SIM_ENGINE_ENV_VAR)

    def test_cli_sets_engine_environment(self, tmp_path, monkeypatch, capsys):
        from repro.sim.engine import SIM_ENGINE_ENV_VAR

        # monkeypatch snapshots the (absent) variable and restores it at
        # teardown even though the CLI itself mutates os.environ.
        monkeypatch.delenv(SIM_ENGINE_ENV_VAR, raising=False)
        code = campaign_main(
            [
                "run", "pingpong-placement",
                "--dry-run",
                "--sim-engine", "batch",
                "--store", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert os.environ.get(SIM_ENGINE_ENV_VAR) == "batch"

    def test_store_bytes_identical_under_batch_engine(self, tmp_path):
        """A real flit cell run distributed under batch matches the default.

        Uses an actual network scenario (the sleepy scenarios never build a
        Network, so they would exercise nothing): one pingpong-placement
        cell, executed twice through real spawned workers.
        """
        spec = RunSpec.make(
            "pingpong-placement",
            {"placement": "inter-nodes", "message_kib": 4, "noise": "none"},
        )
        plan = CampaignPlan(name="engine-bytes", specs=(spec,))
        stores = {}
        for name, engine in (("default", None), ("batch", "batch")):
            stores[name] = ArtifactStore(tmp_path / name)
            result = run_distributed(
                plan,
                store=stores[name],
                options=_options(workers=1, preload=None, sim_engine=engine),
            )
            assert result.failed == 0 and result.executed == 1
        assert (
            stores["default"].result_path(spec).read_bytes()
            == stores["batch"].result_path(spec).read_bytes()
        )


# -- shard planning -----------------------------------------------------------------

def _costed_plan(works):
    specs = tuple(
        RunSpec.make("_dist-sleepy", {"i": i, "sleep_s": 0.0}) for i in range(len(works))
    )
    costs = tuple(
        CellCost(
            spec=spec,
            chosen=spec.backend,
            reason="explicit",
            estimates={spec.backend: CostEstimate(backend=spec.backend, work=work)},
        )
        for spec, work in zip(specs, works)
    )
    return CampaignPlan(name="costed", specs=specs, costs=costs)


class TestShardPlanner:
    def test_uniform_grid_splits_evenly(self):
        plan = _sleepy_plan(cells=6)
        shards = ShardPlanner(shards_per_worker=1).partition(plan, workers=3)
        assert len(shards) == 3
        assert sorted(len(shard) for shard in shards) == [2, 2, 2]
        flattened = {spec for shard in shards for spec in shard.specs}
        assert flattened == set(plan.specs)

    def test_costed_cells_balance_by_work(self):
        plan = _costed_plan([100.0, 1.0, 1.0, 1.0, 99.0, 1.0])
        shards = ShardPlanner(shards_per_worker=1).partition(plan, workers=2)
        assert len(shards) == 2
        loads = sorted(shard.est_work for shard in shards)
        # LPT puts the two heavy cells on different shards.
        assert loads[1] <= 104.0

    def test_partition_is_deterministic_and_order_preserving(self):
        plan = _sleepy_plan(cells=6)
        once = ShardPlanner().partition(plan, workers=2)
        twice = ShardPlanner().partition(plan, workers=2)
        assert once == twice
        order = {spec: i for i, spec in enumerate(plan.specs)}
        for shard in once:
            indices = [order[spec] for spec in shard.specs]
            assert indices == sorted(indices)

    def test_more_shards_than_workers_for_releasing(self):
        plan = _sleepy_plan(cells=6)
        shards = ShardPlanner(shards_per_worker=4).partition(plan, workers=2)
        assert len(shards) == 6  # capped by the cell count

    def test_max_shard_cells_caps_huge_uniform_shards(self):
        assert ShardPlanner(max_shard_cells=10).shard_count(1000, workers=1) == 100

    def test_empty_subset_yields_no_shards(self):
        assert ShardPlanner().partition(_sleepy_plan(2), 2, specs=[]) == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ShardPlanner(shards_per_worker=0)
        with pytest.raises(ValueError):
            ShardPlanner().shard_count(4, workers=0)


# -- options ------------------------------------------------------------------------

class TestDistOptions:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            DistOptions(transport="carrier-pigeon")

    def test_local_transport_needs_a_worker(self):
        with pytest.raises(ValueError, match="workers"):
            DistOptions(workers=0, transport="local")

    def test_socket_transport_allows_zero_workers(self):
        assert DistOptions(workers=0, transport="socket").workers == 0

    def test_lease_timeout_must_exceed_heartbeats(self):
        with pytest.raises(ValueError, match="heartbeat"):
            DistOptions(lease_timeout_s=1.0, heartbeat_s=0.6)

    def test_auto_specs_rejected_by_coordinator(self):
        spec = RunSpec.make("_dist-sleepy", {"i": 0}, backend="auto")
        with pytest.raises(ValueError, match="unrouted"):
            Coordinator(CampaignPlan(name="auto", specs=(spec,)))


# -- end-to-end: local (stdio) transport --------------------------------------------

class TestLocalTransport:
    def test_distributed_matches_single_process_store(self, tmp_path, sleepy_env):
        plan = _sleepy_plan(cells=6)
        dist_store = ArtifactStore(tmp_path / "dist")
        result = run_distributed(
            plan,
            store=dist_store,
            options=_options(workers=2, extra_env=sleepy_env),
        )
        assert result.failed == 0 and result.executed == 6
        assert [r.spec for r in result.records] == list(plan.specs)
        serial_store = ArtifactStore(tmp_path / "serial")
        serial = execute_plan(plan, store=serial_store, workers=1)
        assert serial.failed == 0
        for spec in plan:
            assert (
                dist_store.result_path(spec).read_bytes()
                == serial_store.result_path(spec).read_bytes()
            ), f"artifact for {spec.label()} differs distributed vs serial"
        # The journal was folded into an atomic index at shutdown.
        assert not dist_store.journal_path.exists()
        assert ArtifactStore(tmp_path / "dist").summary() == {"_dist-sleepy": 6}

    def test_resumes_from_partial_store(self, tmp_path, sleepy_env):
        plan = _sleepy_plan(cells=6)
        store = ArtifactStore(tmp_path / "store")
        partial = CampaignPlan(name="partial", specs=plan.specs[:3], seed=plan.seed)
        execute_plan(partial, store=store, workers=1)
        result = run_distributed(
            plan, store=store, options=_options(workers=2, extra_env=sleepy_env)
        )
        assert result.cached == 3 and result.executed == 3 and result.failed == 0

    def test_failing_cells_become_error_records(self, tmp_path, sleepy_env):
        # Unknown axis value: the runner raises inside the worker.
        bad = CampaignPlan(
            name="bad",
            specs=(
                RunSpec.make("pingpong-placement",
                             {"placement": "nope", "message_kib": 4, "noise": "none"}),
                RunSpec.make("_dist-sleepy", {"i": 0, "sleep_s": 0.0}),
            ),
        )
        result = run_distributed(
            bad, options=_options(workers=1, extra_env=sleepy_env)
        )
        assert result.failed == 1 and result.executed == 1
        assert "placement" in result.records[0].error


# -- end-to-end: socket transport + crash-resume ------------------------------------

class TestSocketTransport:
    def test_two_workers_complete_a_grid(self, tmp_path, sleepy_env):
        plan = _sleepy_plan(cells=6)
        store = ArtifactStore(tmp_path / "sock")
        result = run_distributed(
            plan,
            store=store,
            options=_options(workers=2, transport="socket", extra_env=sleepy_env),
        )
        assert result.failed == 0 and result.executed == 6
        assert len(ArtifactStore(tmp_path / "sock")) == 6

    def test_external_worker_via_cli_connect(self, tmp_path, sleepy_env):
        """A coordinator with workers=0 is served by a CLI-started worker."""
        import subprocess

        plan = _sleepy_plan(cells=4)
        store = ArtifactStore(tmp_path / "ext")
        coordinator = Coordinator(
            plan,
            store=store,
            options=_options(workers=0, transport="socket", extra_env=sleepy_env),
        )
        host, port = coordinator.address
        env = dict(os.environ)
        env.update(sleepy_env)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "campaign", "worker",
             "--connect", f"{host}:{port}", "--preload", _SLEEPY_MODULE, "--quiet"],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        # Listen-only coordinators wait for external workers indefinitely by
        # design, so run() goes in a thread and a wedge fails instead of
        # hanging the suite.
        outcome = {}
        runner = threading.Thread(target=lambda: outcome.update(result=coordinator.run()))
        runner.start()
        try:
            runner.join(timeout=90)
            assert not runner.is_alive(), (
                f"coordinator never finished (worker rc: {worker.poll()})"
            )
        finally:
            try:
                worker.wait(timeout=30)  # exits on the coordinator's shutdown
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=10)
        result = outcome["result"]
        assert result.failed == 0 and result.executed == 4
        assert worker.returncode == 0

    def test_dead_worker_fleet_abandons_instead_of_wedging(self):
        """Workers that die at startup must fail the cells, not hang run().

        A bogus --preload makes every spawned worker exit immediately; once
        the respawn budget is spent the coordinator abandons the pending
        shards (listen-only --workers 0 mode is the only one that waits)."""
        plan = _sleepy_plan(cells=2)
        result = run_distributed(
            plan,
            options=_options(
                workers=1,
                transport="socket",
                preload="no_such_module_anywhere",
                max_leases=2,
            ),
        )
        assert result.failed == 2
        assert all("no workers left" in r.error for r in result.records)

    def test_sigkilled_worker_is_re_leased_and_store_matches(
        self, tmp_path, sleepy_env
    ):
        """Crash-resume acceptance: kill a worker mid-shard; the coordinator
        re-leases its cells and the final store is hash-for-hash identical
        to a single-process run."""
        plan = _sleepy_plan(cells=6, sleep_s=0.3)
        store = ArtifactStore(tmp_path / "crash")
        first_result = threading.Event()

        def progress(done, total, record):
            first_result.set()

        coordinator = Coordinator(
            plan,
            store=store,
            options=_options(
                workers=2,
                transport="socket",
                extra_env=sleepy_env,
                shards_per_worker=2,
            ),
            progress=progress,
        )
        outcome = {}
        runner = threading.Thread(target=lambda: outcome.update(result=coordinator.run()))
        runner.start()
        try:
            # Let both workers lease work, then SIGKILL one mid-shard.
            assert first_result.wait(timeout=60), "no result ever arrived"
            pids = coordinator.worker_pids
            assert pids, "no spawned workers to kill"
            os.kill(pids[0], signal.SIGKILL)
        finally:
            runner.join(timeout=120)
        assert not runner.is_alive(), "coordinator wedged after worker death"
        result = outcome["result"]
        assert result.failed == 0, [r.error for r in result.records if r.error]
        assert result.executed == 6

        serial_store = ArtifactStore(tmp_path / "serial")
        serial = execute_plan(plan, store=serial_store, workers=1)
        assert serial.failed == 0
        for spec in plan:
            assert (
                store.result_path(spec).read_bytes()
                == serial_store.result_path(spec).read_bytes()
            ), f"artifact for {spec.label()} differs after crash-resume"
        assert set(store.index()) == set(serial_store.index())


# -- coordinator unit behaviour -----------------------------------------------------

class TestLeaseBookkeeping:
    def test_abandoned_shards_become_failed_records(self):
        """A shard re-leased past max_leases fails its remaining cells."""
        from repro.campaign.dist.coordinator import _Lease
        from repro.campaign.dist.shard import Shard

        plan = _sleepy_plan(cells=2)
        coordinator = Coordinator(plan, options=_options(max_leases=2))
        coordinator._outstanding = {spec.spec_hash() for spec in plan.specs}
        shard = Shard(shard_id=0, specs=plan.specs)
        lease = _Lease(
            shard=shard,
            remaining={spec.spec_hash() for spec in plan.specs},
            attempts=2,  # already at the limit
            last_seen=0.0,
        )
        coordinator._requeue(lease)
        assert not coordinator._pending
        assert not coordinator._outstanding
        records = [r for r in coordinator._records if r is not None]
        assert len(records) == 2
        assert all("abandoned" in record.error for record in records)

    def test_duplicate_results_are_ignored(self, tmp_path):
        plan = _sleepy_plan(cells=1)
        store = ArtifactStore(tmp_path / "dup")
        coordinator = Coordinator(plan, store=store, options=_options())
        spec = plan.specs[0]
        coordinator._outstanding = {spec.spec_hash()}
        record = run_cell(spec)
        message = {
            "type": "result",
            "shard": 0,
            "spec": spec.to_wire(),
            "payload": record.payload,
            "report": record.report,
            "elapsed_s": record.elapsed_s,
            "error": "",
        }

        class _FakeHandle:
            lease = None

        coordinator._merge_result(_FakeHandle(), message)
        before = store.result_path(spec).read_bytes()
        coordinator._merge_result(_FakeHandle(), message)  # duplicate: no-op
        assert store.result_path(spec).read_bytes() == before
        assert coordinator._records[0] is not None


# -- store: journal + streaming export ----------------------------------------------

class TestStoreJournal:
    def test_deferred_saves_replay_after_crash(self, tmp_path):
        """Results journaled but never flushed survive a coordinator crash."""
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.make("_dist-sleepy", {"i": 0, "sleep_s": 0.0})
        store.save(spec, {"metrics": {"total": 1.0}}, elapsed=0.5, defer_index=True)
        assert store.journal_path.exists()
        # Simulate the crash: a brand-new store object, no flush ever ran.
        reopened = ArtifactStore(tmp_path / "store")
        assert reopened.has(spec)
        assert reopened.load(spec) == {"metrics": {"total": 1.0}}

    def test_flush_folds_journal_into_index(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.make("_dist-sleepy", {"i": 1, "sleep_s": 0.0})
        store.save(spec, {"metrics": {"total": 2.0}}, defer_index=True)
        index_text = store.index_path.read_text() if store.index_path.exists() else ""
        assert spec.spec_hash() not in index_text
        store.flush_journal()
        assert not store.journal_path.exists()
        assert spec.spec_hash() in store.index_path.read_text()

    def test_flush_folds_other_writers_entries(self, tmp_path):
        root = tmp_path / "shared"
        writer_a = ArtifactStore(root)
        writer_b = ArtifactStore(root)
        spec_a = RunSpec.make("_dist-sleepy", {"i": 2, "sleep_s": 0.0})
        spec_b = RunSpec.make("_dist-sleepy", {"i": 3, "sleep_s": 0.0})
        writer_a.save(spec_a, {"metrics": {"total": 1.0}}, defer_index=True)
        writer_b.save(spec_b, {"metrics": {"total": 2.0}}, defer_index=True)
        writer_a.flush_journal()
        reopened = ArtifactStore(root)
        assert reopened.has(spec_a) and reopened.has(spec_b)

    def test_torn_journal_line_is_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = RunSpec.make("_dist-sleepy", {"i": 4, "sleep_s": 0.0})
        store.save(spec, {"metrics": {"total": 3.0}}, defer_index=True)
        with store.journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"hash": "dead", "entry": {"scena')  # torn write
        reopened = ArtifactStore(tmp_path / "store")
        assert reopened.has(spec)
        assert "dead" not in reopened.index()

    def test_flush_without_journal_touches_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-written")
        store.flush_journal()
        assert not store.root.exists()


class TestStreamingExport:
    def test_iter_status_rows_is_lazy_and_matches_list(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for i in range(4):
            store.save(
                RunSpec.make("_dist-sleepy", {"i": i, "sleep_s": 0.0}),
                {"metrics": {"total": float(i)}},
            )
        iterator = store.iter_status_rows()
        assert iter(iterator) is iterator  # a true generator, not a list
        assert list(iterator) == store.status_rows()

    def test_csv_streams_every_row_with_union_header(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save(
            RunSpec.make("_dist-sleepy", {"i": 0, "sleep_s": 0.0}),
            {"metrics": {"alpha": 1.0}},
        )
        store.save(
            RunSpec.make("_dist-sleepy", {"i": 1, "sleep_s": 0.0}),
            {"metrics": {"beta": 2.0}},
        )
        path = store.export_csv(tmp_path / "out.csv")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        header = lines[0]
        assert header.startswith("hash,scenario,scale,seed,params")
        assert "metric.alpha" in header and "metric.beta" in header


# -- CLI ----------------------------------------------------------------------------

class TestDistCli:
    def test_parse_bind(self):
        assert _parse_bind("127.0.0.1:0") == ("127.0.0.1", 0)
        assert _parse_bind("0.0.0.0:7077") == ("0.0.0.0", 7077)
        for bad in ("nohost", ":123", "host:port", "host:99999"):
            with pytest.raises(ValueError):
                _parse_bind(bad)

    def test_worker_requires_concrete_port(self):
        with pytest.raises(SystemExit):
            campaign_main(["worker", "--connect", "127.0.0.1:0"])

    def test_worker_rejects_unimportable_preload(self):
        with pytest.raises(SystemExit):
            campaign_main(
                ["worker", "--connect", "127.0.0.1:1", "--preload", "no_such_mod"]
            )

    def test_zero_workers_only_with_socket(self, tmp_path):
        with pytest.raises(SystemExit):
            campaign_main(
                ["run", "_dist-sleepy", "--workers", "0", "--transport", "local",
                 "--store", str(tmp_path / "s")]
            )

    def test_run_with_local_transport_end_to_end(self, tmp_path, capsys):
        """CLI acceptance: a builtin cell over --transport local, then cached."""
        store = str(tmp_path / "store")
        argv = [
            "run", "pingpong-placement",
            "--set", "placement=inter-nodes", "--set", "message_kib=4",
            "--set", "noise=none",
            "--workers", "2", "--transport", "local", "--store", store,
        ]
        assert campaign_main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().out
        assert campaign_main(argv) == 0
        assert "0 executed, 1 cached" in capsys.readouterr().out
