"""Tests for the microbenchmark and application-proxy workloads."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.policy import default_policy
from repro.mpi.job import MpiJob
from repro.network.network import Network
from repro.workloads.apps import ApplicationProxy, Phase, application_catalog, make_application
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.microbench import (
    AllreduceBenchmark,
    AlltoallBenchmark,
    BarrierBenchmark,
    BroadcastBenchmark,
    PingPongBenchmark,
)
from repro.workloads.stencils import (
    Halo3DBenchmark,
    Sweep3DBenchmark,
    balanced_2d_grid,
    balanced_3d_grid,
)


def make_job(num_ranks=4, seed=1):
    config = SimulationConfig.small(seed=seed).with_host(os_noise_probability=0.0)
    network = Network(config)
    nodes = list(range(0, num_ranks * 3, 3))
    return MpiJob(network, nodes, policy_factory=default_policy), network


class TestWorkloadBase:
    def test_validation(self):
        with pytest.raises(ValueError):
            PingPongBenchmark(iterations=0)
        with pytest.raises(ValueError):
            PingPongBenchmark(warmup=-1)

    def test_result_statistics(self):
        result = WorkloadResult("x", {}, iteration_times=[10, 30, 20])
        assert result.median_time() == 20
        assert result.mean_time() == pytest.approx(20.0)

    def test_result_requires_samples(self):
        with pytest.raises(ValueError):
            WorkloadResult("x", {}).median_time()

    def test_describe(self):
        workload = PingPongBenchmark(size_bytes=1024, iterations=2)
        assert "pingpong" in workload.describe()

    def test_base_iteration_not_implemented(self):
        job, _ = make_job(2)
        with pytest.raises(NotImplementedError):
            Workload(iterations=1).run(job)


class TestPingPong:
    def test_records_one_time_per_iteration(self):
        job, _ = make_job(2)
        workload = PingPongBenchmark(size_bytes=2048, iterations=4, warmup=1)
        result = workload.run(job)
        assert len(result.iteration_times) == 4
        assert all(t > 0 for t in result.iteration_times)
        assert result.policy == "Default"

    def test_extra_ranks_only_synchronize(self):
        job, network = make_job(4)
        workload = PingPongBenchmark(size_bytes=1024, iterations=2)
        workload.run(job)
        # Ranks 2 and 3 never send data messages beyond barrier tokens:
        # their NICs only carried small sync messages.
        barrier_bytes = 64
        for rank in (2, 3):
            node = job.node_of(rank)
            nic = network.nic(node)
            assert nic.counters.request_flits < 100 * barrier_bytes

    def test_same_rank_pair_rejected(self):
        with pytest.raises(ValueError):
            PingPongBenchmark(rank_a=1, rank_b=1)

    def test_multiple_pingpongs_per_iteration(self):
        job, _ = make_job(2)
        single = PingPongBenchmark(size_bytes=2048, iterations=2, pingpongs_per_iteration=1)
        result_single = single.run(job)
        job2, _ = make_job(2)
        multi = PingPongBenchmark(size_bytes=2048, iterations=2, pingpongs_per_iteration=4)
        result_multi = multi.run(job2)
        assert result_multi.median_time() > result_single.median_time()

    def test_on_iteration_hook(self):
        job, _ = make_job(2)
        workload = PingPongBenchmark(size_bytes=1024, iterations=3)
        seen = []
        workload.on_iteration = lambda index, elapsed: seen.append(index)
        workload.run(job)
        assert seen == [0, 1, 2]


class TestCollectiveBenchmarks:
    def test_allreduce_size_from_elements(self):
        workload = AllreduceBenchmark(elements=1000)
        assert workload.size_bytes == 4000

    def test_allreduce_runs(self):
        job, _ = make_job(4)
        result = AllreduceBenchmark(elements=256, iterations=2).run(job)
        assert len(result.iteration_times) == 2

    def test_allreduce_validation(self):
        with pytest.raises(ValueError):
            AllreduceBenchmark(elements=0)

    def test_alltoall_runs(self):
        job, _ = make_job(4)
        result = AlltoallBenchmark(size_bytes=512, iterations=2).run(job)
        assert len(result.iteration_times) == 2

    def test_barrier_runs(self):
        job, _ = make_job(4)
        result = BarrierBenchmark(barriers_per_iteration=4, iterations=2).run(job)
        assert len(result.iteration_times) == 2

    def test_barrier_validation(self):
        with pytest.raises(ValueError):
            BarrierBenchmark(barriers_per_iteration=0)

    def test_broadcast_runs(self):
        job, _ = make_job(4)
        result = BroadcastBenchmark(size_bytes=4096, iterations=2).run(job)
        assert len(result.iteration_times) == 2

    def test_larger_messages_take_longer(self):
        job_small, _ = make_job(4, seed=3)
        small = BroadcastBenchmark(size_bytes=1024, iterations=2).run(job_small)
        job_large, _ = make_job(4, seed=3)
        large = BroadcastBenchmark(size_bytes=64 * 1024, iterations=2).run(job_large)
        assert large.median_time() > small.median_time()


class TestGridHelpers:
    def test_balanced_3d_grid_exact(self):
        assert balanced_3d_grid(8) == (2, 2, 2)
        assert sorted(balanced_3d_grid(12), reverse=True) == [3, 2, 2]

    def test_balanced_3d_grid_covers_ranks(self):
        for ranks in range(1, 65):
            px, py, pz = balanced_3d_grid(ranks)
            assert px * py * pz == ranks

    def test_balanced_2d_grid(self):
        assert balanced_2d_grid(16) == (4, 4)
        px, py = balanced_2d_grid(12)
        assert px * py == 12

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            balanced_3d_grid(0)
        with pytest.raises(ValueError):
            balanced_2d_grid(0)


class TestStencils:
    def test_halo3d_neighbour_symmetry(self):
        job, _ = make_job(8)
        workload = Halo3DBenchmark(domain=32, iterations=1)
        ctx = job.contexts[0]
        neighbours = workload.neighbours(ctx)
        assert neighbours
        for neighbour, size in neighbours:
            back = workload.neighbours(job.contexts[neighbour])
            assert any(peer == 0 and s == size for peer, s in back)

    def test_halo3d_runs(self):
        job, _ = make_job(8)
        result = Halo3DBenchmark(domain=32, iterations=2).run(job)
        assert len(result.iteration_times) == 2

    def test_halo3d_validation(self):
        with pytest.raises(ValueError):
            Halo3DBenchmark(domain=0)

    def test_sweep3d_runs(self):
        job, _ = make_job(4)
        result = Sweep3DBenchmark(domain=32, iterations=2, kba_blocks=2).run(job)
        assert len(result.iteration_times) == 2

    def test_sweep3d_validation(self):
        with pytest.raises(ValueError):
            Sweep3DBenchmark(domain=0)
        with pytest.raises(ValueError):
            Sweep3DBenchmark(kba_blocks=0)

    def test_sweep3d_wavefront_takes_longer_with_more_blocks(self):
        job_few, _ = make_job(4, seed=9)
        few = Sweep3DBenchmark(domain=64, iterations=2, kba_blocks=1).run(job_few)
        job_many, _ = make_job(4, seed=9)
        many = Sweep3DBenchmark(domain=64, iterations=2, kba_blocks=8).run(job_many)
        # More pipeline stages → more (smaller) messages → more per-message
        # overheads and synchronization steps.
        assert many.median_time() != few.median_time()


class TestApplications:
    def test_catalog_contents(self):
        catalog = application_catalog()
        expected = {
            "cp2k", "wrf-b", "wrf-t", "lammps", "qe", "nekbone", "vpfft",
            "amber", "milc", "hpcg", "bfs", "sssp", "fft",
        }
        assert expected <= set(catalog)
        for phases in catalog.values():
            assert phases

    def test_catalog_scaling(self):
        small = application_catalog(scale=0.1)
        full = application_catalog(scale=1.0)
        assert small["fft"][0].size_bytes < full["fft"][0].size_bytes

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("bogus")
        with pytest.raises(ValueError):
            Phase("allreduce", size_bytes=-1)

    def test_make_application_unknown(self):
        with pytest.raises(KeyError):
            make_application("not-an-app")

    def test_proxy_requires_phases(self):
        with pytest.raises(ValueError):
            ApplicationProxy("empty", [])

    @pytest.mark.parametrize("app", ["fft", "nekbone", "milc", "bfs"])
    def test_application_proxies_run(self, app):
        job, _ = make_job(4)
        workload = make_application(app, iterations=1, scale=0.05)
        result = workload.run(job)
        assert len(result.iteration_times) == 1
        assert result.workload == app

    def test_pairwise_phase(self):
        job, _ = make_job(4)
        workload = ApplicationProxy(
            "pairwise-test", [Phase("pairwise", size_bytes=1024)], iterations=1
        )
        result = workload.run(job)
        assert result.iteration_times

    def test_compute_only_application(self):
        job, _ = make_job(2)
        workload = ApplicationProxy(
            "compute-only", [Phase("compute", compute_cycles=5_000)], iterations=2
        )
        result = workload.run(job)
        assert all(t >= 5_000 for t in result.iteration_times)

    def test_communication_heavy_slower_than_compute_light(self):
        """fft (alltoall heavy) spends more time communicating than amber."""
        job_fft, _ = make_job(4, seed=11)
        fft = make_application("fft", iterations=1, scale=0.2).run(job_fft)
        job_amber, _ = make_job(4, seed=11)
        amber = make_application("amber", iterations=1, scale=0.2).run(job_amber)
        # Amber is compute-dominated: its iteration is longer in absolute terms
        # but its traffic is far smaller.
        assert fft.iteration_times and amber.iteration_times
