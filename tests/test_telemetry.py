"""Telemetry subsystem: tracer semantics, persistence, wire and export paths.

Covers the ISSUE-6 checklist: span nesting and exception safety, the
off-by-default zero-allocation fast path, wire round-trips of worker
telemetry frames, Chrome-trace JSON schema validation, and store
round-trips that tolerate pre-telemetry index entries.
"""

from __future__ import annotations

import dataclasses
import io
import json
import logging
import os
import subprocess
import sys
import time

import pytest

from repro.campaign import ArtifactStore, ensure_builtin_scenarios, plan_campaign, run_cell
from repro.campaign.dist.protocol import Channel
from repro.campaign.router import CostHistory
from repro.telemetry import (
    NULL_SPAN,
    TELEMETRY,
    Metrics,
    Tracer,
    capture,
    disable,
    enable,
    env_enabled,
    get_logger,
    log_event,
    reset_logging,
    snapshot_of,
    timed,
)
from repro.telemetry.core import MAX_EVENTS
from repro.telemetry.export import (
    chrome_trace,
    trace_categories,
    validate_trace,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    disable()
    yield
    disable()


def _spec(store_seed: int = 0):
    ensure_builtin_scenarios()
    plan = plan_campaign(
        ["pingpong-placement"],
        scale="smoke",
        overrides={"message_kib": [4], "noise": ["none"], "placement": ["inter-nodes"]},
        backend="flow",
    )
    return plan.specs[0]


# -- tracer semantics ---------------------------------------------------------------


class TestTracer:
    def test_span_nesting_records_both_levels(self):
        enable()
        with TELEMETRY.tracer.span("outer", cat="test"):
            with TELEMETRY.tracer.span("inner", cat="test", depth=2):
                pass
        names = [ev["name"] for ev in TELEMETRY.tracer.events]
        assert names == ["inner", "outer"]  # inner closes (and records) first
        outer = TELEMETRY.tracer.events[1]
        inner = TELEMETRY.tracer.events[0]
        assert inner["args"]["depth"] == 2
        # The inner span lies within the outer span's interval.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_span_exception_safety(self):
        enable()
        with pytest.raises(ValueError):
            with TELEMETRY.tracer.span("boom", cat="test"):
                raise ValueError("expected")
        (event,) = TELEMETRY.tracer.events
        assert event["name"] == "boom"
        assert event["args"]["error"] == "ValueError"
        assert TELEMETRY.tracer.aggregates["boom"][0] == 1

    def test_span_add_merges_args(self):
        enable()
        with TELEMETRY.tracer.span("s", cat="test", a=1) as sp:
            sp.add(b=2)
        (event,) = TELEMETRY.tracer.events
        assert event["args"] == {"a": 1, "b": 2}

    def test_event_cap_keeps_aggregates_counting(self):
        tracer = Tracer(max_events=4)
        for _ in range(10):
            with tracer.span("tick", cat="test"):
                pass
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert tracer.aggregates["tick"][0] == 10

    def test_default_event_cap(self):
        assert Tracer().max_events == MAX_EVENTS

    def test_metrics_counters_gauges_histograms(self):
        metrics = Metrics()
        metrics.incr("n")
        metrics.incr("n", 4)
        metrics.gauge("depth", 7.0)
        for value in (1.0, 3.0, 2.0):
            metrics.observe("lat", value)
        assert metrics.counters["n"] == 5
        assert metrics.gauges["depth"] == 7.0
        hist = metrics.histograms["lat"]
        assert hist["count"] == 3 and hist["min"] == 1.0 and hist["max"] == 3.0

    def test_snapshot_shape(self):
        enable()
        with timed("simulate"):
            time.sleep(0.001)
        with timed("report"):
            pass
        snapshot = snapshot_of(TELEMETRY.tracer, TELEMETRY.metrics)
        assert set(snapshot["phases"]) == {"simulate", "report"}
        assert snapshot["sim_s"] == snapshot["phases"]["simulate"]
        assert snapshot["spans"]["simulate"]["count"] == 1
        assert snapshot["dropped"] == 0
        json.dumps(snapshot)  # must be JSON-safe as-is


class TestDisabledFastPath:
    def test_span_returns_shared_null_singleton(self):
        assert TELEMETRY.enabled is False
        first = TELEMETRY.tracer.span("hot", cat="test", x=1)
        second = TELEMETRY.tracer.span("hot2", cat="test")
        assert first is NULL_SPAN and second is NULL_SPAN  # zero allocation

    def test_null_span_is_inert(self):
        with TELEMETRY.tracer.span("hot") as sp:
            sp.add(anything=1)
        with pytest.raises(RuntimeError):
            with TELEMETRY.tracer.span("hot"):
                raise RuntimeError("propagates")

    def test_metrics_noop(self):
        TELEMETRY.metrics.incr("n")
        TELEMETRY.metrics.gauge("g", 1.0)
        TELEMETRY.metrics.observe("h", 1.0)  # nothing raises, nothing stored

    def test_capture_snapshot_is_none(self):
        with capture() as cap:
            pass
        assert cap.snapshot() is None

    def test_timed_still_measures(self):
        with timed("simulate") as t:
            time.sleep(0.002)
        assert t.elapsed >= 0.002

    def test_singleton_identity_is_stable_across_toggles(self):
        before = TELEMETRY
        enable()
        assert TELEMETRY is before and TELEMETRY.enabled
        disable()
        assert TELEMETRY is before and not TELEMETRY.enabled

    def test_env_enabled_parsing(self):
        assert env_enabled({"REPRO_TELEMETRY": "1"})
        assert env_enabled({"REPRO_TELEMETRY": "yes"})
        assert not env_enabled({"REPRO_TELEMETRY": "0"})
        assert not env_enabled({"REPRO_TELEMETRY": "off"})
        assert not env_enabled({})

    def test_env_var_activates_fresh_interpreter(self):
        code = "from repro.telemetry import TELEMETRY; print(TELEMETRY.enabled)"
        env = dict(os.environ, REPRO_TELEMETRY="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), str(_repo_src())) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.stdout.strip() == "True"


def _repo_src():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestCapture:
    def test_capture_scopes_and_restores(self):
        enable()
        outer_tracer = TELEMETRY.tracer
        with TELEMETRY.tracer.span("before", cat="test"):
            pass
        with capture() as cap:
            assert TELEMETRY.tracer is not outer_tracer
            with timed("simulate"):
                pass
        assert TELEMETRY.tracer is outer_tracer
        snapshot = cap.snapshot()
        assert "simulate" in snapshot["phases"]
        assert "before" not in snapshot["spans"]

    def test_captures_nest(self):
        enable()
        with capture() as outer:
            with timed("audit"):
                with capture() as inner:
                    with timed("simulate"):
                        pass
            inner_snapshot = inner.snapshot()
        outer_snapshot = outer.snapshot()
        assert "simulate" in inner_snapshot["phases"]
        assert "simulate" not in outer_snapshot["phases"]
        assert "audit" in outer_snapshot["phases"]


# -- instrumented cells -------------------------------------------------------------


class TestCellCapture:
    def test_run_cell_attaches_snapshot_when_enabled(self):
        enable()
        record = run_cell(_spec())
        assert record.ok
        snapshot = record.telemetry
        assert snapshot is not None
        assert "simulate" in snapshot["phases"]
        assert "report" in snapshot["phases"]
        assert snapshot["sim_s"] > 0
        # Layer coverage inside one flow cell: executor phase + sim engine
        # + solver spans all present.
        cats = {ev["cat"] for ev in snapshot["events"]}
        assert {"phase", "sim", "solver"} <= cats

    def test_run_cell_without_telemetry(self):
        record = run_cell(_spec())
        assert record.ok
        assert record.telemetry is None

    def test_payload_identical_with_and_without_telemetry(self):
        spec = _spec()
        plain = run_cell(spec)
        enable()
        traced = run_cell(spec)
        assert json.dumps(plain.payload, sort_keys=True) == json.dumps(
            traced.payload, sort_keys=True
        )


# -- persistence --------------------------------------------------------------------


class TestStoreRoundTrip:
    def test_save_and_surface_telemetry(self, tmp_path):
        enable()
        spec = _spec()
        record = run_cell(spec)
        store = ArtifactStore(tmp_path / "store")
        store.save(spec, record.payload, record.report, record.elapsed_s,
                   telemetry=record.telemetry)
        entry = store.index()[spec.spec_hash()]
        assert "telemetry" in entry
        assert entry["telemetry"]["phases"]["store"] > 0  # store's own write time
        assert entry["sim_s"] > 0
        # elapsed_s is stored at ms granularity; sim_s at µs granularity.
        assert entry["sim_s"] <= entry["elapsed_s"] + 1e-3
        # Reopened store still has it (JSON round-trip through index.json).
        reopened = ArtifactStore(tmp_path / "store")
        assert reopened.index()[spec.spec_hash()]["telemetry"]["phases"]

    def test_old_entries_without_telemetry_are_tolerated(self, tmp_path):
        spec = _spec()
        record = run_cell(spec)
        store = ArtifactStore(tmp_path / "store")
        store.save(spec, record.payload, record.report, record.elapsed_s)
        entry = store.index()[spec.spec_hash()]
        assert "telemetry" not in entry and "sim_s" not in entry
        assert store.timing_rows() == []
        (row,) = store.status_rows()
        assert row["sim_s"] == ""
        assert "sim_s" in store.csv_columns()

    def test_timing_rows_aggregate(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        enable()
        spec = _spec()
        record = run_cell(spec)
        store.save(spec, record.payload, record.report, record.elapsed_s,
                   telemetry=record.telemetry)
        rows = store.timing_rows()
        phases = {row["phase"] for row in rows}
        assert {"simulate", "report", "store"} <= phases
        for row in rows:
            assert row["n"] == 1
            assert row["p50_ms"] <= row["p95_ms"] + 1e-9

    def test_session_telemetry_accumulates(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save_session_telemetry({"kind": "campaign", "phases": {"plan": 0.1}})
        store.save_session_telemetry({"kind": "dist", "shards": []})
        payloads = store.load_session_telemetry()
        assert [p["kind"] for p in payloads] == ["campaign", "dist"]

    def test_cost_history_prefers_sim_s(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec()
        record = run_cell(spec)
        # Inflated elapsed_s with a small telemetry-derived sim_s: history
        # must learn from the simulate phase, not the padded wall-clock.
        for seed in range(3):
            variant = dataclasses.replace(spec, seed=seed)
            store.save(variant, record.payload, "", elapsed=50.0,
                       telemetry={"sim_s": 0.25, "phases": {"simulate": 0.25}})
        history = CostHistory.from_store(store)
        work = history.work_for(spec.scenario, spec.scale, spec.backend)
        assert work == pytest.approx(0.25 * 10_000)

    def test_cost_history_falls_back_to_elapsed(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        spec = _spec()
        record = run_cell(spec)
        for seed in range(3):
            store.save(dataclasses.replace(spec, seed=seed),
                       record.payload, "", elapsed=2.0)
        history = CostHistory.from_store(store)
        assert history.work_for(
            spec.scenario, spec.scale, spec.backend
        ) == pytest.approx(2.0 * 10_000)


# -- wire round-trip ----------------------------------------------------------------


class TestWire:
    def _roundtrip(self, message):
        buffer = io.BytesIO()
        Channel(io.BytesIO(), buffer).send(message)
        buffer.seek(0)
        return Channel(buffer, io.BytesIO()).recv()

    def test_result_frame_with_telemetry(self):
        enable()
        spec = _spec()
        record = run_cell(spec)
        frame = {
            "type": "result",
            "shard": 3,
            "spec": spec.to_wire(),
            "elapsed_s": record.elapsed_s,
            "error": "",
            "payload": record.payload,
            "report": record.report,
            "telemetry": record.telemetry,
        }
        received = self._roundtrip(frame)
        assert received["telemetry"]["phases"].keys() == record.telemetry["phases"].keys()
        assert received["telemetry"]["sim_s"] == pytest.approx(
            record.telemetry["sim_s"]
        )

    def test_result_frame_without_telemetry_still_parses(self):
        spec = _spec()
        frame = {
            "type": "result",
            "shard": 0,
            "spec": spec.to_wire(),
            "elapsed_s": 0.0,
            "error": "",
        }
        received = self._roundtrip(frame)
        assert "telemetry" not in received  # additive field, absent when off

    def test_shard_done_aggregate_frame(self):
        enable()
        with TELEMETRY.tracer.span("sim.run", cat="sim"):
            pass
        frame = {
            "type": "shard_done",
            "shard": 1,
            "telemetry": snapshot_of(TELEMETRY.tracer, TELEMETRY.metrics),
        }
        received = self._roundtrip(frame)
        assert received["telemetry"]["spans"]["sim.run"]["count"] == 1


# -- chrome trace export ------------------------------------------------------------


class TestChromeTrace:
    def _traced_store(self, tmp_path):
        enable()
        store = ArtifactStore(tmp_path / "store")
        spec = _spec()
        record = run_cell(spec)
        store.save(spec, record.payload, record.report, record.elapsed_s,
                   telemetry=record.telemetry)
        store.save_session_telemetry(
            {
                "kind": "dist",
                "shards": [
                    {
                        "shard": 0,
                        "worker": "w1",
                        "cells": 4,
                        "attempt": 1,
                        "leased_at": 100.0,
                        "first_result_at": 100.5,
                        "done_at": 101.0,
                        "revoked": False,
                    },
                    {
                        "shard": 1,
                        "worker": "w2",
                        "cells": 2,
                        "attempt": 1,
                        "leased_at": 100.2,
                        "first_result_at": None,
                        "done_at": None,
                        "revoked": True,
                    },
                ],
                "revocations": 1,
            }
        )
        return store

    def test_schema_valid_and_multi_layer(self, tmp_path):
        store = self._traced_store(tmp_path)
        trace = chrome_trace(store)
        assert validate_trace(trace) == []
        cats = trace_categories(trace)
        assert {"phase", "sim", "solver", "dist"} <= set(cats)

    def test_written_file_is_loadable_json(self, tmp_path):
        store = self._traced_store(tmp_path)
        path = write_chrome_trace(store, tmp_path / "out" / "trace.json")
        trace = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace(trace) == []
        assert trace["displayTimeUnit"] == "ms"

    def test_timestamps_are_wall_anchored_microseconds(self, tmp_path):
        store = self._traced_store(tmp_path)
        trace = chrome_trace(store)
        cell_ts = [
            ev["ts"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "X" and ev["pid"] == 1
        ]
        # Wall-clock anchored: microseconds since the epoch, so far beyond
        # any plausible relative offset.
        assert min(cell_ts) > 1e12

    def test_revoked_lease_emits_instant_event(self, tmp_path):
        store = self._traced_store(tmp_path)
        trace = chrome_trace(store)
        instants = [ev for ev in trace["traceEvents"] if ev.get("ph") == "i"]
        assert len(instants) == 1
        assert "revoke" in instants[0]["name"]

    def test_validate_flags_malformed_traces(self):
        assert validate_trace({}) == ["traceEvents is missing or not a list"]
        problems = validate_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}]}
        )
        assert any("missing 'name'" in p for p in problems)
        assert any("bad 'ts'" in p for p in problems)

    def test_empty_store_gives_metadata_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        trace = chrome_trace(store)
        assert validate_trace(trace) == []
        assert all(ev["ph"] == "M" for ev in trace["traceEvents"])


# -- structured logging -------------------------------------------------------------


class TestStructuredLog:
    @pytest.fixture(autouse=True)
    def _fresh_logging(self, monkeypatch):
        reset_logging()
        yield
        reset_logging()

    def _capture(self, fmt, emit, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", fmt)
        logger = get_logger("campaign.test")
        emit(logger)
        return capsys.readouterr().err

    def test_text_format(self, monkeypatch, capsys):
        err = self._capture(
            "text",
            lambda log: log_event(log, "lease.assigned", shard=3, worker="w 1"),
            monkeypatch,
            capsys,
        )
        assert 'lease.assigned shard=3 worker="w 1"' in err

    def test_json_format(self, monkeypatch, capsys):
        err = self._capture(
            "json",
            lambda log: log_event(log, "lease.revoked", shard=2, silent_s=31.5),
            monkeypatch,
            capsys,
        )
        payload = json.loads(err.strip().splitlines()[-1])
        assert payload["event"] == "lease.revoked"
        assert payload["shard"] == 2
        assert payload["level"] == "INFO"

    def test_level_filtering(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "WARNING")
        logger = get_logger("campaign.test")
        log_event(logger, "quiet.event")  # INFO: filtered
        log_event(logger, "loud.event", level=logging.WARNING)
        err = capsys.readouterr().err
        assert "quiet.event" not in err
        assert "loud.event" in err
